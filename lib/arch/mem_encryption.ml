exception Integrity_violation of { frame : int }

type slot = {
  key : Hypertee_crypto.Aes.key;
  raw : bytes;
  tweak : bytes; (* reusable 16-byte page-nonce buffer for this slot *)
}

type t = {
  table : slot option array; (* index = KeyID; 0 is bypass *)
  macs : (int * int, int) Hashtbl.t; (* (key_id, frame) -> 28-bit MAC *)
  mac_key : bytes; (* engine-internal MAC key *)
  mutable faults : Hypertee_faults.Fault.t option;
  mutable bit_flips : int;
  mutable stores : int;
  mutable loads : int;
  mutable range_loads : int;
  mutable range_updates : int;
  mutable mac_failures : int;
}

let create ~slots =
  if slots < 2 then invalid_arg "Mem_encryption.create: need at least 2 slots";
  {
    table = Array.make slots None;
    macs = Hashtbl.create 256;
    mac_key = Hypertee_crypto.Sha256.digest_string "hypertee-mee-mac-key";
    faults = None;
    bit_flips = 0;
    stores = 0;
    loads = 0;
    range_loads = 0;
    range_updates = 0;
    mac_failures = 0;
  }

let set_fault_injector t inj = t.faults <- Some inj
let bit_flips t = t.bit_flips

let slots t = Array.length t.table

let check_key_id t key_id =
  if key_id <= 0 || key_id >= slots t then
    invalid_arg "Mem_encryption: key_id out of programmable range"

let program t ~key_id key =
  check_key_id t key_id;
  if Bytes.length key <> 16 then invalid_arg "Mem_encryption.program: key must be 16 bytes";
  t.table.(key_id) <-
    Some
      {
        key = Hypertee_crypto.Aes.expand key;
        raw = Bytes.copy key;
        tweak = Bytes.make 16 '\000';
      }

let revoke t ~key_id =
  check_key_id t key_id;
  (match t.table.(key_id) with
  | Some slot -> Hypertee_util.Bytes_ext.fill_zero slot.raw
  | None -> ());
  t.table.(key_id) <- None;
  (* Drop MAC state for lines under this key: after reprogramming,
     stale MACs must not satisfy a check. *)
  let stale = Hashtbl.fold (fun (k, f) _ acc -> if k = key_id then (k, f) :: acc else acc) t.macs [] in
  List.iter (Hashtbl.remove t.macs) stale

let is_programmed t ~key_id = key_id > 0 && key_id < slots t && t.table.(key_id) <> None

let slot_exn t key_id =
  check_key_id t key_id;
  match t.table.(key_id) with
  | Some s -> s
  | None -> invalid_arg "Mem_encryption: KeyID not programmed"

(* Point the slot's reusable nonce buffer at this frame's tweak. *)
let set_tweak slot ~frame =
  Hypertee_util.Bytes_ext.set_u64_be slot.tweak 8 (Int64.of_int frame)

let store_into t ~key_id ~frame ~src ~dst =
  let len = Bytes.length src in
  if Bytes.length dst <> len then invalid_arg "Mem_encryption.store_into: length mismatch";
  if key_id = 0 then begin
    if dst != src then Bytes.blit src 0 dst 0 len
  end
  else begin
    t.stores <- t.stores + 1;
    let slot = slot_exn t key_id in
    set_tweak slot ~frame;
    Hypertee_crypto.Aes.ctr_into slot.key ~nonce:slot.tweak ~src ~src_off:0 ~dst ~dst_off:0 len;
    Hashtbl.replace t.macs (key_id, frame) (Hypertee_crypto.Keccak.mac_28bit ~key:t.mac_key dst)
  end

let store t ~key_id ~frame data =
  if key_id = 0 then data
  else begin
    let ct = Bytes.create (Bytes.length data) in
    store_into t ~key_id ~frame ~src:data ~dst:ct;
    ct
  end

(* Injected DRAM bit flip: flip one deterministic-random bit of the
   ciphertext as the line arrives from memory. The SHA-3 MAC check
   below must catch it — that is the integrity property under test.
   Never mutates [data] (which may be a borrowed DRAM page); the rare
   fault path pays a copy. *)
let maybe_flip t ~frame data =
  match t.faults with
  | None -> data
  | Some inj ->
    let module F = Hypertee_faults.Fault in
    if Bytes.length data > 0 && F.fire inj F.Memory_bit_flip then begin
      t.bit_flips <- t.bit_flips + 1;
      (* Journal the flip against its frame so the deep checker sweep
         can tell injected MAC failures from latent platform bugs. *)
      F.note_flip inj ~frame;
      let bit = F.draw_int inj F.Memory_bit_flip (8 * Bytes.length data) in
      let flipped = Bytes.copy data in
      let byte = bit / 8 in
      Bytes.set flipped byte (Char.chr (Char.code (Bytes.get flipped byte) lxor (1 lsl (bit mod 8))));
      flipped
    end
    else data

(* MAC-check the full ciphertext [data] as it arrives from DRAM and
   return the (possibly fault-flipped) buffer to decrypt from. *)
let checked_ciphertext t ~key_id ~frame data =
  let data = maybe_flip t ~frame data in
  (match Hashtbl.find_opt t.macs (key_id, frame) with
  | Some mac when mac = Hypertee_crypto.Keccak.mac_28bit ~key:t.mac_key data -> ()
  | Some _ ->
    t.mac_failures <- t.mac_failures + 1;
    raise (Integrity_violation { frame })
  | None ->
    (* Never stored under this key: decrypting garbage; a real
       engine would also MAC-fault on uninitialised lines. *)
    t.mac_failures <- t.mac_failures + 1;
    raise (Integrity_violation { frame }));
  data

let load_into t ~key_id ~frame ~src ~dst =
  let len = Bytes.length src in
  if Bytes.length dst <> len then invalid_arg "Mem_encryption.load_into: length mismatch";
  if key_id = 0 then begin
    if dst != src then Bytes.blit src 0 dst 0 len
  end
  else begin
    t.loads <- t.loads + 1;
    let data = checked_ciphertext t ~key_id ~frame src in
    let slot = slot_exn t key_id in
    set_tweak slot ~frame;
    Hypertee_crypto.Aes.ctr_into slot.key ~nonce:slot.tweak ~src:data ~src_off:0 ~dst ~dst_off:0 len
  end

(* Decrypt only [off, off+len) of the page whose full ciphertext is
   [src]. Integrity is still verified over the whole line — the MAC is
   page-granular — but the keystream is only generated for the
   requested range. *)
let load_range_into t ~key_id ~frame ~src ~off ~len dst ~dst_off =
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "Mem_encryption.load_range_into: bad slice";
  if key_id = 0 then Bytes.blit src off dst dst_off len
  else begin
    t.range_loads <- t.range_loads + 1;
    let data = checked_ciphertext t ~key_id ~frame src in
    let slot = slot_exn t key_id in
    set_tweak slot ~frame;
    Hypertee_crypto.Aes.ctr_into slot.key ~nonce:slot.tweak ~stream_off:off ~src:data ~src_off:off
      ~dst ~dst_off len
  end

let load t ~key_id ~frame data =
  if key_id = 0 then data
  else begin
    let pt = Bytes.create (Bytes.length data) in
    load_into t ~key_id ~frame ~src:data ~dst:pt;
    pt
  end

(* --- Zero-copy data plane over physical memory. These helpers pair
   the engine with [Phys_mem.borrow] so page reads and writes
   transform DRAM in place instead of copying pages through both
   layers. --- *)

let page_size = Hypertee_util.Units.page_size

(* Plaintext scratch for read-modify-write; single-threaded. *)
let rmw_scratch = Bytes.create page_size

let read_page t mem ~key_id ~frame =
  if key_id = 0 then Phys_mem.read mem ~frame
  else begin
    let pt = Bytes.create page_size in
    load_into t ~key_id ~frame ~src:(Phys_mem.borrow mem ~frame) ~dst:pt;
    pt
  end

let read_range_into t mem ~key_id ~frame ~off ~len dst ~dst_off =
  if key_id = 0 then Phys_mem.read_into mem ~frame ~off ~len dst ~dst_off
  else load_range_into t ~key_id ~frame ~src:(Phys_mem.borrow mem ~frame) ~off ~len dst ~dst_off

let read_range t mem ~key_id ~frame ~off ~len =
  let out = Bytes.create len in
  read_range_into t mem ~key_id ~frame ~off ~len out ~dst_off:0;
  out

let write_page t mem ~key_id ~frame src =
  if Bytes.length src <> page_size then
    invalid_arg "Mem_encryption.write_page: data must be one page";
  let dram = Phys_mem.borrow mem ~frame in
  if key_id = 0 then Bytes.blit src 0 dram 0 page_size
  else store_into t ~key_id ~frame ~src ~dst:dram

let update_range t mem ~key_id ~frame ~off ~src ~src_off ~len =
  if off < 0 || len < 0 || off + len > page_size then
    invalid_arg "Mem_encryption.update_range: bad slice";
  if key_id = 0 then begin
    let dram = Phys_mem.borrow mem ~frame in
    Bytes.blit src src_off dram off len
  end
  else begin
    (* Full-page read-modify-write: decrypting first keeps the
       integrity check on the stale line (a tampered page still
       faults even when only partially overwritten). *)
    t.range_updates <- t.range_updates + 1;
    let dram = Phys_mem.borrow mem ~frame in
    load_into t ~key_id ~frame ~src:dram ~dst:rmw_scratch;
    Bytes.blit src src_off rmw_scratch off len;
    store_into t ~key_id ~frame ~src:rmw_scratch ~dst:dram
  end

let find_free_slot t =
  let rec go i = if i >= slots t then None else if t.table.(i) = None then Some i else go (i + 1) in
  go 1

let extra_ns (lat : Config.mem_latency) ~cs_ghz =
  float_of_int (lat.Config.encryption_extra + lat.Config.integrity_extra) /. cs_ghz

let publish_metrics t registry =
  let module M = Hypertee_obs.Metrics in
  let set name help v = M.set_counter (M.counter registry ~help ("mee." ^ name)) v in
  set "stores" "encrypted page stores" t.stores;
  set "loads" "decrypted (MAC-checked) page loads" t.loads;
  set "range_loads" "partial-page decrypts" t.range_loads;
  set "range_updates" "encrypted read-modify-writes" t.range_updates;
  set "mac_failures" "integrity-check failures" t.mac_failures;
  set "bit_flips" "injected DRAM bit flips" t.bit_flips
