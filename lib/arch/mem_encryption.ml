exception Integrity_violation of { frame : int }

type slot = { key : Hypertee_crypto.Aes.key; raw : bytes }

type t = {
  table : slot option array; (* index = KeyID; 0 is bypass *)
  macs : (int * int, int) Hashtbl.t; (* (key_id, frame) -> 28-bit MAC *)
  mac_key : bytes; (* engine-internal MAC key *)
  mutable faults : Hypertee_faults.Fault.t option;
  mutable bit_flips : int;
}

let create ~slots =
  if slots < 2 then invalid_arg "Mem_encryption.create: need at least 2 slots";
  {
    table = Array.make slots None;
    macs = Hashtbl.create 256;
    mac_key = Hypertee_crypto.Sha256.digest_string "hypertee-mee-mac-key";
    faults = None;
    bit_flips = 0;
  }

let set_fault_injector t inj = t.faults <- Some inj
let bit_flips t = t.bit_flips

let slots t = Array.length t.table

let check_key_id t key_id =
  if key_id <= 0 || key_id >= slots t then
    invalid_arg "Mem_encryption: key_id out of programmable range"

let program t ~key_id key =
  check_key_id t key_id;
  if Bytes.length key <> 16 then invalid_arg "Mem_encryption.program: key must be 16 bytes";
  t.table.(key_id) <- Some { key = Hypertee_crypto.Aes.expand key; raw = Bytes.copy key }

let revoke t ~key_id =
  check_key_id t key_id;
  (match t.table.(key_id) with
  | Some slot -> Hypertee_util.Bytes_ext.fill_zero slot.raw
  | None -> ());
  t.table.(key_id) <- None;
  (* Drop MAC state for lines under this key: after reprogramming,
     stale MACs must not satisfy a check. *)
  let stale = Hashtbl.fold (fun (k, f) _ acc -> if k = key_id then (k, f) :: acc else acc) t.macs [] in
  List.iter (Hashtbl.remove t.macs) stale

let is_programmed t ~key_id = key_id > 0 && key_id < slots t && t.table.(key_id) <> None

let slot_exn t key_id =
  check_key_id t key_id;
  match t.table.(key_id) with
  | Some s -> s
  | None -> invalid_arg "Mem_encryption: KeyID not programmed"

let store t ~key_id ~frame data =
  if key_id = 0 then data
  else begin
    let slot = slot_exn t key_id in
    let ct = Hypertee_crypto.Aes.encrypt_page slot.key ~page_number:frame data in
    Hashtbl.replace t.macs (key_id, frame) (Hypertee_crypto.Keccak.mac_28bit ~key:t.mac_key ct);
    ct
  end

(* Injected DRAM bit flip: flip one deterministic-random bit of the
   ciphertext as the line arrives from memory. The SHA-3 MAC check
   below must catch it — that is the integrity property under test. *)
let maybe_flip t data =
  match t.faults with
  | None -> data
  | Some inj ->
    let module F = Hypertee_faults.Fault in
    if Bytes.length data > 0 && F.fire inj F.Memory_bit_flip then begin
      t.bit_flips <- t.bit_flips + 1;
      let bit = F.draw_int inj F.Memory_bit_flip (8 * Bytes.length data) in
      let flipped = Bytes.copy data in
      let byte = bit / 8 in
      Bytes.set flipped byte (Char.chr (Char.code (Bytes.get flipped byte) lxor (1 lsl (bit mod 8))));
      flipped
    end
    else data

let load t ~key_id ~frame data =
  if key_id = 0 then data
  else begin
    let data = maybe_flip t data in
    let slot = slot_exn t key_id in
    (match Hashtbl.find_opt t.macs (key_id, frame) with
    | Some mac when mac = Hypertee_crypto.Keccak.mac_28bit ~key:t.mac_key data -> ()
    | Some _ -> raise (Integrity_violation { frame })
    | None ->
      (* Never stored under this key: decrypting garbage; a real
         engine would also MAC-fault on uninitialised lines. *)
      raise (Integrity_violation { frame }));
    Hypertee_crypto.Aes.decrypt_page slot.key ~page_number:frame data
  end

let find_free_slot t =
  let rec go i = if i >= slots t then None else if t.table.(i) = None then Some i else go (i + 1) in
  go 1

let extra_ns (lat : Config.mem_latency) ~cs_ghz =
  float_of_int (lat.Config.encryption_extra + lat.Config.integrity_extra) /. cs_ghz
