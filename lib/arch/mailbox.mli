(** The iHub mailbox between CS and EMS (paper Fig. 3, Sec. III-C).

    Two bounded hardware ring queues: requests (CS -> EMS) and
    responses (EMS -> CS). Every request carries a unique request id
    minted by the mailbox; a response is bound to exactly one request
    id, and a consumer must present that id to collect it — this is
    the "a request cannot access the other response packets" rule.
    The queues are invisible to untrusted CS software; only EMCall
    (CS side) and the EMS runtime (EMS side) hold a [t].

    Payloads are opaque to the hardware, so the type is polymorphic
    in the request/response body.

    Fault model: with an injector installed ({!set_fault_injector})
    the response fabric can drop, duplicate or corrupt packets. The
    mailbox keeps a bounded cache of answered requests, so a lost or
    corrupted response can be retransmitted by id
    ({!resend_request}) without re-executing the request — the
    exactly-once guarantee EMCall's retry path relies on. Without an
    injector every fault path is dead code and behaviour is
    unchanged. *)

type ('req, 'resp) t

type 'req packet = { request_id : int; sender_enclave : int option; body : 'req }

val create : ?depth:int -> unit -> ('req, 'resp) t

(** Install the platform's fault injector (consulted on every
    response posting). *)
val set_fault_injector : ('req, 'resp) t -> Hypertee_faults.Fault.t -> unit

(** CS side (EMCall): enqueue a request. [sender_enclave] is the
    enclaveID EMCall stamps on the packet (None for host software).
    Returns the minted request id, or [Error `Full] on back-pressure. *)
val send_request : ('req, 'resp) t -> sender_enclave:int option -> 'req -> (int, [ `Full ]) result

(** EMS side: dequeue the oldest pending request. *)
val recv_request : ('req, 'resp) t -> 'req packet option

(** EMS side: post the response for [request_id]. Returns
    [Error `Unknown_or_answered] if the id was never handed out by
    {!recv_request} or was already answered — a faulty or malicious
    EMS worker can never crash the platform through this edge, and a
    double post (e.g. after a watchdog re-dispatch raced the original
    worker) is suppressed rather than delivered twice. *)
val send_response :
  ('req, 'resp) t -> request_id:int -> 'resp -> (unit, [ `Unknown_or_answered ]) result

(** CS side (EMCall polling): collect the response for [request_id]
    if it has arrived. Collecting with a wrong id never yields
    another request's response. A corrupted packet is detected here
    (CRC), discarded and reported as [None]. *)
val poll_response : ('req, 'resp) t -> request_id:int -> 'resp option

(** CS side: drop any remaining (duplicate) response copies for an id
    whose response was already accepted. Returns how many copies were
    discarded. *)
val discard_response : ('req, 'resp) t -> request_id:int -> int

(** CS side (EMCall retry): ask for [request_id] again.
    [`Pending] — the request is still queued, executing, or its
    response is already waiting: keep polling. [`Retransmitted] — the
    response had been posted but was lost; a fresh copy was posted
    from the answered cache (crossing the faulty fabric again).
    [`Unknown] — the id was never seen (or aged out of the cache). *)
val resend_request :
  ('req, 'resp) t -> request_id:int -> [ `Pending | `Retransmitted | `Unknown ]

(** Pending (sent, unconsumed) request count — used by the timing
    model for queueing, never by untrusted code. *)
val pending_requests : ('req, 'resp) t -> int

val pending_responses : ('req, 'resp) t -> int

(** Ids issued so far (tests). *)
val issued : ('req, 'resp) t -> int

(** Fault telemetry: responses dropped / duplicated by the injected
    fabric, and corrupted packets caught by the CRC at poll time. *)
val dropped : ('req, 'resp) t -> int

val duplicated : ('req, 'resp) t -> int
val corrupt_detected : ('req, 'resp) t -> int

(** Snapshot issued/dropped/duplicated/corrupt counters and the
    pending-depth gauges into a metrics registry, each name prefixed
    with [prefix] (e.g. ["shard0.mailbox."]). *)
val publish_metrics : ('req, 'resp) t -> prefix:string -> Hypertee_obs.Metrics.t -> unit
