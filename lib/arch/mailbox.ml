module Fault = Hypertee_faults.Fault

type 'req packet = { request_id : int; sender_enclave : int option; body : 'req }

(* A posted response awaiting collection. [copies] > 1 models a
   duplicated packet (the same id polls successfully that many
   times); [intact] = false models payload corruption, detected by
   the CRC check at poll time. *)
type 'resp slot = { resp : 'resp; mutable copies : int; intact : bool }

type ('req, 'resp) t = {
  requests : 'req packet Hypertee_util.Ring_queue.t;
  queued : (int, unit) Hashtbl.t; (* ids sitting in the request ring *)
  in_flight : (int, 'req packet) Hashtbl.t; (* handed to EMS, not yet answered *)
  responses : (int, 'resp slot) Hashtbl.t; (* request_id -> response *)
  answered : (int, 'resp) Hashtbl.t; (* retransmit cache: answered ids *)
  answered_order : int Queue.t;
  answered_cap : int;
  mutable next_id : int;
  mutable faults : Fault.t option;
  mutable dropped : int;
  mutable duplicated : int;
  mutable corrupt_detected : int;
  lock : Mutex.t;
      (* The gate posts and polls from its own domain while the
         owning shard drains on another: every public operation runs
         under this lock, which preserves the exactly-once retransmit
         semantics unchanged (each operation was already atomic with
         respect to the others in single-domain execution). *)
}

let create ?(depth = 64) () =
  {
    requests = Hypertee_util.Ring_queue.create ~capacity:depth;
    queued = Hashtbl.create depth;
    in_flight = Hashtbl.create depth;
    responses = Hashtbl.create depth;
    answered = Hashtbl.create depth;
    answered_order = Queue.create ();
    answered_cap = 4 * depth;
    next_id = 1;
    faults = None;
    dropped = 0;
    duplicated = 0;
    corrupt_detected = 0;
    lock = Mutex.create ();
  }

let set_fault_injector t inj = t.faults <- Some inj

let send_request t ~sender_enclave body =
  Mutex.protect t.lock @@ fun () ->
  let id = t.next_id in
  let packet = { request_id = id; sender_enclave; body } in
  if Hypertee_util.Ring_queue.push t.requests packet then begin
    t.next_id <- t.next_id + 1;
    Hashtbl.replace t.queued id ();
    Ok id
  end
  else Error `Full

let recv_request t =
  Mutex.protect t.lock @@ fun () ->
  match Hypertee_util.Ring_queue.pop t.requests with
  | Some packet ->
    Hashtbl.remove t.queued packet.request_id;
    Hashtbl.replace t.in_flight packet.request_id packet;
    Some packet
  | None -> None

let remember_answer t ~request_id resp =
  if not (Hashtbl.mem t.answered request_id) then begin
    Hashtbl.replace t.answered request_id resp;
    Queue.push request_id t.answered_order;
    if Queue.length t.answered_order > t.answered_cap then
      Hashtbl.remove t.answered (Queue.pop t.answered_order)
  end

(* The fabric between EMS and the response queue: under a fault plan
   a posted packet can be dropped, duplicated or corrupted. The
   retransmit cache already holds the good copy, so a later
   [resend_request] can recover without re-executing anything. *)
let post t ~request_id resp =
  match t.faults with
  | None -> Hashtbl.replace t.responses request_id { resp; copies = 1; intact = true }
  | Some inj ->
    if Fault.fire inj Fault.Mailbox_drop then t.dropped <- t.dropped + 1
    else begin
      let copies =
        if Fault.fire inj Fault.Mailbox_duplicate then begin
          t.duplicated <- t.duplicated + 1;
          2
        end
        else 1
      in
      let intact = not (Fault.fire inj Fault.Mailbox_corrupt) in
      Hashtbl.replace t.responses request_id { resp; copies; intact }
    end

let send_response t ~request_id resp =
  Mutex.protect t.lock @@ fun () ->
  if not (Hashtbl.mem t.in_flight request_id) then Error `Unknown_or_answered
  else begin
    Hashtbl.remove t.in_flight request_id;
    remember_answer t ~request_id resp;
    post t ~request_id resp;
    Ok ()
  end

let poll_response t ~request_id =
  Mutex.protect t.lock @@ fun () ->
  match Hashtbl.find_opt t.responses request_id with
  | None -> None
  | Some slot ->
    if not slot.intact then begin
      (* CRC mismatch: the packet is discarded at the consumer; the
         retransmit cache can resend a good copy. *)
      Hashtbl.remove t.responses request_id;
      t.corrupt_detected <- t.corrupt_detected + 1;
      None
    end
    else if slot.copies > 1 then begin
      slot.copies <- slot.copies - 1;
      Some slot.resp
    end
    else begin
      Hashtbl.remove t.responses request_id;
      Some slot.resp
    end

let discard_response t ~request_id =
  Mutex.protect t.lock @@ fun () ->
  match Hashtbl.find_opt t.responses request_id with
  | None -> 0
  | Some slot ->
    Hashtbl.remove t.responses request_id;
    slot.copies

let resend_request t ~request_id =
  Mutex.protect t.lock @@ fun () ->
  if
    Hashtbl.mem t.responses request_id
    || Hashtbl.mem t.queued request_id
    || Hashtbl.mem t.in_flight request_id
  then `Pending
  else begin
    match Hashtbl.find_opt t.answered request_id with
    | Some resp ->
      (* EMS-side retransmission from the answered cache. The resent
         packet crosses the same faulty fabric. *)
      post t ~request_id resp;
      `Retransmitted
    | None -> `Unknown
  end

let pending_requests t =
  Mutex.protect t.lock (fun () -> Hypertee_util.Ring_queue.length t.requests)

let pending_responses t = Mutex.protect t.lock (fun () -> Hashtbl.length t.responses)
let issued t = t.next_id - 1
let dropped t = t.dropped
let duplicated t = t.duplicated
let corrupt_detected t = t.corrupt_detected

let publish_metrics t ~prefix registry =
  let module M = Hypertee_obs.Metrics in
  let set name help v = M.set_counter (M.counter registry ~help (prefix ^ name)) v in
  set "issued" "request ids issued" (issued t);
  set "dropped" "response packets lost on the fabric" t.dropped;
  set "duplicated" "response packets delivered twice" t.duplicated;
  set "corrupt_detected" "responses discarded by the CRC check" t.corrupt_detected;
  M.set_gauge (M.gauge registry ~help:"requests queued" (prefix ^ "pending_requests"))
    (float_of_int (pending_requests t));
  M.set_gauge (M.gauge registry ~help:"responses awaiting poll" (prefix ^ "pending_responses"))
    (float_of_int (pending_responses t))
