module Fault = Hypertee_faults.Fault
module Xrng = Hypertee_util.Xrng

type scenario = {
  seed : int64;
  shards : int;
  ems_cores : int;
  batch : int;
  ops : int;
  fault_rate : float;
  sites : Fault.site list;
}

let scenario_of_seed seed =
  let rng = Xrng.create seed in
  let shards = Xrng.int_in rng 1 3 in
  let ems_cores = Xrng.int_in rng 1 3 in
  let batch = Xrng.int_in rng 1 8 in
  let ops = Xrng.int_in rng 40 120 in
  (* Half the scenarios run clean so invariants are also exercised
     without fault-recovery masking anything. *)
  let faulty = Xrng.bool rng in
  let fault_rate = if faulty then 0.02 +. (Xrng.float rng *. 0.13) else 0.0 in
  let sites =
    if not faulty then []
    else begin
      let picked = List.filter (fun _ -> Xrng.bool rng) Fault.all_sites in
      (* Never let the subset collapse to nothing on a faulty run. *)
      if picked = [] then [ Xrng.choose rng (Array.of_list Fault.all_sites) ] else picked
    end
  in
  { seed; shards; ems_cores; batch; ops; fault_rate; sites }

let plan_of s =
  if s.fault_rate = 0.0 || s.sites = [] then None
  else
    Some
      (Fault.plan ~seed:s.seed
         (List.map
            (fun site -> Fault.{ site; schedule = Probability s.fault_rate; intensity = 0.5 })
            s.sites))

type verdict = Pass | Fail of string

let explore ~driver ~seeds =
  List.filter_map
    (fun seed ->
      let s = scenario_of_seed seed in
      match driver s with Pass -> None | Fail reason -> Some (seed, s, reason))
    seeds

let default_seeds ~n =
  (* Fixed generator: the seed list itself must be reproducible. *)
  let rng = Xrng.create 0x9e3779b97f4a7c15L in
  List.init n (fun _ -> Xrng.next64 rng)

let pp_scenario fmt s =
  Format.fprintf fmt
    "seed=%Ld shards=%d cores=%d batch=%d ops=%d fault_rate=%.3f sites=[%s]" s.seed s.shards
    s.ems_cores s.batch s.ops s.fault_rate
    (String.concat "," (List.map Fault.site_name s.sites))
