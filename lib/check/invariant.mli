(** Platform invariant checker.

    Sweeps a live platform and cross-validates every redundant view
    of the same truth against the others:

    - the EMS page-ownership table against [Phys_mem] frame owners
      (both directions, across every shard);
    - enclave page tables (private, staging and shared leaves, and
      the table node frames themselves) against ownership records;
    - the secure bitmap against the owner-derived enclave-memory set;
    - the memory-encryption engine (live keys programmed, pairwise
      distinct across enclaves and shared regions);
    - per-enclave lifecycle state (no destroyed residents,
      measurement context/digest vs. state, parked keys only on idle
      enclaves);
    - shard residue classes (every id this shard assigned satisfies
      [(id - 1) mod stride = shard]; migrated-in enclaves are exempt
      via their adoption mark, and a mark on a home-class id is
      itself flagged);
    - no orphaned MEE key slots (a programmed KeyID held by no
      enclave or region — the leak signature of an incomplete
      destroy, migration or crash scrub);
    - the enclave memory pool (parked frames [Pool]-owned and
      bitmap-set, availability accounting);
    - shared-memory control structures (region frames, attachment
      symmetry, and the orphaned-region leak gauge at zero);
    - the secure-channel fabric, when handed in via [chans]: no
      orphaned channel keys (every live control block names only
      live enclave endpoints), home-shard residue discipline, and a
      non-zero binding secret on every live entry;
    - frame exclusivity: no frame claimed by two holders anywhere on
      the platform.

    A [deep] sweep additionally decrypts every mapped enclave and
    shared page through the encryption engine, so any MAC corruption
    surfaces as a violation instead of a later crash.

    The checker is strictly read-only: it never mutates the platform
    (the deep sweep reads through the engine, which verifies MACs
    without changing DRAM). Run it via {!Hypertee.Platform.check} or
    [hypertee check]. *)

(** One broken invariant, attributed to the rule that caught it and
    (where meaningful) the shard / enclave / frame involved. *)
type violation = {
  rule : string;  (** stable rule identifier, e.g. ["bitmap"] *)
  shard : int option;
  enclave : Hypertee_ems.Types.enclave_id option;
  frame : int option;
  detail : string;
}

type report = {
  violations : violation list;
  frames_swept : int;
  enclaves_checked : int;
  regions_checked : int;
  chans_checked : int;  (** secure-channel control blocks swept *)
  pages_verified : int;  (** MAC-checked pages (deep sweep only) *)
  injected_macs : int;
      (** deep-sweep MAC failures attributed to injected DRAM bit
          flips via the fault injector's flip journal — counted, not
          violations *)
  deep : bool;
}

val ok : report -> bool

val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit
val report_to_string : report -> string

(** [check ~mem ~bitmap ~mee ~runtimes ()] sweeps the platform state
    shared by [runtimes] (one per EMS shard). [deep] adds the
    per-page MAC verification pass. With [faults] (the platform's
    fault injector) the deep sweep consults the injector's flip
    journal so MAC failures caused by injected bit flips during the
    sweep's own reads are excused into [injected_macs] instead of
    reported — fault-injected replays can then run the deep sweep
    without false positives. *)
val check :
  ?deep:bool ->
  ?faults:Hypertee_faults.Fault.t ->
  ?chans:Hypertee_ems.Chan.t ->
  mem:Hypertee_arch.Phys_mem.t ->
  bitmap:Hypertee_arch.Bitmap.t ->
  mee:Hypertee_arch.Mem_encryption.t ->
  runtimes:Hypertee_ems.Runtime.t array ->
  unit ->
  report
