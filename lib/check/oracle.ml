module Types = Hypertee_ems.Types
module Enclave = Hypertee_ems.Enclave
module Emcall = Hypertee_cs.Emcall

let page_size = Hypertee_util.Units.page_size

(* --- the reference model ------------------------------------------- *)

type estate = Loading | Measured | Running | Interrupted | Unknown

type menclave = {
  eid : int;
  mutable st : estate;
  mutable layout : Enclave.layout option;  (* known when the Create was observed *)
  mutable config : Types.enclave_config option;
  mutable heap_cursor : int option;
  mutable shm_cursor : int option;
  mutable measured : bool option;
  mutable attached : int list;  (* shm ids *)
  mutable fuzzy_attach : bool;  (* a timed-out shm op may have changed it *)
}

type mregion = {
  rid : int;
  rowner : int;
  rpages : int;
  rmax : Types.perm;
  mutable legal : (int * Types.perm) list;
  mutable rattached : int list;
  mutable rfuzzy : bool;
}

(* A secure channel as the model knows it: the control-plane facts
   the fabric checks (listener, initiator endpoint, accepted flag).
   Queue depth is deliberately untracked — segment backlog depends on
   interleavings the tap cannot reconstruct — so data-plane
   predictions only commit to what the control state proves. *)
type mchan = {
  mc_listener : int;
  mc_initiator : int option;  (* None = host endpoint *)
  mutable mc_accepted : bool;
  mutable mc_fuzzy : bool;  (* a timed-out ECHACC left the accept state unknown *)
}

type divergence = { index : int; opcode : Types.opcode; expected : string; observed : string }

type t = {
  stride : int;  (* EMS shard count: shard state is disjoint across residue classes *)
  migrated : (int, int) Hashtbl.t;  (* enclave -> hosting shard, overriding residue *)
  enclaves : (int, menclave) Hashtbl.t;
  regions : (int, mregion) Hashtbl.t;
  chans : (int, mchan) Hashtbl.t;
  parked : (int, menclave) Hashtbl.t;
      (* Warm pool, deliberately weak: ERETIRE answers Ok_unit whether
         it parked or fell back to a full destroy (modified pages,
         capacity, ...), so an entry here means "parked OR destroyed".
         Both are invisible to every primitive except EWARM (which may
         revive exactly these ids) and EDESTROY (Ok_unit or
         No_such_enclave — either is legal). *)
  seen_enclave_ids : (int, unit) Hashtbl.t;
  seen_shm_ids : (int, unit) Hashtbl.t;
  seen_chan_ids : (int, unit) Hashtbl.t;
  (* Fog: a timed-out call whose EMS-side effect the model cannot
     know. Each flag permanently weakens the class of prediction it
     poisons — soundness beats completeness for an oracle. *)
  mutable fog_enclaves : bool;  (* a Create may have happened unseen *)
  mutable fog_shms : bool;  (* a Shmget may have happened unseen *)
  mutable fog_chans : bool;  (* an ECHOPEN/ECHCLOSE may have happened unseen *)
  mutable fog_existence : bool;  (* an unattributed containment may have destroyed anyone *)
  mutable heap_fuzzy : bool;  (* EFREE/EWB punched holes in some heap *)
  mutable calls : int;
  mutable agreed : int;
  mutable diverged : int;
  mutable kept : divergence list;  (* newest first, capped *)
}

let kept_cap = 32

let create ?(shards = 1) () =
  {
    stride = Stdlib.max 1 shards;
    migrated = Hashtbl.create 8;
    enclaves = Hashtbl.create 32;
    regions = Hashtbl.create 16;
    chans = Hashtbl.create 16;
    parked = Hashtbl.create 16;
    seen_enclave_ids = Hashtbl.create 32;
    seen_shm_ids = Hashtbl.create 16;
    seen_chan_ids = Hashtbl.create 16;
    fog_enclaves = false;
    fog_shms = false;
    fog_chans = false;
    fog_existence = false;
    heap_fuzzy = false;
    calls = 0;
    agreed = 0;
    diverged = 0;
    kept = [];
  }

(* --- gate model ----------------------------------------------------- *)

let privilege_of = function
  | Emcall.Os_kernel -> Types.Os
  | Emcall.User_host | Emcall.User_enclave _ -> Types.User

let sender_of = function
  | Emcall.Os_kernel | Emcall.User_host -> None
  | Emcall.User_enclave id -> Some id

let gate_rejects caller request =
  match request with
  | Types.Page_fault _ | Types.Interrupt _ -> false
  | _ ->
    privilege_of caller <> Types.required_privilege (Types.opcode_of_request request)

(* --- predictions ----------------------------------------------------- *)

type expect =
  | Reject  (* Cross_privilege at the gate *)
  | Accept of string * (Types.response -> bool)
  | Any  (* the model lacks grounds to commit *)

let expect_ok_unit = Accept ("Ok_unit", fun r -> r = Types.Ok_unit)

let expect_err name pred = Accept (name, fun r -> match r with Types.Err e -> pred e | _ -> false)

let err_no_enclave = expect_err "Err No_such_enclave" (fun e -> e = Types.No_such_enclave)
let err_no_shm = expect_err "Err No_such_shm" (fun e -> e = Types.No_such_shm)
let err_no_chan = expect_err "Err No_such_channel" (fun e -> e = Types.No_such_channel)
let err_not_registered = expect_err "Err Not_registered" (fun e -> e = Types.Not_registered)

let err_perm =
  expect_err "Err Permission_denied" (function Types.Permission_denied _ -> true | _ -> false)

let err_invalid =
  expect_err "Err Invalid_argument" (function Types.Invalid_argument_ _ -> true | _ -> false)

let err_bad_state =
  expect_err "Err Bad_state" (function Types.Bad_state _ -> true | _ -> false)

let find_e t id = Hashtbl.find_opt t.enclaves id

(* The gate routes a request to the shard owning the id's residue
   class — unless the platform told us the id migrated ([note_migration]);
   ids hosted on another shard do not exist on this one. *)
let shard_of t id =
  match Hashtbl.find_opt t.migrated id with
  | Some s -> s
  | None -> (id - 1) mod t.stride

let co_sharded t a b = shard_of t a = shard_of t b

let unknown_enclave t = if t.fog_enclaves then Any else err_no_enclave
let unknown_region t = if t.fog_shms then Any else err_no_shm
let unknown_channel t = if t.fog_chans then Any else err_no_chan

(* A channel entry the model holds may have been reaped behind its
   back: an unattributed containment ([fog_existence]) destroys the
   endpoint enclave, and [Chan.drop_for_enclave] reaps its channels
   with it. In that fog, commit to nothing. *)
let find_chan t chan =
  match Hashtbl.find_opt t.chans chan with
  | Some c when c.mc_fuzzy || t.fog_existence -> `Fuzzy
  | Some c -> `Known c
  | None -> `Unknown

(* Is [sender] (None = host software) an endpoint of channel [c]? *)
let chan_endpoint c ~(sender : int option) =
  sender = c.mc_initiator || match sender with Some s -> s = c.mc_listener | None -> false

(* The handler preamble shared by every primitive acting on a target
   enclave: [get_enclave] then [check_identity ~strict]. The identity
   rule is Sec. III-B: a packet stamped with an enclave id must name
   the enclave it acts on; [strict] additionally rejects unstamped
   (host-software) senders. *)
let preamble t ~sender ~target ~strict k =
  match find_e t target with
  | None -> unknown_enclave t
  | Some e -> (
    match sender with
    | Some s when s <> target -> err_perm
    | Some _ -> k e
    | None -> if strict then err_perm else k e)

let sane_config (c : Types.enclave_config) =
  c.Types.code_pages > 0
  && c.Types.code_pages <= 4096
  && c.Types.data_pages >= 0
  && c.Types.heap_pages >= 0
  && c.Types.stack_pages > 0
  && c.Types.shared_pages >= 0
  && Types.total_static_pages c <= 65536

(* Is [vpn] mapped in a Loading enclave, as far as the model can
   prove? Heap pages go [`Maybe] once any EFREE/EWB has run anywhere
   (holes), shm-window pages are always [`Maybe]. *)
let mapped_status t (e : menclave) vpn =
  match (e.layout, e.config, e.heap_cursor) with
  | Some l, Some c, Some cursor ->
    let within base n = vpn >= base && vpn < base + n in
    if
      within l.Enclave.code_base c.Types.code_pages
      || within l.Enclave.data_base c.Types.data_pages
      || within l.Enclave.stack_base c.Types.stack_pages
      || within l.Enclave.staging_base c.Types.shared_pages
    then `Mapped
    else if vpn >= l.Enclave.heap_base && vpn < cursor then
      if t.heap_fuzzy then `Maybe else `Mapped
    else if vpn >= l.Enclave.shm_base && (e.attached <> [] || e.fuzzy_attach) then `Maybe
    else `Unmapped
  | _ -> `Maybe

let predict t ~sender request =
  match request with
  | Types.Create { config } ->
    if not (sane_config config) then err_invalid
    else
      Accept
        ( "Ok_created with a never-issued id",
          function
          | Types.Ok_created { enclave } ->
            enclave >= 1 && not (Hashtbl.mem t.seen_enclave_ids enclave)
          | _ -> false )
  | Types.Add { enclave; vpn; data; executable = _ } ->
    (* EADD takes no identity check (the enclave cannot run yet). *)
    ( match find_e t enclave with
    | None -> unknown_enclave t
    | Some e -> (
      match e.st with
      | Loading ->
        if Bytes.length data > page_size then err_invalid
        else (
          match mapped_status t e vpn with
          | `Mapped -> expect_ok_unit
          | `Unmapped -> err_invalid
          | `Maybe -> Any)
      | Unknown -> Any
      | Measured | Running | Interrupted -> err_bad_state))
  | Types.Enter { enclave } -> (
    match find_e t enclave with
    | None -> unknown_enclave t
    | Some e -> (
      match e.st with
      | Measured ->
        Accept
          ( "Ok_entered",
            function Types.Ok_entered { enclave = e' } -> e' = enclave | _ -> false )
      | Unknown -> Any
      | Loading | Running | Interrupted -> err_bad_state))
  | Types.Resume { enclave } -> (
    match find_e t enclave with
    | None -> unknown_enclave t
    | Some e -> (
      match e.st with
      | Interrupted ->
        Accept
          ( "Ok_entered",
            function Types.Ok_entered { enclave = e' } -> e' = enclave | _ -> false )
      | Unknown -> Any
      | Loading | Measured | Running -> err_bad_state))
  | Types.Interrupt { enclave; _ } -> (
    match find_e t enclave with
    | None -> unknown_enclave t
    | Some e -> (
      match e.st with
      | Running -> expect_ok_unit
      | Unknown -> Any
      | Loading | Measured | Interrupted -> err_bad_state))
  | Types.Exit { enclave } ->
    preamble t ~sender ~target:enclave ~strict:true (fun e ->
        match e.st with
        | Running | Interrupted -> expect_ok_unit
        | Unknown -> Any
        | Loading | Measured -> err_bad_state)
  | Types.Destroy { enclave } -> (
    match find_e t enclave with
    | Some _ -> expect_ok_unit
    | None ->
      if Hashtbl.mem t.parked enclave then
        (* Parked (destroy evicts it, Ok_unit) or already destroyed
           at retire time (No_such_enclave) — the model cannot tell. *)
        Accept
          ( "Ok_unit (parked) or Err No_such_enclave (retired to destroy)",
            function
            | Types.Ok_unit | Types.Err Types.No_such_enclave -> true
            | _ -> false )
      else unknown_enclave t)
  | Types.Alloc { enclave; pages } ->
    preamble t ~sender ~target:enclave ~strict:false (fun e ->
        if pages <= 0 || pages > 16384 then err_invalid
        else
          match e.heap_cursor with
          | Some cursor ->
            Accept
              ( Printf.sprintf "Ok_alloc at the heap cursor (vpn %d)" cursor,
                function
                | Types.Ok_alloc { base_vpn; pages = p } -> base_vpn = cursor && p = pages
                | _ -> false )
          | None -> Any)
  | Types.Free { enclave; vpn = _; pages } ->
    preamble t ~sender ~target:enclave ~strict:false (fun _ ->
        if pages <= 0 then err_invalid else Any)
  | Types.Writeback { pages_hint } ->
    if pages_hint <= 0 || pages_hint > 4096 then err_invalid
    else
      Accept
        ( Printf.sprintf "Ok_writeback with at most %d distinct frame(s)"
            (pages_hint + (pages_hint / 2)),
          function
          | Types.Ok_writeback { frames; blobs } ->
            List.length frames <= pages_hint + (pages_hint / 2)
            && List.length blobs = List.length frames
            && List.length (List.sort_uniq compare frames) = List.length frames
          | _ -> false )
  | Types.Page_fault { enclave; vpn } -> (
    match find_e t enclave with
    | None -> unknown_enclave t
    | Some e -> (
      match (e.layout, e.heap_cursor) with
      | Some l, Some cursor ->
        (* Growable region plus anything EWB may have evicted (heap
           pages below the cursor — always inside this range). *)
        if vpn >= l.Enclave.heap_base && vpn < max l.Enclave.stack_base cursor then
          Accept
            ( "Ok_alloc of the faulting page",
              function
              | Types.Ok_alloc { base_vpn; pages } -> base_vpn = vpn && pages = 1
              | _ -> false )
        else err_invalid
      | _ -> Any))
  | Types.Shmget { owner; pages; max_perm = _ } ->
    preamble t ~sender ~target:owner ~strict:true (fun _ ->
        if pages <= 0 || pages > 4096 then err_invalid
        else
          Accept
            ( "Ok_shm with a never-issued id",
              function
              | Types.Ok_shm { shm } -> shm >= 1 && not (Hashtbl.mem t.seen_shm_ids shm)
              | _ -> false ))
  | Types.Shmshr { owner; shm; grantee; perm = _ } ->
    preamble t ~sender ~target:owner ~strict:true (fun _ ->
        (* Served on the owner's shard: a grantee from another
           residue class does not exist there. *)
        if not (co_sharded t owner grantee) then err_no_enclave
        else
          match find_e t grantee with
          | None -> unknown_enclave t
          | Some _ -> (
            if not (co_sharded t owner shm) then err_no_shm
            else
              match Hashtbl.find_opt t.regions shm with
              | None -> unknown_region t
              | Some r -> if r.rowner <> owner then err_perm else expect_ok_unit))
  | Types.Shmat { enclave; shm; requested_perm } ->
    preamble t ~sender ~target:enclave ~strict:true (fun e ->
        (* Served on the enclave's shard: regions minted by another
           shard (the shm id's residue class) do not exist there. *)
        if not (co_sharded t enclave shm) then err_no_shm
        else
        match Hashtbl.find_opt t.regions shm with
        | None -> unknown_region t
        | Some r ->
          if r.rfuzzy || e.fuzzy_attach then Any
          else (
            match List.assoc_opt enclave r.legal with
            | None -> err_not_registered
            | Some granted ->
              if List.mem enclave r.rattached then err_invalid
              else if requested_perm = Types.Read_write && granted = Types.Read_only then
                err_perm
              else
                Accept
                  ( (match e.shm_cursor with
                    | Some c -> Printf.sprintf "Ok_shmat at the shm cursor (vpn %d)" c
                    | None -> "Ok_shmat"),
                    function
                    | Types.Ok_shmat { base_vpn; pages } ->
                      pages = r.rpages
                      && (match e.shm_cursor with Some c -> base_vpn = c | None -> true)
                    | _ -> false )))
  | Types.Shmdt { enclave; shm } ->
    preamble t ~sender ~target:enclave ~strict:true (fun e ->
        if e.fuzzy_attach then Any
        else if List.mem shm e.attached then expect_ok_unit
        else err_invalid)
  | Types.Shmdes { owner; shm } ->
    preamble t ~sender ~target:owner ~strict:true (fun _ ->
        if not (co_sharded t owner shm) then err_no_shm
        else
        match Hashtbl.find_opt t.regions shm with
        | None -> unknown_region t
        | Some r ->
          if r.rfuzzy then Any
          else if r.rowner <> owner then err_perm
          else if r.rattached <> [] then err_perm
          else expect_ok_unit)
  | Types.Measure { enclave } -> (
    match find_e t enclave with
    | None -> unknown_enclave t
    | Some e -> (
      match e.st with
      | Loading ->
        Accept
          ( "Ok_measure (32-byte digest)",
            function
            | Types.Ok_measure { measurement } -> Bytes.length measurement = 32
            | _ -> false )
      | Unknown -> Any
      | Measured | Running | Interrupted -> err_bad_state))
  | Types.Attest { enclave; user_data = _ } ->
    preamble t ~sender ~target:enclave ~strict:true (fun e ->
        match (e.st, e.measured) with
        | Unknown, _ | _, None -> Any
        | _, Some true ->
          Accept
            ( "Ok_attest",
              function
              | Types.Ok_attest { quote } -> Bytes.length quote > 0
              | _ -> false )
        | _, Some false -> err_bad_state)
  | Types.Chan_open { listener } -> (
    (* Served on the listener's shard; check order mirrors
       [Svc_channel.handle_open]: existence, then the self-open
       guard, then a mint from the serving shard's residue class. *)
    match find_e t listener with
    | None -> unknown_enclave t
    | Some _ ->
      if sender = Some listener then err_invalid
      else
        Accept
          ( "Ok_chan with a never-issued id from the listener's shard",
            function
            | Types.Ok_chan { chan; binding } ->
              chan >= 1
              && (not (Hashtbl.mem t.seen_chan_ids chan))
              && (chan - 1) mod t.stride = shard_of t listener
              && Bytes.length binding = 16
            | _ -> false ))
  | Types.Chan_accept { enclave; chan } ->
    preamble t ~sender ~target:enclave ~strict:true (fun _ ->
        match find_chan t chan with
        | `Unknown -> unknown_channel t
        | `Fuzzy -> Any
        | `Known c ->
          if c.mc_listener <> enclave then err_perm
          else if c.mc_accepted then err_bad_state
          else
            Accept
              ( "Ok_chan for the accepted channel",
                function
                | Types.Ok_chan { chan = chan'; binding } ->
                  chan' = chan && Bytes.length binding = 16
                | _ -> false ))
  | Types.Chan_send { chan; seg } -> (
    match find_chan t chan with
    | `Unknown -> unknown_channel t
    | `Fuzzy -> Any
    | `Known c ->
      if Bytes.length seg = 0 || Bytes.length seg > 1024 then err_invalid
      else if not (chan_endpoint c ~sender) then err_perm
      else
        (* Queue depth is untracked, so a full queue is the one
           rejection the model cannot rule out. *)
        Accept
          ( "Ok_unit (or a full channel queue)",
            function
            | Types.Ok_unit -> true
            | Types.Err (Types.Invalid_argument_ m) -> m = "channel queue full"
            | _ -> false ))
  | Types.Chan_recv { chan } -> (
    match find_chan t chan with
    | `Unknown -> unknown_channel t
    | `Fuzzy -> Any
    | `Known c ->
      if not (chan_endpoint c ~sender) then err_perm
      else Accept ("Ok_seg", function Types.Ok_seg _ -> true | _ -> false))
  | Types.Chan_close { chan } -> (
    match find_chan t chan with
    | `Unknown -> unknown_channel t
    | `Fuzzy -> Any
    | `Known c -> if not (chan_endpoint c ~sender) then err_perm else expect_ok_unit)
  | Types.Retire { enclave } -> (
    match find_e t enclave with
    | None -> unknown_enclave t
    | Some e -> (
      match e.st with
      | Measured ->
        (* ERETIRE answers Ok_unit whether it parks or falls back to
           a full destroy; only attached shared memory rejects it. *)
        if e.fuzzy_attach then Any
        else if e.attached <> [] then err_bad_state
        else expect_ok_unit
      | Unknown -> Any
      | Loading | Running | Interrupted -> err_bad_state))
  | Types.Warm_create { measurement } ->
    if Bytes.length measurement <> 32 then err_invalid
    else if Hashtbl.length t.parked = 0 && not t.fog_enclaves then
      (* Nothing was ever parked: every shard must miss. *)
      err_bad_state
    else
      (* Weak by design: the request round-robins to one shard, whose
         warm pool may or may not hold a match — and the model does
         not track measurements. Commit only to the id space. *)
      Accept
        ( "Ok_created with a previously-parked id, or Err Bad_state on a miss",
          function
          | Types.Ok_created { enclave } -> Hashtbl.mem t.parked enclave || t.fog_enclaves
          | Types.Err (Types.Bad_state _) -> true
          | _ -> false )

(* --- adoption: fold the observed truth back into the model ---------- *)

let adopt_stub t id =
  match find_e t id with
  | Some e -> e
  | None ->
    let e =
      {
        eid = id;
        st = Unknown;
        layout = None;
        config = None;
        heap_cursor = None;
        shm_cursor = None;
        measured = None;
        attached = [];
        fuzzy_attach = true;
      }
    in
    Hashtbl.replace t.enclaves id e;
    Hashtbl.replace t.seen_enclave_ids id ();
    e

let opt_max cursor v = match cursor with Some c -> Some (max c v) | None -> Some v

(* Regions whose owner is gone and to which nobody is attached are
   reaped by the EMS itself (EDESTROY / ESHMDT); mirror that. *)
let reap_orphans t =
  let dead =
    Hashtbl.fold
      (fun id r acc ->
        if (not (Hashtbl.mem t.enclaves r.rowner)) && r.rattached = [] && not r.rfuzzy then
          id :: acc
        else acc)
      t.regions []
  in
  List.iter (Hashtbl.remove t.regions) dead

(* EDESTROY reaps every channel naming the enclave as an endpoint
   ([Chan.drop_for_enclave] — the "no orphaned channel keys" rule);
   mirror that. *)
let reap_chans_of t id =
  let dead =
    Hashtbl.fold
      (fun chan c acc ->
        if c.mc_listener = id || c.mc_initiator = Some id then chan :: acc else acc)
      t.chans []
  in
  List.iter (Hashtbl.remove t.chans) dead

let remove_enclave t id =
  (match find_e t id with
  | Some e ->
    List.iter
      (fun shm ->
        match Hashtbl.find_opt t.regions shm with
        | Some r -> r.rattached <- List.filter (fun x -> x <> id) r.rattached
        | None -> ())
      e.attached
  | None -> ());
  Hashtbl.remove t.enclaves id;
  Hashtbl.remove t.parked id;
  reap_chans_of t id;
  reap_orphans t

let mark_unknown t id =
  let e = adopt_stub t id in
  e.st <- Unknown;
  e.measured <- None

(* The platform restored or migrated [enclave] outside the gate: it
   now lives on [shard], in a state the tap never observed. Route
   there and adopt its lifecycle from later responses — without this
   the model would predict [No_such_enclave] for a live enclave. *)
let note_migration t ~enclave ~shard =
  Hashtbl.replace t.migrated enclave (shard mod t.stride);
  mark_unknown t enclave

(* The platform cold-restarted [shard]: channel ops are not
   journaled, so recovery reaped every channel homed there
   ([Chan.drop_home]). A channel's home is its minting shard, and
   minting follows the id residue discipline, so the reaped set is
   exactly the ids of that residue class. *)
let note_recovery t ~shard =
  let s = shard mod t.stride in
  let dead =
    Hashtbl.fold (fun chan _ acc -> if (chan - 1) mod t.stride = s then chan :: acc else acc)
      t.chans []
  in
  List.iter (Hashtbl.remove t.chans) dead

(* A call timed out at the gate: the EMS may or may not have served
   it. Poison exactly the knowledge that request could have changed. *)
let apply_timeout t request =
  match request with
  | Types.Create _ -> t.fog_enclaves <- true
  | Types.Shmget { owner; _ } ->
    t.fog_shms <- true;
    mark_unknown t owner
  | Types.Destroy { enclave } ->
    remove_enclave t enclave;
    t.fog_enclaves <- true;
    t.fog_existence <- true
  | Types.Shmdes { owner; shm } ->
    Hashtbl.remove t.regions shm;
    t.fog_shms <- true;
    mark_unknown t owner
  | Types.Shmat { enclave; shm; _ } | Types.Shmdt { enclave; shm } ->
    (match find_e t enclave with
    | Some e ->
      e.fuzzy_attach <- true;
      e.shm_cursor <- None
    | None -> ());
    (match Hashtbl.find_opt t.regions shm with Some r -> r.rfuzzy <- true | None -> ())
  | Types.Shmshr { shm; _ } -> (
    match Hashtbl.find_opt t.regions shm with Some r -> r.rfuzzy <- true | None -> ())
  | Types.Alloc { enclave; _ } | Types.Page_fault { enclave; _ } -> (
    match find_e t enclave with Some e -> e.heap_cursor <- None | None -> ())
  | Types.Free { enclave; _ } ->
    t.heap_fuzzy <- true;
    ignore enclave
  | Types.Writeback _ -> t.heap_fuzzy <- true
  | Types.Enter { enclave }
  | Types.Resume { enclave }
  | Types.Exit { enclave }
  | Types.Interrupt { enclave; _ }
  | Types.Measure { enclave } ->
    mark_unknown t enclave
  | Types.Add _ | Types.Attest _ -> ()
  | Types.Chan_open _ ->
    (* A channel may have been minted unseen. *)
    t.fog_chans <- true
  | Types.Chan_accept { chan; _ } -> (
    match Hashtbl.find_opt t.chans chan with
    | Some c -> c.mc_fuzzy <- true
    | None -> ())
  | Types.Chan_close { chan } ->
    (* The entry may or may not be gone: forget it, and let the fog
       cover a later op on the id either way. *)
    Hashtbl.remove t.chans chan;
    t.fog_chans <- true
  | Types.Chan_send _ | Types.Chan_recv _ ->
    (* Queue state is untracked, so there is nothing to poison. *)
    ()
  | Types.Retire { enclave } ->
    (* Parked, destroyed, or untouched — unknowable. Treat the id as
       possibly gone (existence fog) and possibly revivable. *)
    let stub = adopt_stub t enclave in
    remove_enclave t enclave;
    Hashtbl.replace t.parked enclave stub;
    t.fog_existence <- true
  | Types.Warm_create _ ->
    (* Any parked id may have been revived unseen: its lifecycle is
       now unknown. Keep the parked entries (the revival may also not
       have happened). *)
    let ids = Hashtbl.fold (fun id _ acc -> id :: acc) t.parked [] in
    List.iter (fun id -> mark_unknown t id) ids

let apply_response t ~sender request response =
  match (request, response) with
  | _, Types.Err (Types.Integrity_failure _) -> (
    (* Containment: the EMS terminated the victim. *)
    match Hypertee_ems.Runtime.enclave_of_request request with
    | Some id -> remove_enclave t id
    | None ->
      (* The victim was whoever owned the corrupt frame (EWB path):
         any enclave may be gone now. *)
      t.fog_existence <- true)
  | req, Types.Err Types.No_such_enclave when t.fog_existence -> (
    (* An unattributed containment destroyed this enclave behind the
       model's back: adopt the removal. *)
    match Hypertee_ems.Runtime.enclave_of_request req with
    | Some id -> remove_enclave t id
    | None -> ())
  | Types.Destroy { enclave }, Types.Err Types.No_such_enclave ->
    (* Proof the retire fell back to a destroy: drop the entry. *)
    Hashtbl.remove t.parked enclave
  | _, Types.Err _ -> ()
  | Types.Create { config }, Types.Ok_created { enclave } ->
    let layout = Enclave.make_layout config in
    Hashtbl.replace t.seen_enclave_ids enclave ();
    Hashtbl.replace t.enclaves enclave
      {
        eid = enclave;
        st = Loading;
        layout = Some layout;
        config = Some config;
        heap_cursor = Some (layout.Enclave.heap_base + config.Types.heap_pages);
        shm_cursor = Some layout.Enclave.shm_base;
        measured = Some false;
        attached = [];
        fuzzy_attach = false;
      }
  | (Types.Enter { enclave } | Types.Resume { enclave }), Types.Ok_entered _ ->
    (adopt_stub t enclave).st <- Running
  | Types.Interrupt { enclave; _ }, Types.Ok_unit -> (adopt_stub t enclave).st <- Interrupted
  | Types.Exit { enclave }, Types.Ok_unit ->
    let e = adopt_stub t enclave in
    e.st <- Measured;
    e.measured <- Some true
  | Types.Measure { enclave }, Types.Ok_measure _ ->
    let e = adopt_stub t enclave in
    e.st <- Measured;
    e.measured <- Some true
  | Types.Destroy { enclave }, Types.Ok_unit -> remove_enclave t enclave
  | Types.Alloc { enclave; pages }, Types.Ok_alloc { base_vpn; _ } ->
    let e = adopt_stub t enclave in
    e.heap_cursor <- opt_max e.heap_cursor (base_vpn + pages)
  | Types.Page_fault { enclave; _ }, Types.Ok_alloc { base_vpn; _ } ->
    let e = adopt_stub t enclave in
    e.heap_cursor <- opt_max e.heap_cursor (base_vpn + 1)
  | Types.Free _, Types.Ok_unit -> t.heap_fuzzy <- true
  | Types.Writeback _, Types.Ok_writeback _ -> t.heap_fuzzy <- true
  | Types.Shmget { owner; pages; max_perm }, Types.Ok_shm { shm } ->
    Hashtbl.replace t.seen_shm_ids shm ();
    Hashtbl.replace t.regions shm
      {
        rid = shm;
        rowner = owner;
        rpages = pages;
        rmax = max_perm;
        legal = [ (owner, max_perm) ];
        rattached = [];
        rfuzzy = false;
      }
  | Types.Shmshr { shm; grantee; perm; _ }, Types.Ok_unit -> (
    match Hashtbl.find_opt t.regions shm with
    | Some r ->
      let granted = if r.rmax = Types.Read_only then Types.Read_only else perm in
      r.legal <- (grantee, granted) :: List.remove_assoc grantee r.legal
    | None -> ())
  | Types.Shmat { enclave; shm; _ }, Types.Ok_shmat { base_vpn; pages } ->
    let e = adopt_stub t enclave in
    e.attached <- shm :: List.filter (fun x -> x <> shm) e.attached;
    e.shm_cursor <- Some (base_vpn + pages + 1);
    (match Hashtbl.find_opt t.regions shm with
    | Some r -> r.rattached <- enclave :: List.filter (fun x -> x <> enclave) r.rattached
    | None -> ())
  | Types.Shmdt { enclave; shm }, Types.Ok_unit ->
    (match find_e t enclave with
    | Some e -> e.attached <- List.filter (fun x -> x <> shm) e.attached
    | None -> ());
    (match Hashtbl.find_opt t.regions shm with
    | Some r -> r.rattached <- List.filter (fun x -> x <> enclave) r.rattached
    | None -> ());
    reap_orphans t
  | Types.Shmdes { shm; _ }, Types.Ok_unit -> Hashtbl.remove t.regions shm
  | Types.Chan_open { listener }, Types.Ok_chan { chan; _ } ->
    Hashtbl.replace t.seen_chan_ids chan ();
    Hashtbl.replace t.chans chan
      { mc_listener = listener; mc_initiator = sender; mc_accepted = false; mc_fuzzy = false }
  | Types.Chan_accept { enclave; chan }, Types.Ok_chan _ -> (
    Hashtbl.replace t.seen_chan_ids chan ();
    match Hashtbl.find_opt t.chans chan with
    | Some c -> c.mc_accepted <- true
    | None ->
      (* An open that happened in the fog: adopt a stub whose
         initiator the model never saw. *)
      Hashtbl.replace t.chans chan
        { mc_listener = enclave; mc_initiator = None; mc_accepted = true; mc_fuzzy = true })
  | Types.Chan_close { chan }, Types.Ok_unit -> Hashtbl.remove t.chans chan
  | Types.Retire { enclave }, Types.Ok_unit ->
    (* Parked or destroyed — either way invisible from here on, and
       its channels died with the session. Stash the record so a
       revival can restore what the model knew. *)
    let e = adopt_stub t enclave in
    e.st <- Measured;
    e.measured <- Some true;
    e.attached <- [];
    (match (e.layout, e.config) with
    | Some l, Some c ->
      e.heap_cursor <- Some (l.Enclave.heap_base + c.Types.heap_pages);
      e.shm_cursor <- Some l.Enclave.shm_base
    | _ ->
      e.heap_cursor <- None;
      e.shm_cursor <- None);
    remove_enclave t enclave;
    Hashtbl.replace t.parked enclave e
  | Types.Warm_create _, Types.Ok_created { enclave } ->
    (match Hashtbl.find_opt t.parked enclave with
    | Some e ->
      Hashtbl.remove t.parked enclave;
      e.st <- Measured;
      e.measured <- Some true;
      Hashtbl.replace t.enclaves enclave e
    | None ->
      (* Revived from a park the model never saw (fog). *)
      let e = adopt_stub t enclave in
      e.st <- Measured;
      e.measured <- Some true);
    Hashtbl.replace t.seen_enclave_ids enclave ()
  | _, _ -> ()

let apply t ~sender request result =
  match result with
  | Error Emcall.Timeout -> apply_timeout t request
  | Error (Emcall.Cross_privilege | Emcall.Mailbox_full | Emcall.Busy) -> ()
  | Ok (response, (_ : float)) -> apply_response t ~sender request response

(* --- judging --------------------------------------------------------- *)

let describe_result = function
  | Error Emcall.Cross_privilege -> "rejected: cross-privilege"
  | Error Emcall.Mailbox_full -> "rejected: mailbox full"
  | Error Emcall.Timeout -> "rejected: timeout"
  | Error Emcall.Busy -> "rejected: busy (admission shed)"
  | Ok (resp, (_ : float)) -> (
    match resp with
    | Types.Ok_unit -> "Ok_unit"
    | Types.Ok_created { enclave } -> Printf.sprintf "Ok_created enclave=%d" enclave
    | Types.Ok_entered { enclave } -> Printf.sprintf "Ok_entered enclave=%d" enclave
    | Types.Ok_alloc { base_vpn; pages } ->
      Printf.sprintf "Ok_alloc base_vpn=%d pages=%d" base_vpn pages
    | Types.Ok_writeback { frames; _ } ->
      Printf.sprintf "Ok_writeback frames=%d" (List.length frames)
    | Types.Ok_shm { shm } -> Printf.sprintf "Ok_shm shm=%d" shm
    | Types.Ok_shmat { base_vpn; pages } ->
      Printf.sprintf "Ok_shmat base_vpn=%d pages=%d" base_vpn pages
    | Types.Ok_measure _ -> "Ok_measure"
    | Types.Ok_attest _ -> "Ok_attest"
    | Types.Ok_chan { chan; _ } -> Printf.sprintf "Ok_chan chan=%d" chan
    | Types.Ok_seg { seg = None } -> "Ok_seg (empty)"
    | Types.Ok_seg { seg = Some s } -> Printf.sprintf "Ok_seg %dB" (Bytes.length s)
    | Types.Err e -> "Err: " ^ Types.error_message e)

let describe_expect = function
  | Reject -> "gate rejection: cross-privilege"
  | Accept (d, _) -> d
  | Any -> "(anything)"

let judge t expect result =
  match (expect, result) with
  | Reject, Error Emcall.Cross_privilege -> true
  | Reject, _ -> false
  | _, Error Emcall.Cross_privilege -> false
  (* Back-pressure rejections (full mailbox, admission shed) and
     timeouts are gate-local resource decisions, not EMS semantics. *)
  | _, Error (Emcall.Mailbox_full | Emcall.Timeout | Emcall.Busy) -> true
  | Any, Ok _ -> true
  | Accept ((_ : string), pred), Ok (resp, (_ : float)) -> (
    match resp with
    (* Resource pressure the model does not track. *)
    | Types.Err (Types.Out_of_memory | Types.Out_of_key_ids) -> true
    (* Injected corruption, contained by the EMS. *)
    | Types.Err (Types.Integrity_failure _) -> true
    (* Unattributed containment may have removed the target. *)
    | Types.Err Types.No_such_enclave when t.fog_existence -> true
    | resp -> pred resp)

let observe t ~caller ~batched request result =
  t.calls <- t.calls + 1;
  (* Batched results are no longer adopt-only: the gate recovers the
     realized drain order from the scheduler log and fires batched
     taps in that order, so the model replays the batch exactly as
     the EMS executed it. *)
  ignore (batched : bool);
  let expect =
    if gate_rejects caller request then Reject
    else predict t ~sender:(sender_of caller) request
  in
  if judge t expect result then t.agreed <- t.agreed + 1
  else begin
    t.diverged <- t.diverged + 1;
    if List.length t.kept < kept_cap then
      t.kept <-
        {
          index = t.calls;
          opcode = Types.opcode_of_request request;
          expected = describe_expect expect;
          observed = describe_result result;
        }
        :: t.kept
  end;
  apply t ~sender:(sender_of caller) request result

let tap t : Emcall.tap = fun ~caller ~batched request result -> observe t ~caller ~batched request result

let observed t = t.calls
let agreements t = t.agreed
let divergence_count t = t.diverged
let divergences t = List.rev t.kept

let pp_divergence fmt d =
  Format.fprintf fmt "call #%d %s: expected %s, observed %s" d.index
    (Types.opcode_name d.opcode) d.expected d.observed

let summary t =
  Printf.sprintf "oracle: %d call(s) observed, %d agreed, %d diverged" t.calls t.agreed
    t.diverged
