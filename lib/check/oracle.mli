(** Differential EMCall oracle.

    A reference model of the EMS state machine that replays every
    request/response pair observed at the EMCall gate (installed as
    the gate's {!Hypertee_cs.Emcall.tap} via
    [Platform.attach_oracle]) and diffs its prediction against what
    the runtime actually answered.

    The model tracks, per enclave: the lifecycle state, the believed
    heap and shared-memory cursors, the measurement status and the
    set of attached regions; per shared region: owner, size, the
    legal connection list and the active attachments; per secure
    channel: listener, initiator endpoint and accept state (queue
    depth is deliberately untracked). Predictions
    follow each handler's check order exactly (existence → identity
    → argument sanity → state), so the model predicts not just
    success/failure but {e which} error.

    Soundness under partial knowledge: the oracle never reports a
    divergence it cannot prove.

    - Resource errors ([Out_of_memory], [Out_of_key_ids]) are always
      accepted — the model does not track pool depth or KeyID
      pressure.
    - A gate [Timeout] leaves the EMS-side effect unknowable: the
      named enclave drops to an [Unknown] state whose transitions
      are adopted from later observed responses rather than
      predicted ([Ok_entered] proves Running, and so on).
    - Results collected from a batch doorbell ([batched = true]) are
      executed in scheduler-randomized order, but the gate recovers
      the realized drain order from the scheduler log
      ({!Hypertee_cs.Emcall.set_drain_order_probe}) and fires batched
      taps in that order — so batched results are predicted exactly
      like serial ones.
    - [Integrity_failure] responses are accepted anywhere a fault
      injector may strike, and the model mirrors the containment:
      the victim enclave is terminated.

    Everything else is checked strictly — including that freshly
    minted enclave and region ids are ones the platform never issued
    before (the id-uniqueness half of exactly-once delivery). *)

type divergence = {
  index : int;  (** 1-based observation count at which it occurred *)
  opcode : Hypertee_ems.Types.opcode;
  expected : string;
  observed : string;
}

type t

(** [create ~shards ()] — [shards] (default 1) is the platform's EMS
    shard count: shard state is disjoint, so cross-shard references
    (a grantee or region from another id residue class) are predicted
    to fail exactly as the owning shard would report. *)
val create : ?shards:int -> unit -> t

(** Feed one completed invocation. Signature-compatible with the
    gate's tap (see {!tap}). *)
val observe :
  t ->
  caller:Hypertee_cs.Emcall.caller ->
  batched:bool ->
  Hypertee_ems.Types.request ->
  (Hypertee_ems.Types.response * float, Hypertee_cs.Emcall.rejection) result ->
  unit

(** The observer packaged for {!Hypertee_cs.Emcall.set_tap}. *)
val tap : t -> Hypertee_cs.Emcall.tap

(** [note_migration t ~enclave ~shard] — the platform restored or
    migrated [enclave] onto [shard] outside the gate (checkpoint
    restore, migration commit). The model routes the id there from
    now on and adopts its lifecycle from later observed responses. *)
val note_migration : t -> enclave:int -> shard:int -> unit

(** [note_recovery t ~shard] — the platform cold-restarted [shard].
    Channel ops are not journaled (docs/PROTOCOL.md §2.3), so the
    recovery reaped every secure channel homed on that shard; the
    model mirrors the reap by dropping the shard's chan-id residue
    class. Enclaves and regions replay from the journal and need no
    adjustment. *)
val note_recovery : t -> shard:int -> unit

(** Invocations observed so far. *)
val observed : t -> int

(** Observations whose outcome matched the prediction. *)
val agreements : t -> int

(** Total divergences recorded (only the first few are retained in
    {!divergences}). *)
val divergence_count : t -> int

(** The retained divergences, oldest first (capped). *)
val divergences : t -> divergence list

val pp_divergence : Format.formatter -> divergence -> unit

(** One-line summary: observed / agreed / diverged. *)
val summary : t -> string
