(** Seeded interleaving explorer.

    The invariant checker and the oracle only catch what the driven
    workload exposes. This module widens the net: each 64-bit seed
    deterministically expands into a {!scenario} — a platform shape
    (shard count, EMS cores, batch width) plus an operation budget
    and a fault mix — permuting the shard/batch/fault schedules the
    bug classes of this PR hide behind. A driver (supplied by the
    caller; see [Hypertee_experiments.Verify.scenario_driver]) builds
    the platform, runs the workload under the oracle and sweeps the
    invariants; {!explore} reports every seed whose verdict came back
    [Fail], so a failure reproduces from its seed alone. *)

type scenario = {
  seed : int64;  (** replays the exact run *)
  shards : int;  (** EMS shard count (1-3) *)
  ems_cores : int;  (** worker cores per shard (1-3) *)
  batch : int;  (** doorbell batch width (1-8) *)
  ops : int;  (** operation budget for the workload *)
  fault_rate : float;  (** 0.0 for a clean run *)
  sites : Hypertee_faults.Fault.site list;
      (** fault sites armed (empty iff [fault_rate = 0.0]) *)
}

(** Deterministic seed -> scenario expansion. *)
val scenario_of_seed : int64 -> scenario

(** The fault plan a scenario arms, [None] for a clean run. *)
val plan_of : scenario -> Hypertee_faults.Fault.plan option

type verdict = Pass | Fail of string

(** [explore ~driver ~seeds] runs every seed through the driver and
    returns the failures as [(seed, scenario, reason)]. *)
val explore :
  driver:(scenario -> verdict) ->
  seeds:int64 list ->
  (int64 * scenario * string) list

(** [default_seeds ~n] is a fixed, reproducible seed list. *)
val default_seeds : n:int -> int64 list

val pp_scenario : Format.formatter -> scenario -> unit
