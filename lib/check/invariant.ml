module Types = Hypertee_ems.Types
module Runtime = Hypertee_ems.Runtime
module State = Hypertee_ems.State
module Enclave = Hypertee_ems.Enclave
module Ownership = Hypertee_ems.Ownership
module Shm = Hypertee_ems.Shm
module Mem_pool = Hypertee_ems.Mem_pool
module Phys_mem = Hypertee_arch.Phys_mem
module Bitmap = Hypertee_arch.Bitmap
module Mem_encryption = Hypertee_arch.Mem_encryption
module Page_table = Hypertee_arch.Page_table
module Pte = Hypertee_arch.Pte

type violation = {
  rule : string;
  shard : int option;
  enclave : Types.enclave_id option;
  frame : int option;
  detail : string;
}

type report = {
  violations : violation list;
  frames_swept : int;
  enclaves_checked : int;
  regions_checked : int;
  chans_checked : int;
  pages_verified : int;
  injected_macs : int;
  deep : bool;
}

let ok r = r.violations = []

let pp_violation fmt v =
  let tag label = function
    | None -> ""
    | Some n -> Printf.sprintf " %s=%d" label n
  in
  Format.fprintf fmt "[%s]%s%s%s %s" v.rule (tag "shard" v.shard) (tag "enclave" v.enclave)
    (tag "frame" v.frame) v.detail

let pp_report fmt r =
  Format.fprintf fmt "invariant sweep: %d frame(s), %d enclave(s), %d region(s), %d channel(s)%s%s — "
    r.frames_swept r.enclaves_checked r.regions_checked r.chans_checked
    (if r.deep then Printf.sprintf ", %d page MAC(s) verified" r.pages_verified else "")
    (if r.injected_macs > 0 then Printf.sprintf " (%d injected-flip MAC failure(s) excused)" r.injected_macs
     else "");
  match r.violations with
  | [] -> Format.fprintf fmt "OK"
  | vs ->
    Format.fprintf fmt "%d violation(s)" (List.length vs);
    List.iter (fun v -> Format.fprintf fmt "@\n  %a" pp_violation v) vs

let report_to_string r = Format.asprintf "%a" pp_report r

(* Accumulator threaded through the sweep. [claims] enforces platform
   wide frame exclusivity: every structure that holds a frame (an
   ownership record, a pool slot, a page-table node, a staging
   window) registers its claim, and a second claimant is a violation
   regardless of which two structures collide. *)
type ctx = {
  mutable violations : violation list;
  claims : (int, string) Hashtbl.t;
  mutable enclaves_checked : int;
  mutable regions_checked : int;
  mutable chans_checked : int;
  mutable pages_verified : int;
  mutable injected_macs : int;
}

let add ctx ~rule ?shard ?enclave ?frame detail =
  ctx.violations <- { rule; shard; enclave; frame; detail } :: ctx.violations

let claim ctx ~shard ?enclave ~frame holder =
  match Hashtbl.find_opt ctx.claims frame with
  | Some previous ->
    add ctx ~rule:"frame-exclusive" ~shard ?enclave ~frame
      (Printf.sprintf "frame held by both %s and %s" previous holder)
  | None -> Hashtbl.replace ctx.claims frame holder

let owner_name = Format.asprintf "%a" Phys_mem.pp_owner

(* Enclaves with [attached_at] set — the region's view of who is
   mapped, which every frame's ownership record must mirror. *)
let region_attached (r : Shm.region) =
  Hashtbl.fold
    (fun enclave (conn : Shm.connection) acc ->
      match conn.Shm.attached_at with Some base -> (enclave, base) :: acc | None -> acc)
    r.Shm.legal []
  |> List.sort compare

let check_ownership_table ctx ~mem st ~shard =
  let enclaves = st.State.enclaves in
  Ownership.fold st.State.ownership
    (fun frame record () ->
      match record with
      | Ownership.Private e ->
        claim ctx ~shard ~enclave:e ~frame
          (Printf.sprintf "shard %d ownership (private, enclave %d)" shard e);
        (match Phys_mem.owner mem frame with
        | Phys_mem.Enclave e' when e' = e -> ()
        | o ->
          add ctx ~rule:"phys-vs-ownership" ~shard ~enclave:e ~frame
            (Printf.sprintf "ownership says private enclave %d, phys_mem says %s" e
               (owner_name o)));
        if not (Hashtbl.mem enclaves e) then
          add ctx ~rule:"ownership-live" ~shard ~enclave:e ~frame
            "private frame owned by an enclave no longer resident"
      | Ownership.Shared_page { shm; attached } -> (
        claim ctx ~shard ~frame (Printf.sprintf "shard %d ownership (shm %d)" shard shm);
        (match Phys_mem.owner mem frame with
        | Phys_mem.Shared s when s = shm -> ()
        | o ->
          add ctx ~rule:"phys-vs-ownership" ~shard ~frame
            (Printf.sprintf "ownership says shm %d, phys_mem says %s" shm (owner_name o)));
        match Shm.find st.State.shms shm with
        | None ->
          add ctx ~rule:"shm" ~shard ~frame
            (Printf.sprintf "shared frame references unregistered region %d" shm)
        | Some region ->
          if not (List.mem frame region.Shm.frames) then
            add ctx ~rule:"shm" ~shard ~frame
              (Printf.sprintf "frame not part of region %d's frame list" shm);
          let expected = List.map fst (region_attached region) in
          if List.sort compare attached <> expected then
            add ctx ~rule:"shm" ~shard ~frame
              (Printf.sprintf
                 "frame attachment set {%s} disagrees with region %d connections {%s}"
                 (String.concat "," (List.map string_of_int (List.sort compare attached)))
                 shm
                 (String.concat "," (List.map string_of_int expected)))))
    ()

let check_enclave ctx ~mem st ~shard id (e : Enclave.t) =
  ctx.enclaves_checked <- ctx.enclaves_checked + 1;
  let add_lc detail = add ctx ~rule:"lifecycle" ~shard ~enclave:id detail in
  if e.Enclave.id <> id then
    add_lc (Printf.sprintf "registered under id %d but carries id %d" id e.Enclave.id);
  if e.Enclave.state = Enclave.Destroyed then add_lc "destroyed enclave still resident";
  (match (e.Enclave.measurement_ctx, e.Enclave.state) with
  | Some _, Enclave.Loading | None, Enclave.Destroyed -> ()
  | None, Enclave.Loading -> add_lc "loading enclave lost its measurement context"
  | Some _, _ -> add_lc "measurement context survives past EMEAS"
  | None, _ -> ());
  (match (e.Enclave.measurement, e.Enclave.state) with
  | None, (Enclave.Loading | Enclave.Destroyed) | Some _, _ -> ()
  | None, _ -> add_lc "enclave past loading without a final measurement");
  (match (e.Enclave.key_parked, e.Enclave.state) with
  | true, (Enclave.Measured | Enclave.Parked) | false, _ -> ()
  | true, st ->
    add_lc
      (Printf.sprintf "key parked while %s (victims must be idle)" (Enclave.state_name st)));
  (* The private page table: node frames are enclave memory drawn
     from the pool; leaves partition into private (enclave key),
     staging (KeyID 0) and shared (a region key of an attached shm). *)
  List.iter
    (fun frame ->
      claim ctx ~shard ~enclave:id ~frame (Printf.sprintf "page-table nodes of enclave %d" id);
      match Phys_mem.owner mem frame with
      | Phys_mem.Page_table e' when e' = id -> ()
      | o ->
        add ctx ~rule:"page-table" ~shard ~enclave:id ~frame
          (Printf.sprintf "table node frame owned by %s" (owner_name o)))
    (Page_table.node_frames e.Enclave.page_table);
  List.iter
    (fun frame ->
      claim ctx ~shard ~enclave:id ~frame (Printf.sprintf "staging window of enclave %d" id))
    e.Enclave.staging_frames;
  let region_keys =
    List.filter_map
      (fun (shm, _) ->
        Option.map (fun (r : Shm.region) -> (r.Shm.key_id, r)) (Shm.find st.State.shms shm))
      e.Enclave.attached_shms
  in
  let private_leaf_frames = ref [] in
  List.iter
    (fun (vpn, pte) ->
      let frame = pte.Pte.ppn in
      if pte.Pte.key_id = e.Enclave.key_id then
        private_leaf_frames := frame :: !private_leaf_frames
      else if pte.Pte.key_id = 0 then begin
        if not (List.mem frame e.Enclave.staging_frames) then
          add ctx ~rule:"page-table" ~shard ~enclave:id ~frame
            (Printf.sprintf "plaintext leaf at vpn %d outside the staging window" vpn)
      end
      else
        match List.assoc_opt pte.Pte.key_id region_keys with
        | Some region ->
          if not (List.mem frame region.Shm.frames) then
            add ctx ~rule:"page-table" ~shard ~enclave:id ~frame
              (Printf.sprintf "shared leaf at vpn %d maps a frame outside region %d" vpn
                 region.Shm.shm)
        | None ->
          add ctx ~rule:"page-table" ~shard ~enclave:id ~frame
            (Printf.sprintf "leaf at vpn %d carries foreign KeyID %d" vpn pte.Pte.key_id))
    (Page_table.entries e.Enclave.page_table);
  let mapped = List.sort_uniq compare !private_leaf_frames in
  let owned = List.sort compare (Ownership.frames_of st.State.ownership id) in
  if mapped <> owned then
    add ctx ~rule:"page-table" ~shard ~enclave:id
      (Printf.sprintf
         "private leaves map %d frame(s) but the ownership table records %d for this enclave"
         (List.length mapped) (List.length owned))

let check_regions ctx ~mem st ~shard =
  List.iter
    (fun (r : Shm.region) ->
      ctx.regions_checked <- ctx.regions_checked + 1;
      let attached = region_attached r in
      if (not (Hashtbl.mem st.State.enclaves r.Shm.owner)) && attached = [] then
        add ctx ~rule:"shm-leak" ~shard ~enclave:r.Shm.owner
          (Printf.sprintf "region %d orphaned: owner destroyed and nobody attached" r.Shm.shm);
      List.iter
        (fun frame ->
          match Phys_mem.owner mem frame with
          | Phys_mem.Shared s when s = r.Shm.shm -> ()
          | o ->
            add ctx ~rule:"shm" ~shard ~frame
              (Printf.sprintf "region %d frame owned by %s" r.Shm.shm (owner_name o)))
        r.Shm.frames;
      List.iter
        (fun (enclave, base) ->
          match Hashtbl.find_opt st.State.enclaves enclave with
          | None ->
            add ctx ~rule:"shm" ~shard ~enclave
              (Printf.sprintf "region %d lists destroyed enclave %d as attached" r.Shm.shm
                 enclave)
          | Some e ->
            if List.assoc_opt r.Shm.shm e.Enclave.attached_shms <> Some base then
              add ctx ~rule:"shm" ~shard ~enclave
                (Printf.sprintf
                   "region %d believes enclave %d attached at vpn %d, the enclave disagrees"
                   r.Shm.shm enclave base))
        attached)
    (State.shm_regions st);
  let leaked = State.leaked_shm_frames st in
  if leaked <> 0 then
    add ctx ~rule:"shm-leak" ~shard
      (Printf.sprintf "%d frame(s) stuck in orphaned shared regions" leaked)

let check_pool ctx ~mem st ~shard =
  let pool = st.State.pool in
  let parked = Mem_pool.parked_frames pool in
  if List.length parked <> Mem_pool.available pool then
    add ctx ~rule:"pool" ~shard
      (Printf.sprintf "pool reports %d available but parks %d frame(s)"
         (Mem_pool.available pool) (List.length parked));
  List.iter
    (fun frame ->
      claim ctx ~shard ~frame (Printf.sprintf "shard %d pool" shard);
      match Phys_mem.owner mem frame with
      | Phys_mem.Pool -> ()
      | o ->
        add ctx ~rule:"pool" ~shard ~frame
          (Printf.sprintf "parked frame owned by %s" (owner_name o)))
    parked

(* Warm-pool coherence: the FIFO of retired enclaves and the Parked
   state must be two views of one set — a warm-listed id that is not
   resident and Parked would revive garbage, a Parked enclave off the
   list would never be revived or destroyed by pressure. Parked
   enclaves also hold no shared-memory attachments (ERETIRE refuses
   them) and never exceed the configured capacity. *)
let check_warm ctx st ~shard =
  let warm = State.warm_ids st in
  if List.length warm > State.warm_capacity then
    add ctx ~rule:"warm-pool" ~shard
      (Printf.sprintf "warm list holds %d id(s), capacity is %d" (List.length warm)
         State.warm_capacity);
  List.iter
    (fun id ->
      match Hashtbl.find_opt st.State.enclaves id with
      | None -> add ctx ~rule:"warm-pool" ~shard ~enclave:id "warm-listed enclave not resident"
      | Some (e : Enclave.t) ->
        if e.Enclave.state <> Enclave.Parked then
          add ctx ~rule:"warm-pool" ~shard ~enclave:id
            (Printf.sprintf "warm-listed enclave is %s, not parked"
               (Enclave.state_name e.Enclave.state));
        if e.Enclave.attached_shms <> [] then
          add ctx ~rule:"warm-pool" ~shard ~enclave:id
            "parked enclave still attached to shared memory";
        if e.Enclave.measurement = None then
          add ctx ~rule:"warm-pool" ~shard ~enclave:id
            "parked enclave carries no measurement to match EWARM against")
    warm;
  Hashtbl.iter
    (fun id (e : Enclave.t) ->
      if e.Enclave.state = Enclave.Parked && not (List.mem id warm) then
        add ctx ~rule:"warm-pool" ~shard ~enclave:id "parked enclave missing from the warm list")
    st.State.enclaves

let check_residues ctx st ~shard =
  let stride = st.State.id_stride in
  let residue id = (id - 1) mod stride in
  let check_id kind id =
    if id < 1 || residue id <> st.State.shard then
      add ctx ~rule:"id-residue" ~shard
        (Printf.sprintf "%s id %d outside this shard's residue class (%d mod %d)" kind id
           st.State.shard stride)
  in
  (* Migrated-in enclaves are exempt: their residue class names the
     birth shard, the adoption mark (mirrored by a gate route
     override) names this one. An adoption mark on a home-class id
     would itself be a bug. *)
  Hashtbl.iter
    (fun id _ ->
      if State.is_adopted st id then begin
        if residue id = st.State.shard then
          add ctx ~rule:"id-residue" ~shard
            (Printf.sprintf "enclave %d marked adopted but belongs to this residue class" id)
      end
      else check_id "enclave" id)
    st.State.enclaves;
  List.iter (fun (r : Shm.region) -> check_id "shm" r.Shm.shm) (State.shm_regions st);
  check_id "next enclave" st.State.next_enclave_id;
  check_id "next shm" st.State.next_shm_id

(* Every programmed key in active use must be programmed, and no two
   holders may share a KeyID: a collision would let one enclave read
   another's memory in plaintext. *)
let check_keys ctx ~mee runtimes =
  let holders : (int, string) Hashtbl.t = Hashtbl.create 32 in
  let hold ~shard key_id holder =
    (match Hashtbl.find_opt holders key_id with
    | Some previous ->
      add ctx ~rule:"mee" ~shard
        (Printf.sprintf "KeyID %d shared by %s and %s" key_id previous holder)
    | None -> Hashtbl.replace holders key_id holder);
    if not (Mem_encryption.is_programmed mee ~key_id) then
      add ctx ~rule:"mee" ~shard (Printf.sprintf "KeyID %d of %s not programmed" key_id holder)
  in
  Array.iteri
    (fun shard rt ->
      let st = Runtime.state rt in
      Hashtbl.iter
        (fun id (e : Enclave.t) ->
          if not e.Enclave.key_parked then
            hold ~shard e.Enclave.key_id (Printf.sprintf "enclave %d" id))
        st.State.enclaves;
      List.iter
        (fun (r : Shm.region) ->
          hold ~shard r.Shm.key_id (Printf.sprintf "region %d" r.Shm.shm))
        (State.shm_regions st))
    runtimes;
  (* The converse: a programmed slot nobody holds is an orphan — a
     destroyed, migrated-away or crash-scrubbed holder whose key was
     never revoked keeps its (dead) memory decryptable. Parked keys
     are not live slots (EWB re-encrypted the pages and revoked the
     slot), so they rightly have no exemption here. *)
  for key_id = 1 to Mem_encryption.slots mee - 1 do
    if Mem_encryption.is_programmed mee ~key_id && not (Hashtbl.mem holders key_id) then
      add ctx ~rule:"mee-orphan"
        (Printf.sprintf "KeyID %d programmed but held by no enclave or region" key_id)
  done

(* Frame sweep against the architectural ground truth: the bitmap
   must be exactly the enclave-memory set derived from frame owners,
   and every enclave-owned frame must be accounted for by the owning
   shard's structures. *)
let check_frames ctx ~mem ~bitmap runtimes =
  let shard_count = Array.length runtimes in
  (* Enclave-id attribution follows adoption: a migrated enclave's
     frames are accounted for by the adopting shard, not the residue
     class. Shm ids never migrate. *)
  let adopted = Hashtbl.create 8 in
  Array.iteri
    (fun s rt ->
      List.iter (fun id -> Hashtbl.replace adopted id s) (State.adopted_ids (Runtime.state rt)))
    runtimes;
  let shard_of id = (id - 1) mod shard_count in
  let enclave_shard_of id =
    match Hashtbl.find_opt adopted id with Some s -> s | None -> shard_of id
  in
  let frames = Phys_mem.frames mem in
  for frame = 0 to frames - 1 do
    let owner = Phys_mem.owner mem frame in
    let expect_bit =
      match owner with
      | Phys_mem.Pool | Phys_mem.Enclave _ | Phys_mem.Shared _ | Phys_mem.Page_table _
      | Phys_mem.Bitmap_region ->
        Some true
      | Phys_mem.Free | Phys_mem.Cs_os -> Some false
      | Phys_mem.Ems_private -> None
    in
    (match expect_bit with
    | Some expected when Bitmap.get bitmap ~frame <> expected ->
      add ctx ~rule:"bitmap" ~frame
        (Printf.sprintf "bit %s for a %s frame"
           (if expected then "clear" else "set")
           (owner_name owner))
    | _ -> ());
    match owner with
    | Phys_mem.Enclave id when id >= 1 -> (
      let shard = enclave_shard_of id in
      let st = Runtime.state runtimes.(shard) in
      match Ownership.lookup st.State.ownership ~frame with
      | Some (Ownership.Private e) when e = id -> ()
      | _ ->
        add ctx ~rule:"ownership-vs-phys" ~shard ~enclave:id ~frame
          "enclave-owned frame missing from the shard's ownership table")
    | Phys_mem.Shared shm when shm >= 1 -> (
      let shard = shard_of shm in
      let st = Runtime.state runtimes.(shard) in
      match Ownership.lookup st.State.ownership ~frame with
      | Some (Ownership.Shared_page { shm = s; _ }) when s = shm -> ()
      | _ ->
        add ctx ~rule:"ownership-vs-phys" ~shard ~frame
          (Printf.sprintf "shared frame of region %d missing from the ownership table" shm))
    | Phys_mem.Page_table id when id >= 1 -> (
      let shard = enclave_shard_of id in
      match Runtime.find_enclave runtimes.(shard) id with
      | Some e when List.mem frame (Page_table.node_frames e.Enclave.page_table) -> ()
      | _ ->
        add ctx ~rule:"ownership-vs-phys" ~shard ~enclave:id ~frame
          "page-table frame not a node of the owning enclave's table")
    | Phys_mem.Pool ->
      if not (Hashtbl.mem ctx.claims frame) then
        add ctx ~rule:"pool" ~frame "pool-owned frame parked in no shard's pool"
    | _ -> ()
  done;
  frames

(* Deep sweep: decrypt every mapped private and shared page through
   the engine, so a corrupted MAC is found here rather than at the
   next enclave access. Parked enclaves are skipped — their pages sit
   re-encrypted under the EMS swap key, outside the engine's MAC
   domain until revival. *)
let check_macs ctx ?faults ~mem ~mee runtimes =
  let module Fault = Hypertee_faults.Fault in
  (* The engine caches verified lines; a sweep that rode that cache
     would re-verify nothing. Flush first so every read below runs
     the real MAC check. *)
  Mem_encryption.flush_mac_cache mee;
  let flips_on frame =
    match faults with Some inj -> Fault.flips_on inj ~frame | None -> 0
  in
  let verify ~shard ?enclave ~key_id ~frame () =
    (* Injected DRAM flips are transient (the fault path corrupts a
       copy of the line), so a MAC failure here is a platform bug
       unless the flip journal shows this very read was struck — in
       which case the engine did exactly its job and the failure is
       counted, not reported. *)
    let flips_before = flips_on frame in
    match Mem_encryption.read_page mee mem ~key_id ~frame with
    | (_ : bytes) -> ctx.pages_verified <- ctx.pages_verified + 1
    | exception Mem_encryption.Integrity_violation _ ->
      if flips_on frame > flips_before then ctx.injected_macs <- ctx.injected_macs + 1
      else
        add ctx ~rule:"deep-mac" ~shard ?enclave ~frame
          (Printf.sprintf "MAC verification failed under KeyID %d" key_id)
  in
  Array.iteri
    (fun shard rt ->
      let st = Runtime.state rt in
      Hashtbl.iter
        (fun id (e : Enclave.t) ->
          if not e.Enclave.key_parked then
            List.iter
              (fun ((_ : int), pte) ->
                if pte.Pte.key_id = e.Enclave.key_id then
                  verify ~shard ~enclave:id ~key_id:pte.Pte.key_id ~frame:pte.Pte.ppn ())
              (Page_table.entries e.Enclave.page_table))
        st.State.enclaves;
      List.iter
        (fun (r : Shm.region) ->
          List.iter (fun frame -> verify ~shard ~key_id:r.Shm.key_id ~frame ()) r.Shm.frames)
        (State.shm_regions st))
    runtimes

(* Secure-channel fabric ("no orphaned channel keys",
   docs/PROTOCOL.md §2.3): every live control block names only live
   enclave endpoints — EDESTROY and shard recovery must reap channels
   with their endpoints — sits in the residue class of its home
   shard, and still holds a non-zero binding secret (a wiped binding
   on a live entry means a close path forgot to unlink). *)
let check_chans ctx ~runtimes chans =
  let module Chan = Hypertee_ems.Chan in
  let live_enclave id =
    Array.exists (fun rt -> Runtime.find_enclave rt id <> None) runtimes
  in
  if Chan.shards chans <> Array.length runtimes then
    add ctx ~rule:"chan-residue"
      (Printf.sprintf "fabric sized for %d shard(s) on a %d-shard platform" (Chan.shards chans)
         (Array.length runtimes));
  List.iter
    (fun (v : Chan.view) ->
      ctx.chans_checked <- ctx.chans_checked + 1;
      if (v.Chan.v_chan - 1) mod Array.length runtimes <> v.Chan.v_home then
        add ctx ~rule:"chan-residue" ~shard:v.Chan.v_home
          (Printf.sprintf "channel %d homed outside its id residue class" v.Chan.v_chan);
      if not (live_enclave v.Chan.v_listener) then
        add ctx ~rule:"chan-orphan" ~shard:v.Chan.v_home ~enclave:v.Chan.v_listener
          (Printf.sprintf "channel %d listens for a dead enclave" v.Chan.v_chan);
      (match v.Chan.v_initiator with
      | Chan.Host -> ()
      | Chan.Enclave id ->
        if not (live_enclave id) then
          add ctx ~rule:"chan-orphan" ~shard:v.Chan.v_home ~enclave:id
            (Printf.sprintf "channel %d was opened by a dead enclave" v.Chan.v_chan));
      if not v.Chan.v_binding_live then
        add ctx ~rule:"chan-binding" ~shard:v.Chan.v_home
          (Printf.sprintf "live channel %d holds a wiped binding secret" v.Chan.v_chan))
    (Chan.snapshot chans)

let check ?(deep = false) ?faults ?chans ~mem ~bitmap ~mee ~runtimes () =
  let ctx =
    {
      violations = [];
      claims = Hashtbl.create 512;
      enclaves_checked = 0;
      regions_checked = 0;
      chans_checked = 0;
      pages_verified = 0;
      injected_macs = 0;
    }
  in
  Array.iteri
    (fun shard rt ->
      let st = Runtime.state rt in
      if st.State.id_stride <> Array.length runtimes then
        add ctx ~rule:"id-residue" ~shard
          (Printf.sprintf "shard stride %d does not match the platform's %d shard(s)"
             st.State.id_stride (Array.length runtimes));
      check_residues ctx st ~shard;
      check_ownership_table ctx ~mem st ~shard;
      Hashtbl.iter (fun id e -> check_enclave ctx ~mem st ~shard id e) st.State.enclaves;
      check_regions ctx ~mem st ~shard;
      check_pool ctx ~mem st ~shard;
      check_warm ctx st ~shard)
    runtimes;
  check_keys ctx ~mee runtimes;
  Option.iter (fun c -> check_chans ctx ~runtimes c) chans;
  let frames_swept = check_frames ctx ~mem ~bitmap runtimes in
  if deep then check_macs ctx ?faults ~mem ~mee runtimes;
  {
    violations = List.rev ctx.violations;
    frames_swept;
    enclaves_checked = ctx.enclaves_checked;
    regions_checked = ctx.regions_checked;
    chans_checked = ctx.chans_checked;
    pages_verified = ctx.pages_verified;
    injected_macs = ctx.injected_macs;
    deep;
  }
