(** EMS audit log.

    EMS is the platform's root of trust for management decisions, so
    it keeps an append-only record of every primitive it served:
    opcode, the (EMCall-stamped) sender, the outcome, and a logical
    sequence number. The log lives in EMS private memory — CS
    software cannot read or truncate it — and is the forensic trail
    for the availability/integrity arguments of Table I (e.g. "which
    enclave asked to destroy this region, and was it refused?").

    Bounded: the oldest entries are dropped beyond [capacity], with a
    monotonically increasing sequence number so truncation is
    evident. *)

type outcome = Served | Refused of string

type entry = {
  seq : int;
  opcode : Types.opcode;
  sender : Types.enclave_id option;
  outcome : outcome;
}

(** A platform fault (injected or organic) and whether the recovery
    machinery absorbed it: worker crash/stall + watchdog restart,
    response loss + retransmission, memory integrity violation +
    enclave termination. Separate from the primitive log so the
    forensic trail distinguishes "what was asked" from "what broke". *)
type fault_event = { fault_seq : int; site : string; detail : string; recovered : bool }

type t

(** An empty log retaining at most [capacity] entries of each kind. *)
val create : ?capacity:int -> unit -> t

(** [record t ~opcode ~sender ~outcome] appends one entry. *)
val record : t -> opcode:Types.opcode -> sender:Types.enclave_id option -> outcome:outcome -> unit

(** [record_fault t ~site ~detail ~recovered] appends one fault
    event (bounded like the primitive log). *)
val record_fault : t -> site:string -> detail:string -> recovered:bool -> unit

(** Entries currently retained, oldest first. *)
val entries : t -> entry list

(** Total entries ever recorded (survives truncation). *)
val total : t -> int

(** Fault events currently retained, oldest first. *)
val fault_events : t -> fault_event list

(** Total fault events ever recorded (survives truncation). *)
val faults_total : t -> int

(** [refusals t] — retained entries whose outcome is [Refused]. *)
val refusals : t -> entry list

(** [by_sender t ~sender] — retained entries from one principal. *)
val by_sender : t -> sender:Types.enclave_id option -> entry list

(** Render one entry for logs and failure messages. *)
val pp_entry : Format.formatter -> entry -> unit
