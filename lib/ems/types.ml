type enclave_id = int
type shm_id = int
type perm = Read_only | Read_write
type privilege = Os | User

type opcode =
  | ECREATE
  | EADD
  | EENTER
  | ERESUME
  | EEXIT
  | EDESTROY
  | EALLOC
  | EFREE
  | EWB
  | ESHMGET
  | ESHMAT
  | ESHMDT
  | ESHMSHR
  | ESHMDES
  | EMEAS
  | EATTEST
  | ECHOPEN
  | ECHACC
  | ECHSEND
  | ECHRECV
  | ECHCLOSE
  | ERETIRE
  | EWARM

let all_opcodes =
  [
    ECREATE; EADD; EENTER; ERESUME; EEXIT; EDESTROY; EALLOC; EFREE; EWB; ESHMGET; ESHMAT;
    ESHMDT; ESHMSHR; ESHMDES; EMEAS; EATTEST; ECHOPEN; ECHACC; ECHSEND; ECHRECV; ECHCLOSE;
    ERETIRE; EWARM;
  ]

let opcode_name = function
  | ECREATE -> "ECREATE"
  | EADD -> "EADD"
  | EENTER -> "EENTER"
  | ERESUME -> "ERESUME"
  | EEXIT -> "EEXIT"
  | EDESTROY -> "EDESTROY"
  | EALLOC -> "EALLOC"
  | EFREE -> "EFREE"
  | EWB -> "EWB"
  | ESHMGET -> "ESHMGET"
  | ESHMAT -> "ESHMAT"
  | ESHMDT -> "ESHMDT"
  | ESHMSHR -> "ESHMSHR"
  | ESHMDES -> "ESHMDES"
  | EMEAS -> "EMEAS"
  | EATTEST -> "EATTEST"
  | ECHOPEN -> "ECHOPEN"
  | ECHACC -> "ECHACC"
  | ECHSEND -> "ECHSEND"
  | ECHRECV -> "ECHRECV"
  | ECHCLOSE -> "ECHCLOSE"
  | ERETIRE -> "ERETIRE"
  | EWARM -> "EWARM"

(* Table II privilege column; channel primitives extend the table with
   User privilege, since hosts and enclaves both open channels. The
   warm-pool pair is enclave management proper, so it is OS-only like
   ECREATE/EDESTROY. *)
let required_privilege = function
  | ECREATE | EADD | EENTER | ERESUME | EDESTROY | EWB | EMEAS | ERETIRE | EWARM -> Os
  | EEXIT | EALLOC | EFREE | ESHMGET | ESHMAT | ESHMDT | ESHMSHR | ESHMDES | EATTEST
  | ECHOPEN | ECHACC | ECHSEND | ECHRECV | ECHCLOSE ->
    User

let opcode_semantics = function
  | ECREATE -> "Create an enclave"
  | EADD -> "Load codes and data to an enclave"
  | EENTER -> "Start executing an enclave"
  | ERESUME -> "Resume enclave execution"
  | EEXIT -> "Exit enclave execution"
  | EDESTROY -> "Destroy an enclave"
  | EALLOC -> "Allocate enclave memory"
  | EFREE -> "Release enclave memory"
  | EWB -> "Swap enclave memory"
  | ESHMGET -> "Apply shared memory from EMS"
  | ESHMAT -> "Attach shared memory to enclaves"
  | ESHMDT -> "Detach enclave shared memory"
  | ESHMSHR -> "Share memory with an enclave"
  | ESHMDES -> "Destroy enclave shared memory"
  | EMEAS -> "Measure code and data of enclave"
  | EATTEST -> "Sign enclave and platform"
  | ECHOPEN -> "Open a secure channel to a listening enclave"
  | ECHACC -> "Accept a pending secure channel"
  | ECHSEND -> "Queue a channel segment toward the peer"
  | ECHRECV -> "Dequeue the next channel segment"
  | ECHCLOSE -> "Tear a channel down and wipe its binding"
  | ERETIRE -> "Park a measured enclave in the warm pool"
  | EWARM -> "Revive a parked enclave with a matching measurement"

type enclave_config = {
  code_pages : int;
  data_pages : int;
  heap_pages : int;
  stack_pages : int;
  shared_pages : int;
}

let default_config =
  { code_pages = 4; data_pages = 4; heap_pages = 16; stack_pages = 4; shared_pages = 4 }

let total_static_pages c = c.code_pages + c.data_pages + c.heap_pages + c.stack_pages

type request =
  | Create of { config : enclave_config }
  | Add of { enclave : enclave_id; vpn : int; data : bytes; executable : bool }
  | Enter of { enclave : enclave_id }
  | Resume of { enclave : enclave_id }
  | Exit of { enclave : enclave_id }
  | Destroy of { enclave : enclave_id }
  | Alloc of { enclave : enclave_id; pages : int }
  | Free of { enclave : enclave_id; vpn : int; pages : int }
  | Writeback of { pages_hint : int }
  | Shmget of { owner : enclave_id; pages : int; max_perm : perm }
  | Shmat of { enclave : enclave_id; shm : shm_id; requested_perm : perm }
  | Shmdt of { enclave : enclave_id; shm : shm_id }
  | Shmshr of { owner : enclave_id; shm : shm_id; grantee : enclave_id; perm : perm }
  | Shmdes of { owner : enclave_id; shm : shm_id }
  | Measure of { enclave : enclave_id }
  | Attest of { enclave : enclave_id; user_data : bytes }
  | Page_fault of { enclave : enclave_id; vpn : int }
  | Interrupt of { enclave : enclave_id; pc : int; cause : int }
  | Chan_open of { listener : enclave_id }
  | Chan_accept of { enclave : enclave_id; chan : int }
  | Chan_send of { chan : int; seg : bytes }
  | Chan_recv of { chan : int }
  | Chan_close of { chan : int }
  | Retire of { enclave : enclave_id }
  | Warm_create of { measurement : bytes }

let opcode_of_request = function
  | Create _ -> ECREATE
  | Add _ -> EADD
  | Enter _ -> EENTER
  | Resume _ | Interrupt _ -> ERESUME
  | Exit _ -> EEXIT
  | Destroy _ -> EDESTROY
  | Alloc _ | Page_fault _ -> EALLOC
  | Free _ -> EFREE
  | Writeback _ -> EWB
  | Shmget _ -> ESHMGET
  | Shmat _ -> ESHMAT
  | Shmdt _ -> ESHMDT
  | Shmshr _ -> ESHMSHR
  | Shmdes _ -> ESHMDES
  | Measure _ -> EMEAS
  | Attest _ -> EATTEST
  | Chan_open _ -> ECHOPEN
  | Chan_accept _ -> ECHACC
  | Chan_send _ -> ECHSEND
  | Chan_recv _ -> ECHRECV
  | Chan_close _ -> ECHCLOSE
  | Retire _ -> ERETIRE
  | Warm_create _ -> EWARM

(* Warm-pool affinity: the shard a measurement's parked enclaves live
   on. Both sides of the pool agree on it — the gate routes EWARM
   here, and ERETIRE only parks when the enclave already sits on this
   shard (otherwise an EWARM could never find it; a plain round-robin
   of EWARM deadlocks against the round-robin of ECREATE, landing
   every probe on a shard that never parks the image). Any stable
   digest-to-shard map works; the measurement is a SHA-256, so its
   leading bytes are already uniform. *)
let warm_home ~shards measurement =
  if shards <= 1 then 0
  else if Bytes.length measurement < 8 then 0
  else
    let h = Int64.to_int (Bytes.get_int64_le measurement 0) land max_int in
    h mod shards

type error =
  | No_such_enclave
  | No_such_shm
  | Bad_state of string
  | Out_of_memory
  | Out_of_key_ids
  | Permission_denied of string
  | Not_registered
  | Invalid_argument_ of string
  | Integrity_failure of { frame : int }
  | No_such_channel

let error_message = function
  | No_such_enclave -> "no such enclave"
  | No_such_shm -> "no such shared-memory region"
  | Bad_state s -> "bad enclave state: " ^ s
  | Out_of_memory -> "out of memory"
  | Out_of_key_ids -> "memory-encryption KeyIDs exhausted"
  | Permission_denied s -> "permission denied: " ^ s
  | Not_registered -> "enclave not in the legal connection list"
  | Invalid_argument_ s -> "invalid argument: " ^ s
  | Integrity_failure { frame } ->
    Printf.sprintf "memory integrity violation at frame %d: enclave terminated" frame
  | No_such_channel -> "no such channel"

type response =
  | Ok_unit
  | Ok_created of { enclave : enclave_id }
  | Ok_entered of { enclave : enclave_id }
  | Ok_alloc of { base_vpn : int; pages : int }
  | Ok_writeback of { frames : int list; blobs : (int * bytes) list }
  | Ok_shm of { shm : shm_id }
  | Ok_shmat of { base_vpn : int; pages : int }
  | Ok_measure of { measurement : bytes }
  | Ok_attest of { quote : bytes }
  | Ok_chan of { chan : int; binding : bytes }
  | Ok_seg of { seg : bytes option }
  | Err of error

let pp_opcode fmt op = Format.pp_print_string fmt (opcode_name op)
let pp_error fmt e = Format.pp_print_string fmt (error_message e)
