(** Control-flow-integrity monitoring (paper Sec. IX, approach 3).

    Hardware on the CS side records an enclave's control-flow
    transfers into a buffer in the enclave's private memory; a
    monitoring task on EMS drains the buffer, checks each transfer
    against the enclave's control-flow policy, and terminates the
    enclave on a violation. The paper notes this is safe to host on
    EMS because the monitor's cache footprint is unrelated to any
    management secret.

    The policy is a set of allowed (source, target) edges plus a set
    of valid indirect-branch targets — the usual coarse-grained
    forward-edge CFI model. *)

type policy

(** [policy ~edges ~indirect_targets] — [edges] are allowed direct
    transfers; any transfer into [indirect_targets] is also allowed
    (function entry points for indirect calls / returns). *)
val policy : edges:(int * int) list -> indirect_targets:int list -> policy

type verdict =
  | Clean of int  (** transfers checked *)
  | Violation of { from_pc : int; to_pc : int }
  | Buffer_overflow  (** hardware buffer wrapped before the monitor ran *)

type t

(** A monitor with per-enclave trace buffers of [buffer_capacity]. *)
val create : ?buffer_capacity:int -> unit -> t

(** [register t ~enclave p] installs the policy (at launch, derived
    from the measured binary). *)
val register : t -> enclave:Types.enclave_id -> policy -> unit

(** Hardware side: append one transfer to the enclave's trace buffer. *)
val record_transfer : t -> enclave:Types.enclave_id -> from_pc:int -> to_pc:int -> unit

(** EMS side: drain and check the buffer. A violation or overflow
    leaves the buffer drained and increments [violations]. *)
val monitor : t -> enclave:Types.enclave_id -> verdict

(** Violations detected over the monitor's lifetime. *)
val violations : t -> int

(** Pending (unmonitored) transfers for an enclave. *)
val pending : t -> enclave:Types.enclave_id -> int
