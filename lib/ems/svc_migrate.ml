(** Elasticity service: sealed enclave checkpoint and restore.

    Not a Table II primitive — the platform invokes this directly for
    snapshotting, cross-shard migration and journal replay, so the
    entry points return [result] instead of gate responses. *)

module Phys_mem = Hypertee_arch.Phys_mem
module Mem_encryption = Hypertee_arch.Mem_encryption
module Page_table = Hypertee_arch.Page_table
module Pte = Hypertee_arch.Pte
module Aes = Hypertee_crypto.Aes
module Hmac = Hypertee_crypto.Hmac
module Merkle = Hypertee_crypto.Merkle
module Bytes_ext = Hypertee_util.Bytes_ext
open State

let magic = "HTSNAP1"
let mac_size = 32

type page_record = { vpn : int; r : bool; w : bool; x : bool; resident : bool; blob : bytes }

type snapshot = {
  id : Types.enclave_id;
  config : Types.enclave_config;
  interrupted : bool; (* false = Measured, true = Interrupted *)
  saved_pc : int;
  measurement : bytes;
  heap_cursor : int;
  shm_cursor : int;
  pages : page_record list;
  merkle_root : bytes;
}

(* --- serialization (same u16-length field idiom as Attest) --- *)

let put_field buf b =
  let len = Bytes.length b in
  if len > 0xFFFF then invalid_arg "Svc_migrate: field too long";
  Buffer.add_char buf (Char.chr (len lsr 8));
  Buffer.add_char buf (Char.chr (len land 0xFF));
  Buffer.add_bytes buf b

let put_u64 buf v =
  let b = Bytes.create 8 in
  Bytes_ext.set_u64_le b 0 (Int64.of_int v);
  Buffer.add_bytes buf b

let serialize keys s =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  put_u64 buf s.id;
  put_u64 buf s.config.Types.code_pages;
  put_u64 buf s.config.Types.data_pages;
  put_u64 buf s.config.Types.heap_pages;
  put_u64 buf s.config.Types.stack_pages;
  put_u64 buf s.config.Types.shared_pages;
  Buffer.add_char buf (if s.interrupted then '\001' else '\000');
  put_u64 buf s.saved_pc;
  put_field buf s.measurement;
  put_u64 buf s.heap_cursor;
  put_u64 buf s.shm_cursor;
  put_u64 buf (List.length s.pages);
  List.iter
    (fun p ->
      put_u64 buf p.vpn;
      let flags =
        (if p.r then 1 else 0) lor (if p.w then 2 else 0) lor (if p.x then 4 else 0)
        lor if p.resident then 8 else 0
      in
      Buffer.add_char buf (Char.chr flags);
      put_field buf p.blob)
    s.pages;
  put_field buf s.merkle_root;
  let body = Buffer.to_bytes buf in
  Bytes.cat body (Hmac.hmac ~key:(Keymgmt.snapshot_key keys) body)

exception Malformed of string

let parse keys blob =
  let total = Bytes.length blob in
  if total < String.length magic + mac_size then raise (Malformed "snapshot too short");
  let body_len = total - mac_size in
  let body = Bytes.sub blob 0 body_len in
  let mac = Bytes.sub blob body_len mac_size in
  if not (Bytes_ext.equal_ct mac (Hmac.hmac ~key:(Keymgmt.snapshot_key keys) body)) then
    raise (Malformed "snapshot MAC mismatch");
  let pos = ref 0 in
  let take n =
    if !pos + n > body_len then raise (Malformed "snapshot truncated");
    let b = Bytes.sub body !pos n in
    pos := !pos + n;
    b
  in
  let take_field () =
    let hdr = take 2 in
    let len = (Char.code (Bytes.get hdr 0) lsl 8) lor Char.code (Bytes.get hdr 1) in
    take len
  in
  let take_u64 () = Int64.to_int (Bytes_ext.get_u64_le (take 8) 0) in
  let take_byte () = Char.code (Bytes.get (take 1) 0) in
  if Bytes.to_string (take (String.length magic)) <> magic then
    raise (Malformed "bad snapshot magic");
  let id = take_u64 () in
  let code_pages = take_u64 () in
  let data_pages = take_u64 () in
  let heap_pages = take_u64 () in
  let stack_pages = take_u64 () in
  let shared_pages = take_u64 () in
  let config = Types.{ code_pages; data_pages; heap_pages; stack_pages; shared_pages } in
  let interrupted = take_byte () = 1 in
  let saved_pc = take_u64 () in
  let measurement = take_field () in
  let heap_cursor = take_u64 () in
  let shm_cursor = take_u64 () in
  let n_pages = take_u64 () in
  if n_pages < 0 || n_pages > 0x100000 then raise (Malformed "implausible page count");
  let pages =
    List.init n_pages (fun _ ->
        let vpn = take_u64 () in
        let flags = take_byte () in
        let blob = take_field () in
        {
          vpn;
          r = flags land 1 <> 0;
          w = flags land 2 <> 0;
          x = flags land 4 <> 0;
          resident = flags land 8 <> 0;
          blob;
        })
  in
  let merkle_root = take_field () in
  if !pos <> body_len then raise (Malformed "trailing bytes in snapshot");
  (* Re-bind the Merkle root to the page blobs actually carried. *)
  let recomputed =
    match pages with
    | [] -> Bytes.make 32 '\000'
    | _ -> Merkle.root (Merkle.build (List.map (fun p -> p.blob) pages))
  in
  if not (Bytes_ext.equal_ct recomputed merkle_root) then
    raise (Malformed "snapshot Merkle root mismatch");
  {
    id;
    config;
    interrupted;
    saved_pc;
    measurement;
    heap_cursor;
    shm_cursor;
    pages;
    merkle_root;
  }

(* --- checkpoint --- *)

(* Quiesce precondition: an enclave can be sealed only while no CS
   core is inside it (Measured or Interrupted) and no shared-memory
   attachment pins it to peers on this shard. *)
let can_checkpoint (e : Enclave.t) =
  match e.Enclave.state with
  | Enclave.Measured | Enclave.Interrupted ->
    if e.Enclave.attached_shms <> [] then
      Error (Types.Bad_state "shared memory attached; detach before checkpoint")
    else if e.Enclave.measurement = None then Error (Types.Bad_state "enclave not measured")
    else Ok ()
  | s -> Error (Types.Bad_state (Enclave.state_name s))

let checkpoint t ~enclave =
  match get_enclave t enclave with
  | Error e -> Error e
  | Ok e -> (
    match can_checkpoint e with
    | Error err -> Error err
    | Ok () -> (
      let swap = Aes.expand (Keymgmt.swap_key t.keys) in
      try
        (* Resident private pages, EWB-encrypted under the swap key
           with the vpn as tweak — exactly the wire format EWB blobs
           use, so restore and fault-in share one decryption path. *)
        let resident =
          List.map
            (fun (vpn, (pte : Pte.t)) ->
              let blob =
                if e.Enclave.key_parked then
                  (* DRAM already holds swap-key ciphertext (parked in
                     place); reading through the MEE would fault on the
                     revoked KeyID. *)
                  Phys_mem.read t.mem ~frame:pte.Pte.ppn
                else
                  let pt =
                    Mem_encryption.read_page t.mee t.mem ~key_id:pte.Pte.key_id
                      ~frame:pte.Pte.ppn
                  in
                  Aes.encrypt_page swap ~page_number:vpn pt
              in
              {
                vpn;
                r = pte.Pte.readable;
                w = pte.Pte.writable;
                x = pte.Pte.executable;
                resident = true;
                blob;
              })
            (private_leaves e)
        in
        (* EWB-evicted pages are already in blob form. *)
        let swapped =
          Hashtbl.fold
            (fun vpn blob acc ->
              { vpn; r = true; w = true; x = false; resident = false; blob } :: acc)
            e.Enclave.swapped_out []
        in
        let pages = List.sort (fun a b -> compare a.vpn b.vpn) (resident @ swapped) in
        let merkle_root =
          match pages with
          | [] -> Bytes.make 32 '\000'
          | _ -> Merkle.root (Merkle.build (List.map (fun p -> p.blob) pages))
        in
        Ok
          (serialize t.keys
             {
               id = e.Enclave.id;
               config = e.Enclave.config;
               interrupted = e.Enclave.state = Enclave.Interrupted;
               saved_pc = e.Enclave.saved_pc;
               measurement = Enclave.measurement_exn e;
               heap_cursor = e.Enclave.heap_cursor;
               shm_cursor = e.Enclave.shm_cursor;
               pages;
               merkle_root;
             })
      with Mem_encryption.Integrity_violation { frame } ->
        Error (Types.Integrity_failure { frame })))

(* --- restore --- *)

let restore t ?force_id blob =
  match parse t.keys blob with
  | exception Malformed m -> Error (Types.Invalid_argument_ ("sealed snapshot rejected: " ^ m))
  | snap -> (
    let id = Option.value force_id ~default:t.next_enclave_id in
    if Hashtbl.mem t.enclaves id then Error (Types.Bad_state "restore target id already live")
    else
      match allocate_key_id t ~except:(-1) with
      | None -> Error Types.Out_of_key_ids
      | Some key_id -> (
        let pt_alloc () =
          match Mem_pool.take t.pool ~n:1 with
          | Some [ f ] -> f
          | Some _ | None -> failwith "out of memory"
        in
        match
          Page_table.create t.mem ~node_owner:(Phys_mem.Page_table id) ~alloc:pt_alloc
        with
        | exception Failure _ ->
          (* Release the reserved KeyID: [allocate_key_id] claimed it. *)
          Mem_encryption.revoke t.mee ~key_id;
          Error Types.Out_of_memory
        | page_table -> (
          let e = Enclave.create ~id ~config:snap.config ~page_table ~key_id in
          (* Re-key: a fresh KeyID with a key bound to the restored
             identity — the sealed blob never crosses in DRAM key
             form, and the source's KeyID (possibly on another shard)
             stays untouched. *)
          let key =
            Keymgmt.memory_key t.keys ~enclave_measurement:snap.measurement ~enclave_id:id
          in
          Mem_encryption.program t.mee ~key_id key;
          let teardown err =
            let frames = Ownership.frames_of t.ownership id in
            List.iter (fun frame -> Ownership.release t.ownership ~frame) frames;
            Mem_pool.give_back t.pool frames;
            Mem_pool.give_back t.pool (Page_table.node_frames page_table);
            Mem_encryption.revoke t.mee ~key_id;
            Error err
          in
          let swap = Aes.expand (Keymgmt.swap_key t.keys) in
          let residents = List.filter (fun p -> p.resident) snap.pages in
          try
            match take_pool_frames t ~n:(List.length residents) with
            | Error err -> teardown err
            | Ok frames ->
              let result =
                List.fold_left2
                  (fun acc p frame ->
                    match acc with
                    | Error _ -> acc
                    | Ok () -> (
                      match map_private_page t e ~vpn:p.vpn ~frame ~r:p.r ~w:p.w ~x:p.x with
                      | Error err -> Error err
                      | Ok () ->
                        let pt = Aes.decrypt_page swap ~page_number:p.vpn p.blob in
                        Mem_encryption.write_page t.mee t.mem ~key_id ~frame pt;
                        Ok ()))
                  (Ok ()) residents frames
              in
              (match result with
              | Error err -> teardown err
              | Ok () ->
                let staging = t.os_request ~n:snap.config.Types.shared_pages in
                if List.length staging < snap.config.Types.shared_pages then begin
                  t.os_return ~frames:staging;
                  teardown Types.Out_of_memory
                end
                else begin
                  List.iteri
                    (fun i frame ->
                      Page_table.map e.Enclave.page_table
                        ~vpn:(e.Enclave.layout.Enclave.staging_base + i)
                        (Pte.leaf ~ppn:frame ~r:true ~w:true ~x:false ~key_id:0))
                    staging;
                  e.Enclave.staging_frames <- staging;
                  List.iter
                    (fun p -> Hashtbl.replace e.Enclave.swapped_out p.vpn p.blob)
                    (List.filter (fun p -> not p.resident) snap.pages);
                  (* Identity restored verbatim: byte-identical
                     measurement, closed measurement stream. *)
                  e.Enclave.measurement <- Some snap.measurement;
                  e.Enclave.measurement_ctx <- None;
                  e.Enclave.saved_pc <- snap.saved_pc;
                  e.Enclave.heap_cursor <- snap.heap_cursor;
                  e.Enclave.shm_cursor <- snap.shm_cursor;
                  e.Enclave.state <-
                    (if snap.interrupted then Enclave.Interrupted else Enclave.Measured);
                  Hashtbl.replace t.enclaves id e;
                  if (id - 1) mod t.id_stride <> t.shard then State.mark_adopted t id;
                  (* Keep the shard's minting counter ahead of ids it
                     now hosts (journal replay restores by fixed id). *)
                  if (id - 1) mod t.id_stride = t.shard && id >= t.next_enclave_id then
                    t.next_enclave_id <- id + t.id_stride;
                  Ok id
                end)
          with Failure _ -> teardown Types.Out_of_memory)))

(* Introspection used by migration and the tests. *)
let snapshot_id blob =
  (* id sits right after the magic; MAC checked later by [restore]. *)
  if Bytes.length blob < String.length magic + 8 then None
  else Some (Int64.to_int (Bytes_ext.get_u64_le blob (String.length magic)))

let snapshot_measurement keys blob =
  match parse keys blob with
  | exception Malformed _ -> None
  | snap -> Some snap.measurement
