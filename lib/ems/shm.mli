(** Shared-memory control structures (paper Sec. V).

    Each region (identified by ShmID) records its initial sender
    (owner), frames, encryption KeyID, the maximum permission the
    owner declared at ESHMGET, the *legal connection list* populated
    by ESHMSHR after local attestation, and the active attachments.
    The access-control rules of Sec. V-C are enforced here:

    - only enclaves on the legal connection list may attach, at no
      more than their granted permission (anti brute-force ShmID
      guessing);
    - only the initial sender may destroy the region, and only when
      no connection is active (anti malicious-release);
    - permission updates go through the owner. *)

type connection = { perm : Types.perm; mutable attached_at : int option (* base vpn *) }

type region = {
  shm : Types.shm_id;
  owner : Types.enclave_id;
  frames : int list;
  key_id : int;
  max_perm : Types.perm;
  legal : (Types.enclave_id, connection) Hashtbl.t;
}

type t

(** An empty control-structure table. *)
val create : unit -> t

(** [register t ~shm ~owner ~frames ~key_id ~max_perm] records a new
    region (ESHMGET). The owner is implicitly on the legal list with
    [max_perm] and not yet attached. *)
val register :
  t ->
  shm:Types.shm_id ->
  owner:Types.enclave_id ->
  frames:int list ->
  key_id:int ->
  max_perm:Types.perm ->
  region

(** The region registered under a ShmID, if any. *)
val find : t -> Types.shm_id -> region option

(** [grant t ~shm ~caller ~grantee ~perm] — ESHMSHR. Fails unless
    [caller] is the owner; clamps [perm] to [max_perm]. *)
val grant :
  t ->
  shm:Types.shm_id ->
  caller:Types.enclave_id ->
  grantee:Types.enclave_id ->
  perm:Types.perm ->
  (unit, Types.error) result

(** [attach t ~shm ~enclave ~requested_perm] — ESHMAT access check.
    Returns the effective permission. *)
val attach :
  t ->
  shm:Types.shm_id ->
  enclave:Types.enclave_id ->
  requested_perm:Types.perm ->
  base_vpn:int ->
  (Types.perm, Types.error) result

(** [detach t ~shm ~enclave] — ESHMDT. *)
val detach : t -> shm:Types.shm_id -> enclave:Types.enclave_id -> (unit, Types.error) result

(** [destroy t ~shm ~caller] — ESHMDES. Only the owner, only with no
    active connections. Returns the region for frame reclamation. *)
val destroy : t -> shm:Types.shm_id -> caller:Types.enclave_id -> (region, Types.error) result

(** Active-connection count (attached enclaves). *)
val active_connections : region -> int

(** Effective permission of an attached enclave, if attached. *)
val attached_perm : region -> Types.enclave_id -> Types.perm option

(** Every live region, in creation order. *)
val regions : t -> region list
