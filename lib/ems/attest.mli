(** Measurement, attestation and sealing services (paper Sec. VI).

    - Quotes: EMS signs (platform measurement, enclave measurement,
      user data) — the platform certificate with EK, the enclave
      quote with AK. A remote verifier checks both signatures and
      compares measurements against expectations.
    - Local attestation: a report MAC keyed by a report key derived
      from the challenger's measurement and SK, so only EMS (and thus
      only same-platform enclaves via EMS) can produce or check it.
    - Sealing: AES-CTR + MAC under a sealing key derived from the
      enclave measurement, so only the same enclave (same code) on
      the same platform can unseal. *)

(** The signed quote structure returned by EATTEST. *)
type quote = {
  platform_measurement : bytes;
  enclave_measurement : bytes;
  user_data : bytes;
  platform_signature : bytes;  (** EK over platform measurement *)
  quote_signature : bytes;  (** AK over the whole body *)
}

(** [make_quote keys ~platform_measurement ~enclave_measurement
    ~user_data] — the EATTEST service routine. *)
val make_quote :
  Keymgmt.t -> platform_measurement:bytes -> enclave_measurement:bytes -> user_data:bytes -> quote

(** Wire encoding (what travels to the remote verifier). *)
val quote_to_bytes : quote -> bytes

(** Decode a wire quote; [None] on malformed input. *)
val quote_of_bytes : bytes -> quote option

(** [verify_quote ~ek ~ak q] — the remote verifier's check: both
    signatures valid under the published public keys. *)
val verify_quote :
  ek:Hypertee_crypto.Rsa.public -> ak:Hypertee_crypto.Rsa.public -> quote -> bool

(** Local attestation report: MAC over (verifier measurement,
    challenger measurement) under the report key. *)
type report = { verifier_measurement : bytes; challenger_measurement : bytes; mac : bytes }

(** [make_report keys ~verifier_measurement ~challenger_measurement]
    — the local-attestation service routine. *)
val make_report :
  Keymgmt.t -> verifier_measurement:bytes -> challenger_measurement:bytes -> report

(** Check a report MAC — succeeds only on the same platform. *)
val verify_report : Keymgmt.t -> report -> bool

(** [seal keys ~enclave_measurement data] -> sealed blob;
    [unseal] inverts it, [None] on tamper or wrong measurement. *)
val seal : Keymgmt.t -> enclave_measurement:bytes -> bytes -> bytes

(** Inverse of {!seal}; [None] on tamper or wrong measurement. *)
val unseal : Keymgmt.t -> enclave_measurement:bytes -> bytes -> bytes option
