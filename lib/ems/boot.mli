(** Secure boot (paper Sec. VI, "Secure boot").

    Boot order after the chip's initialisation logic: the EMS BootROM
    verifies the EMS Runtime — stored encrypted in private flash,
    its expected hash burnt into on-chip EEPROM — then verifies the
    CS firmware (EMCall) the same way, and only then releases the CS
    OS. A mismatch at any stage halts the platform before the
    compromised component runs.

    Manufacturing ([provision]) produces the flash/EEPROM contents;
    [boot] replays the chain and yields the platform measurement
    (the value EMS later signs in attestation quotes), or the stage
    that failed. *)

type provisioned = {
  flash_runtime : bytes;  (** AES-encrypted EMS Runtime image *)
  eeprom_runtime_hash : bytes;  (** SHA-256 of the plaintext image *)
  firmware : bytes;  (** EMCall firmware (plaintext, hash-checked) *)
  eeprom_firmware_hash : bytes;
  flash_key : bytes;  (** burnt into eFuse with the root keys *)
}

(** [provision rng ~runtime_image ~firmware_image] — the
    manufacturing step. *)
val provision :
  Hypertee_util.Xrng.t -> runtime_image:bytes -> firmware_image:bytes -> provisioned

type stage = Ems_boot_rom | Ems_runtime | Cs_firmware | Cs_os

(** Human-readable stage label for reports. *)
val stage_name : stage -> string

type outcome =
  | Booted of { platform_measurement : bytes; stages : stage list }
  | Halted of { at : stage; reason : string }

(** [boot p] replays the verification chain against the provisioned
    storage. *)
val boot : provisioned -> outcome

(** Convenience predicates for tests. *)
val booted : outcome -> bool
