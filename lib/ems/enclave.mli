(** Enclave control structure (ECS) and life-cycle state machine.

    Lives in EMS private memory; CS software never sees it. Tracks
    the enclave's state, private page table, measurement, KeyID,
    virtual-address layout, and attachments. State machine:

    {v
      ECREATE -> Loading --EADD*--> Loading --EMEAS--> Measured
      Measured --EENTER--> Running --EEXIT--> Measured
      Running --interrupt--> Interrupted --ERESUME--> Running
      Measured --ERETIRE--> Parked --EWARM--> Measured
      any --EDESTROY--> Destroyed
    v}

    [Parked] is the warm-pool state: the enclave keeps its id, KeyID,
    pages and measurement, but is invisible to every primitive except
    EWARM (which revives it) and EDESTROY (which evicts it). *)

type state = Loading | Measured | Running | Interrupted | Parked | Destroyed

(** Virtual-address layout of an enclave (page numbers). Code starts
    at [code_base]; heap grows up from [heap_base]; the EALLOC cursor
    tracks dynamic growth; shared-memory windows are placed from
    [shm_base] upward. *)
type layout = {
  code_base : int;
  data_base : int;
  heap_base : int;
  stack_base : int;
  staging_base : int;  (** HostApp <-> enclave staging window *)
  shm_base : int;
}

type t = {
  id : Types.enclave_id;
  config : Types.enclave_config;
  layout : layout;
  page_table : Hypertee_arch.Page_table.t;
  mutable key_id : int;
      (** memory-encryption KeyID; reassigned if the key is parked
          and later revived (Sec. IV-C KeyID exhaustion) *)
  mutable key_parked : bool;
      (** the KeyID was released under pressure; private pages sit
          re-encrypted under the EMS swap key until revival *)
  mutable state : state;
  mutable measurement_ctx : Hypertee_crypto.Sha256.ctx option;
      (** open while Loading; consumed by EMEAS *)
  mutable measurement : bytes option;  (** set by EMEAS *)
  mutable heap_cursor : int;  (** next free heap vpn *)
  mutable shm_cursor : int;  (** next free shm-window vpn *)
  mutable attached_shms : (Types.shm_id * int) list;  (** shm -> base vpn *)
  mutable saved_pc : int;  (** context saved on interrupt *)
  mutable swapped_out : (int, bytes) Hashtbl.t;
      (** vpn -> encrypted blob for pages EWB evicted *)
  mutable staging_frames : int list;
      (** HostApp-owned frames mapped into the staging window
          (plaintext, KeyID 0, host-visible — Sec. IV-A data
          movement) *)
  mutable added_pages : (int * bool) list;
      (** EADD history in issue order, (vpn, executable): ERETIRE
          replays it to re-derive the measurement from the resident
          pages before parking *)
}

(** Human-readable state label for reports and errors. *)
val state_name : state -> string

(** The virtual-address layout a given config produces. Exposed so
    external models (the differential oracle) can predict cursor
    positions without duplicating the address arithmetic. *)
val make_layout : Types.enclave_config -> layout

(** [create ~id ~config ~page_table ~key_id] a fresh ECS in Loading
    state with an open measurement context. *)
val create :
  id:Types.enclave_id ->
  config:Types.enclave_config ->
  page_table:Hypertee_arch.Page_table.t ->
  key_id:int ->
  t

(** Legal-transition checks; [Error] carries the offending state. *)
val can_add : t -> (unit, Types.error) result

(** EMEAS is legal only while still Loading. *)
val can_measure : t -> (unit, Types.error) result

(** EENTER requires a Measured (built, not yet entered) enclave. *)
val can_enter : t -> (unit, Types.error) result

(** ERESUME requires an Interrupted enclave. *)
val can_resume : t -> (unit, Types.error) result

(** EEXIT requires a Running or Interrupted enclave. *)
val can_exit : t -> (unit, Types.error) result

(** ERETIRE requires a Measured (idle) enclave. *)
val can_retire : t -> (unit, Types.error) result

(** Virtual page ranges, derived from config + layout. *)
val static_vpns : t -> int list

(** The finalized measurement.
    @raise Invalid_argument before EMEAS ran. *)
val measurement_exn : t -> bytes
