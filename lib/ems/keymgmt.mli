(** EMS key management (paper Sec. VI).

    Root keys live in the (simulated) eFuse: the Endorsement Key (EK,
    an RSA keypair whose public half a certificate authority vouches
    for) and the Sealed Key (SK, a random symmetric root). Everything
    else is derived: the Attestation Key (AK) from SK and a salt,
    memory-encryption keys from SK and the enclave measurement,
    report keys from SK and the challenger measurement, sealing keys
    from SK and the enclave measurement. All derivation happens on
    EMS; CS never sees any of these values. *)

type t

(** [provision rng] burns fresh root keys into the eFuse (the
    manufacturing step). Deterministic given the RNG. *)
val provision : Hypertee_util.Xrng.t -> t

(** Public halves, exportable to verifiers. *)
val ek_public : t -> Hypertee_crypto.Rsa.public

val ak_public : t -> Hypertee_crypto.Rsa.public
(** Public half of the attestation key. *)

(** [sign_with_ek t msg] — platform certificate signature. *)
val sign_with_ek : t -> bytes -> bytes

(** [sign_with_ak t msg] — enclave quote signature. *)
val sign_with_ak : t -> bytes -> bytes

(** [memory_key t ~enclave_measurement ~enclave_id] 16-byte AES key
    for enclave private memory. *)
val memory_key : t -> enclave_measurement:bytes -> enclave_id:int -> bytes

(** [shm_key t ~owner ~shm_id] dedicated shared-memory key derived
    from the initial sender's id and the ShmID (Sec. V-A). *)
val shm_key : t -> owner:int -> shm_id:int -> bytes

(** [channel_binding t ~chan ~listener] 16-byte secure-channel
    binding secret (docs/PROTOCOL.md §4.1), derived from SK, the
    channel id and the listening enclave's id. EMS hands it to both
    endpoints at ECHOPEN/ECHACC; the handshake mixes it into the
    master secret so a session is cryptographically pinned to the
    channel the EMS set up. *)
val channel_binding : t -> chan:int -> listener:int -> bytes

(** [report_key t ~challenger_measurement] for local attestation. *)
val report_key : t -> challenger_measurement:bytes -> bytes

(** [sealing_key t ~enclave_measurement] for data sealing. *)
val sealing_key : t -> enclave_measurement:bytes -> bytes

(** [swap_key t] key protecting EWB page blobs. *)
val swap_key : t -> bytes

(** [snapshot_key t] 32-byte HMAC key sealing checkpoint snapshots
    ({!Svc_migrate}). Derived from SK so any EMS shard of the same
    platform can verify and restore a snapshot another shard
    produced. *)
val snapshot_key : t -> bytes

(** [erase t] overwrites the symmetric roots with random-looking
    values (decommissioning); all further derivations differ. *)
val erase : t -> Hypertee_util.Xrng.t -> unit
