(** Service-time model for enclave primitives on the EMS core.

    Each primitive's cost has three parts:
    - fixed dispatch work on the EMS core (decode request, sanity
      check, look up control structures, build response);
    - per-page data work (zeroing, page-table edits, bitmap updates),
      scaled by the EMS core's strength;
    - crypto work (measurement hashing, page encryption, signatures),
      which runs either on the crypto engine or in software on the
      EMS core (Table IV's comparison).

    All results in nanoseconds. The round-trip transport on top of
    this (EMCall entry, mailbox hops, polling) is costed in
    [Hypertee_cs.Emcall]. *)

type t

(** [create ~ems ~engine] — a model for the given EMS core
    strength and crypto engine (hardware or software timings). *)
val create : ems:Hypertee_arch.Config.core -> engine:Hypertee_crypto.Engine.t -> t

(** The core configuration the model was built for. *)
val ems_core : t -> Hypertee_arch.Config.core

(** The crypto-engine timing model in use. *)
val engine : t -> Hypertee_crypto.Engine.t

(** Fixed dispatch cost of any primitive. *)
val dispatch_ns : t -> float

(** Per-page management work (map + zero + bitmap + ownership). *)
val page_map_ns : t -> float

(** [service_ns t request] — full EMS-side service time for the
    request, using page counts / byte sizes found in the payload. *)
val service_ns : t -> Types.request -> float

(** Individual primitive costs used by the harness (page counts given
    explicitly). *)
val create_ns : t -> static_pages:int -> float

(** One EADD: map + copy + measurement-extend one page. *)
val add_page_ns : t -> float

(** Measurement finalization over [bytes] of loaded content. *)
val measure_ns : t -> bytes:int -> float

(** EALLOC of [pages] from the EMS pool. *)
val alloc_ns : t -> pages:int -> float

(** EATTEST: quote build + two signatures. *)
val attest_ns : t -> float

(** EENTER/ERESUME context switch into the enclave. *)
val enter_ns : t -> float

(** EWB writeback of [pages] (re-encryption included). *)
val writeback_ns : t -> pages:int -> float
