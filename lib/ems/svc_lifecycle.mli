(** Lifecycle service: build, run, tear down enclaves.

    Serves ECREATE, EADD, EENTER, ERESUME (and the interrupt save
    path that shares its opcode), EEXIT, EDESTROY. *)

val name : string
val opcodes : Types.opcode list

(** Direct destroy entry for integrity containment: terminate an
    enclave without going through opcode dispatch. *)
val destroy : State.t -> enclave:Types.enclave_id -> Types.response

val handle : Registry.handler
val register : Registry.t -> unit
