(** Lifecycle service: build, run, tear down, and recycle enclaves.

    Serves ECREATE, EADD, EENTER, ERESUME (and the interrupt save
    path that shares its opcode), EEXIT, EDESTROY, and the warm-pool
    pair ERETIRE (park a measured enclave after re-deriving its
    measurement from the resident pages) / EWARM (revive a parked
    enclave whose measurement matches, skipping rebuild). *)

(** Registry name of this service. *)
val name : string

(** The Table II opcodes this service claims. *)
val opcodes : Types.opcode list

(** Direct destroy entry for integrity containment: terminate an
    enclave without going through opcode dispatch. *)
val destroy : State.t -> enclave:Types.enclave_id -> Types.response

(** The service routine (dispatched through {!Registry}). *)
val handle : Registry.handler

(** Register {!handle} for each of {!opcodes}. *)
val register : Registry.t -> unit
