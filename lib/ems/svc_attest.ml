(** Measurement & attestation service: EMEAS, EATTEST (Sec. V-B). *)

open State

let name = "attest"
let opcodes = Types.[ EMEAS; EATTEST ]

let handle_measure t ~enclave =
  let* e = get_enclave t enclave in
  let* () = Enclave.can_measure e in
  (match e.Enclave.measurement_ctx with
  | None -> Types.Err (Types.Bad_state "measurement already finalized")
  | Some ctx ->
    let m = Hypertee_crypto.Sha256.finalize ctx in
    e.Enclave.measurement_ctx <- None;
    e.Enclave.measurement <- Some m;
    e.Enclave.state <- Enclave.Measured;
    Types.Ok_measure { measurement = m })

let handle_attest t ~sender ~enclave ~user_data =
  let* e = get_enclave t enclave in
  let* () = check_identity ~sender ~target:enclave ~strict:true in
  match e.Enclave.measurement with
  | None -> Types.Err (Types.Bad_state "enclave not measured")
  | Some m ->
    let quote =
      Attest.make_quote t.keys ~platform_measurement:t.platform_measurement
        ~enclave_measurement:m ~user_data
    in
    Types.Ok_attest { quote = Attest.quote_to_bytes quote }

let handle t ~sender (request : Types.request) =
  match request with
  | Types.Measure { enclave } -> handle_measure t ~enclave
  | Types.Attest { enclave; user_data } -> handle_attest t ~sender ~enclave ~user_data
  | _ -> Types.Err (Types.Invalid_argument_ "request outside the attestation service")

let register registry = Registry.register registry ~service:name ~opcodes handle
