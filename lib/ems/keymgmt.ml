type t = {
  mutable sk : bytes; (* symmetric root, 32 bytes *)
  ek : Hypertee_crypto.Rsa.keypair;
  ak : Hypertee_crypto.Rsa.keypair;
}

let provision rng =
  let sk = Hypertee_util.Xrng.bytes rng 32 in
  let ek = Hypertee_crypto.Rsa.generate rng in
  (* AK is derived from SK and a random salt (Sec. VI); we seed an
     RSA keypair deterministically from that derivation. *)
  let salt = Hypertee_util.Xrng.bytes rng 16 in
  let ak_seed = Hypertee_crypto.Hmac.derive ~ikm:sk ~salt ~info:"hypertee-ak-seed" 8 in
  let ak_rng = Hypertee_util.Xrng.create (Hypertee_util.Bytes_ext.get_u64_le ak_seed 0) in
  let ak = Hypertee_crypto.Rsa.generate ak_rng in
  { sk; ek; ak }

let ek_public t = t.ek.Hypertee_crypto.Rsa.public
let ak_public t = t.ak.Hypertee_crypto.Rsa.public
let sign_with_ek t msg = Hypertee_crypto.Rsa.sign t.ek msg
let sign_with_ak t msg = Hypertee_crypto.Rsa.sign t.ak msg

let derive t ~info ~context len =
  Hypertee_crypto.Hmac.derive ~ikm:t.sk ~salt:context ~info len

let int_bytes v =
  let b = Bytes.create 8 in
  Hypertee_util.Bytes_ext.set_u64_le b 0 (Int64.of_int v);
  b

let memory_key t ~enclave_measurement ~enclave_id =
  derive t ~info:"hypertee-memory-key"
    ~context:(Bytes.cat enclave_measurement (int_bytes enclave_id))
    16

let shm_key t ~owner ~shm_id =
  derive t ~info:"hypertee-shm-key" ~context:(Bytes.cat (int_bytes owner) (int_bytes shm_id)) 16

let channel_binding t ~chan ~listener =
  derive t ~info:"hypertee-channel-binding"
    ~context:(Bytes.cat (int_bytes chan) (int_bytes listener))
    16

let report_key t ~challenger_measurement =
  derive t ~info:"hypertee-report-key" ~context:challenger_measurement 16

let sealing_key t ~enclave_measurement =
  derive t ~info:"hypertee-sealing-key" ~context:enclave_measurement 16

let swap_key t = derive t ~info:"hypertee-swap-key" ~context:Bytes.empty 16
let snapshot_key t = derive t ~info:"hypertee-snapshot-key" ~context:Bytes.empty 32

let erase t rng =
  Hypertee_util.Bytes_ext.fill_zero t.sk;
  t.sk <- Hypertee_util.Xrng.bytes rng 32
