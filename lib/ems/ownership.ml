type record =
  | Private of Types.enclave_id
  | Shared_page of { shm : Types.shm_id; attached : Types.enclave_id list }

type t = { table : (int, record) Hashtbl.t }

let create () = { table = Hashtbl.create 256 }

let claim_private t ~frame ~enclave =
  if Hashtbl.mem t.table frame then false
  else begin
    Hashtbl.replace t.table frame (Private enclave);
    true
  end

let claim_shared t ~frame ~shm =
  if Hashtbl.mem t.table frame then false
  else begin
    Hashtbl.replace t.table frame (Shared_page { shm; attached = [] });
    true
  end

let attach t ~frame ~enclave =
  match Hashtbl.find_opt t.table frame with
  | Some (Shared_page { shm; attached }) when not (List.mem enclave attached) ->
    Hashtbl.replace t.table frame (Shared_page { shm; attached = enclave :: attached });
    true
  | Some (Shared_page _) | Some (Private _) | None -> false

let detach t ~frame ~enclave =
  match Hashtbl.find_opt t.table frame with
  | Some (Shared_page { shm; attached }) ->
    let attached = List.filter (fun e -> e <> enclave) attached in
    Hashtbl.replace t.table frame (Shared_page { shm; attached });
    Some (List.length attached)
  | Some (Private _) | None -> None

let release t ~frame = Hashtbl.remove t.table frame
let lookup t ~frame = Hashtbl.find_opt t.table frame
let can_map_private t ~frame = not (Hashtbl.mem t.table frame)

let fold t f init = Hashtbl.fold f t.table init

let shared_zero_attached t =
  Hashtbl.fold
    (fun frame record acc ->
      match record with Shared_page { attached = []; _ } -> frame :: acc | _ -> acc)
    t.table []
  |> List.sort compare

let frames_of t enclave =
  Hashtbl.fold
    (fun frame record acc ->
      match record with Private e when e = enclave -> frame :: acc | _ -> acc)
    t.table []
  |> List.sort compare

let size t = Hashtbl.length t.table
