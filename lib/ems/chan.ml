(* Platform-shared secure-channel fabric: one mutex-guarded table of
   channel control blocks that every EMS shard reads and writes, so a
   channel's endpoints can sit on different shards (the fabric is the
   cross-shard transport). Channel ids are minted with the same
   residue discipline as enclave ids — shard [s] mints s+1, s+1+N, …
   — so [(chan-1) mod N] recovers a channel's home shard and the
   EMCall gate can route data-plane requests without a lookup.

   The fault injector hooks the queue-push path: Chan_corrupt flips a
   byte, Chan_truncate drops a tail, Chan_reorder swaps the segment
   with the one queued before it. The record layer above must turn
   each of these into a detected failure, never into silently wrong
   plaintext. *)

type endpoint = Host | Enclave of Types.enclave_id

let endpoint_of_sender = function None -> Host | Some id -> Enclave id

type entry = {
  chan : int;
  home : int;
  listener : Types.enclave_id;
  initiator : endpoint;
  binding : bytes;
  mutable accepted : bool;
  mutable closed : bool;
  mutable to_listener : bytes list;  (* oldest first *)
  mutable to_initiator : bytes list;
}

type t = {
  mutex : Mutex.t;
  entries : (int, entry) Hashtbl.t;
  mints : int array;  (* next chan id per shard *)
  shards : int;
  mutable injector : Hypertee_faults.Fault.t option;
  mutable opened : int;
  mutable accepted_n : int;
  mutable closed_n : int;
  mutable segs_queued : int;
  mutable segs_delivered : int;
  mutable faults_injected : int;
}

let queue_cap = 64

let create ~shards =
  if shards < 1 then invalid_arg "Chan.create: shards must be >= 1";
  {
    mutex = Mutex.create ();
    entries = Hashtbl.create 32;
    mints = Array.init shards (fun s -> s + 1);
    shards;
    injector = None;
    opened = 0;
    accepted_n = 0;
    closed_n = 0;
    segs_queued = 0;
    segs_delivered = 0;
    faults_injected = 0;
  }

let set_injector t inj =
  Mutex.lock t.mutex;
  t.injector <- inj;
  Mutex.unlock t.mutex

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let home_of t chan = (chan - 1) mod t.shards

let open_ t ~shard ~listener ~initiator ~binding_of =
  locked t (fun () ->
      let chan = t.mints.(shard) in
      t.mints.(shard) <- chan + t.shards;
      let binding = binding_of chan in
      let entry =
        {
          chan;
          home = shard;
          listener;
          initiator;
          binding;
          accepted = false;
          closed = false;
          to_listener = [];
          to_initiator = [];
        }
      in
      Hashtbl.replace t.entries chan entry;
      t.opened <- t.opened + 1;
      (chan, Bytes.copy binding))

let find t chan =
  match Hashtbl.find_opt t.entries chan with
  | Some e when not e.closed -> Ok e
  | _ -> Error Types.No_such_channel

let accept t ~chan ~enclave =
  locked t (fun () ->
      match find t chan with
      | Error _ as e -> e
      | Ok e ->
        if e.listener <> enclave then
          Error (Types.Permission_denied "channel is not listed for this enclave")
        else if e.accepted then Error (Types.Bad_state "channel already accepted")
        else begin
          e.accepted <- true;
          t.accepted_n <- t.accepted_n + 1;
          Ok (Bytes.copy e.binding)
        end)

(* Which queue a sender writes into: the initiator endpoint writes
   toward the listener, the listener writes toward the initiator. *)
let direction e ~(sender : endpoint) =
  if sender = e.initiator then Ok `To_listener
  else
    match sender with
    | Enclave id when id = e.listener -> Ok `To_initiator
    | _ -> Error (Types.Permission_denied "sender is not an endpoint of this channel")

let inject t seg =
  match t.injector with
  | None -> seg
  | Some inj ->
    let module F = Hypertee_faults.Fault in
    let seg =
      if F.fire inj F.Chan_corrupt && Bytes.length seg > 0 then begin
        let seg = Bytes.copy seg in
        let i = F.draw_int inj F.Chan_corrupt (Bytes.length seg) in
        Bytes.set_uint8 seg i (Bytes.get_uint8 seg i lxor 0x20);
        t.faults_injected <- t.faults_injected + 1;
        seg
      end
      else seg
    in
    if F.fire inj F.Chan_truncate && Bytes.length seg > 1 then begin
      t.faults_injected <- t.faults_injected + 1;
      Bytes.sub seg 0 (1 + F.draw_int inj F.Chan_truncate (Bytes.length seg - 1))
    end
    else seg

let reorder_fires t =
  match t.injector with
  | None -> false
  | Some inj ->
    let module F = Hypertee_faults.Fault in
    if F.fire inj F.Chan_reorder then begin
      t.faults_injected <- t.faults_injected + 1;
      true
    end
    else false

(* Append [seg] to [q]; under Chan_reorder, insert it *before* the
   last queued segment instead, swapping delivery order. *)
let push t q seg =
  let seg = inject t seg in
  if reorder_fires t && q <> [] then begin
    let rec ins = function
      | [ last ] -> [ seg; last ]
      | x :: rest -> x :: ins rest
      | [] -> [ seg ]
    in
    ins q
  end
  else q @ [ seg ]

let send t ~chan ~sender ~seg =
  locked t (fun () ->
      match find t chan with
      | Error _ as e -> e
      | Ok e -> (
        if Bytes.length seg = 0 || Bytes.length seg > 1024 then
          Error (Types.Invalid_argument_ "segment size out of range")
        else
          match direction e ~sender with
          | Error _ as err -> err
          | Ok `To_listener ->
            if List.length e.to_listener >= queue_cap then
              Error (Types.Invalid_argument_ "channel queue full")
            else begin
              e.to_listener <- push t e.to_listener seg;
              t.segs_queued <- t.segs_queued + 1;
              Ok ()
            end
          | Ok `To_initiator ->
            if List.length e.to_initiator >= queue_cap then
              Error (Types.Invalid_argument_ "channel queue full")
            else begin
              e.to_initiator <- push t e.to_initiator seg;
              t.segs_queued <- t.segs_queued + 1;
              Ok ()
            end))

let recv t ~chan ~sender =
  locked t (fun () ->
      match find t chan with
      | Error _ as e -> e
      | Ok e -> (
        match direction e ~sender with
        | Error _ as err -> err
        | Ok dir -> (
          let q = match dir with `To_listener -> e.to_initiator | `To_initiator -> e.to_listener in
          match q with
          | [] -> Ok None
          | seg :: rest ->
            (match dir with
            | `To_listener -> e.to_initiator <- rest
            | `To_initiator -> e.to_listener <- rest);
            t.segs_delivered <- t.segs_delivered + 1;
            Ok (Some seg))))

let wipe_entry e =
  Hypertee_util.Bytes_ext.fill_zero e.binding;
  e.to_listener <- [];
  e.to_initiator <- [];
  e.closed <- true

let close t ~chan ~sender =
  locked t (fun () ->
      match find t chan with
      | Error _ as e -> e
      | Ok e -> (
        match direction e ~sender with
        | Error _ as err -> err
        | Ok _ ->
          wipe_entry e;
          Hashtbl.remove t.entries chan;
          t.closed_n <- t.closed_n + 1;
          Ok ()))

let drop_for_enclave t id =
  locked t (fun () ->
      let doomed =
        Hashtbl.fold
          (fun chan e acc ->
            if e.listener = id || e.initiator = Enclave id then (chan, e) :: acc else acc)
          t.entries []
      in
      List.iter
        (fun (chan, e) ->
          wipe_entry e;
          Hashtbl.remove t.entries chan;
          t.closed_n <- t.closed_n + 1)
        doomed;
      List.length doomed)

let drop_home t ~home =
  locked t (fun () ->
      let doomed =
        Hashtbl.fold (fun chan e acc -> if e.home = home then (chan, e) :: acc else acc) t.entries []
      in
      List.iter
        (fun (chan, e) ->
          wipe_entry e;
          Hashtbl.remove t.entries chan;
          t.closed_n <- t.closed_n + 1)
        doomed;
      List.length doomed)

type view = {
  v_chan : int;
  v_home : int;
  v_listener : Types.enclave_id;
  v_initiator : endpoint;
  v_accepted : bool;
  v_queued : int;
  v_binding_live : bool;  (* binding secret not all-zero (i.e. not yet wiped) *)
}

let snapshot t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ e acc ->
          {
            v_chan = e.chan;
            v_home = e.home;
            v_listener = e.listener;
            v_initiator = e.initiator;
            v_accepted = e.accepted;
            v_queued = List.length e.to_listener + List.length e.to_initiator;
            v_binding_live = Bytes.exists (fun c -> c <> '\000') e.binding;
          }
          :: acc)
        t.entries []
      |> List.sort (fun a b -> compare a.v_chan b.v_chan))

let live t = locked t (fun () -> Hashtbl.length t.entries)
let shards t = t.shards

let publish_metrics t m =
  let open Hypertee_obs.Metrics in
  locked t (fun () ->
      set_counter (counter m ~help:"channels opened" "chan.opened") t.opened;
      set_counter (counter m ~help:"channels accepted" "chan.accepted") t.accepted_n;
      set_counter (counter m ~help:"channels closed or reaped" "chan.closed") t.closed_n;
      set_counter (counter m ~help:"segments queued" "chan.segs_queued") t.segs_queued;
      set_counter (counter m ~help:"segments delivered" "chan.segs_delivered") t.segs_delivered;
      set_counter (counter m ~help:"channel faults injected" "chan.faults_injected")
        t.faults_injected;
      set_gauge (gauge m ~help:"live channel entries" "chan.live") (float_of_int (Hashtbl.length t.entries)))
