(** Shared-memory service: owner-granted enclave-to-enclave sharing.

    Serves ESHMGET, ESHMSHR, ESHMAT, ESHMDT, ESHMDES (Sec. V-A). *)

(** Registry name of this service. *)
val name : string

(** The Table II opcodes this service claims. *)
val opcodes : Types.opcode list

(** The service routine (dispatched through {!Registry}). *)
val handle : Registry.handler

(** Register {!handle} for each of {!opcodes}. *)
val register : Registry.t -> unit
