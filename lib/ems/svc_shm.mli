(** Shared-memory service: owner-granted enclave-to-enclave sharing.

    Serves ESHMGET, ESHMSHR, ESHMAT, ESHMDT, ESHMDES (Sec. V-A). *)

val name : string
val opcodes : Types.opcode list
val handle : Registry.handler
val register : Registry.t -> unit
