(** Secure-channel setup & transport service: ECHOPEN, ECHACC,
    ECHSEND, ECHRECV, ECHCLOSE (docs/PROTOCOL.md §2). The EMS owns
    communication setup (paper Sec. V): it mints the channel, derives
    the binding secret both endpoints mix into their session keys,
    and relays opaque segments between the endpoints — it never sees
    a record key or a plaintext byte. *)

open State

let name = "channel"
let opcodes = Types.[ ECHOPEN; ECHACC; ECHSEND; ECHRECV; ECHCLOSE ]

let handle_open t ~sender ~listener =
  let* e = get_enclave t listener in
  ignore e;
  let initiator = Chan.endpoint_of_sender sender in
  if initiator = Chan.Enclave listener then
    Types.Err (Types.Invalid_argument_ "cannot open a channel to oneself")
  else begin
    let chan, binding =
      Chan.open_ t.chans ~shard:t.shard ~listener ~initiator ~binding_of:(fun chan ->
          Keymgmt.channel_binding t.keys ~chan ~listener)
    in
    Types.Ok_chan { chan; binding }
  end

let handle_accept t ~sender ~enclave ~chan =
  let* _e = get_enclave t enclave in
  let* () = check_identity ~sender ~target:enclave ~strict:true in
  match Chan.accept t.chans ~chan ~enclave with
  | Error e -> Types.Err e
  | Ok binding -> Types.Ok_chan { chan; binding }

let handle_send t ~sender ~chan ~seg =
  match Chan.send t.chans ~chan ~sender:(Chan.endpoint_of_sender sender) ~seg with
  | Error e -> Types.Err e
  | Ok () -> Types.Ok_unit

let handle_recv t ~sender ~chan =
  match Chan.recv t.chans ~chan ~sender:(Chan.endpoint_of_sender sender) with
  | Error e -> Types.Err e
  | Ok seg -> Types.Ok_seg { seg }

let handle_close t ~sender ~chan =
  match Chan.close t.chans ~chan ~sender:(Chan.endpoint_of_sender sender) with
  | Error e -> Types.Err e
  | Ok () -> Types.Ok_unit

let handle t ~sender (request : Types.request) =
  match request with
  | Types.Chan_open { listener } -> handle_open t ~sender ~listener
  | Types.Chan_accept { enclave; chan } -> handle_accept t ~sender ~enclave ~chan
  | Types.Chan_send { chan; seg } -> handle_send t ~sender ~chan ~seg
  | Types.Chan_recv { chan } -> handle_recv t ~sender ~chan
  | Types.Chan_close { chan } -> handle_close t ~sender ~chan
  | _ -> Types.Err (Types.Invalid_argument_ "request outside the channel service")

let register registry = Registry.register registry ~service:name ~opcodes handle
