(** Measurement & attestation service.

    Serves EMEAS (finalize the build-time measurement) and EATTEST
    (sign a quote binding platform + enclave measurements,
    Sec. V-B). *)

(** Registry name of this service. *)
val name : string

(** The Table II opcodes this service claims. *)
val opcodes : Types.opcode list

(** The service routine (dispatched through {!Registry}). *)
val handle : Registry.handler

(** Register {!handle} for each of {!opcodes}. *)
val register : Registry.t -> unit
