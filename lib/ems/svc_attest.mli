(** Measurement & attestation service.

    Serves EMEAS (finalize the build-time measurement) and EATTEST
    (sign a quote binding platform + enclave measurements,
    Sec. V-B). *)

val name : string
val opcodes : Types.opcode list
val handle : Registry.handler
val register : Registry.t -> unit
