(** Memory service: EALLOC (incl. demand paging / swap-in faults),
    EFREE, EWB. *)

module Phys_mem = Hypertee_arch.Phys_mem
module Bitmap = Hypertee_arch.Bitmap
module Mem_encryption = Hypertee_arch.Mem_encryption
module Page_table = Hypertee_arch.Page_table
module Pte = Hypertee_arch.Pte
open State

let name = "memory"
let opcodes = Types.[ EALLOC; EFREE; EWB ]

let handle_alloc t ~sender ~enclave ~pages =
  let* e = get_enclave t enclave in
  let* () = check_identity ~sender ~target:enclave ~strict:false in
  if pages <= 0 || pages > 16384 then Types.Err (Types.Invalid_argument_ "bad page count")
  else begin
    let* frames = take_pool_frames t ~n:pages in
    let base_vpn = e.Enclave.heap_cursor in
    let result =
      List.fold_left
        (fun (i, acc) frame ->
          match acc with
          | Error _ -> (i, acc)
          | Ok () ->
            (i + 1, map_private_page t e ~vpn:(base_vpn + i) ~frame ~r:true ~w:true ~x:false))
        (0, Ok ()) frames
      |> snd
    in
    match result with
    | Error err -> Types.Err err
    | Ok () ->
      e.Enclave.heap_cursor <- base_vpn + pages;
      Types.Ok_alloc { base_vpn; pages }
  end

let handle_free t ~sender ~enclave ~vpn ~pages =
  let* e = get_enclave t enclave in
  let* () = check_identity ~sender ~target:enclave ~strict:false in
  if pages <= 0 then Types.Err (Types.Invalid_argument_ "bad page count")
  else begin
    let rec go i acc =
      if i = pages then Ok (List.rev acc)
      else
        match unmap_private_page t e ~vpn:(vpn + i) with
        | Ok frame -> go (i + 1) (frame :: acc)
        | Error e -> Error e
    in
    match go 0 [] with
    | Error err -> Types.Err err
    | Ok frames ->
      Mem_pool.give_back t.pool frames;
      Types.Ok_unit
  end

(* EWB (Sec. IV-A): serve reclamation from *unused pool frames*, in a
   randomized quantity, so the OS never learns which enclave pages
   are live. Pool frames are encrypted before leaving EMS custody
   (their zeroed contents must be indistinguishable from real data).
   If the pool cannot cover the request, evict real enclave pages:
   encrypt into the owner's swap store, invalidate the PTE, clear the
   bitmap bit, return the frame. *)
let handle_writeback t ~pages_hint =
  if pages_hint <= 0 || pages_hint > 4096 then
    Types.Err (Types.Invalid_argument_ "bad page hint")
  else begin
    let jitter = Hypertee_util.Xrng.int t.rng (1 + (pages_hint / 2)) in
    let want = pages_hint + jitter in
    let swap_key = Hypertee_crypto.Aes.expand (Keymgmt.swap_key t.keys) in
    let from_pool = Mem_pool.surrender t.pool ~n:want in
    let blobs =
      List.map
        (fun frame ->
          let content = Bytes.make Hypertee_util.Units.page_size '\000' in
          (frame, Hypertee_crypto.Aes.encrypt_page swap_key ~page_number:frame content))
        from_pool
    in
    let missing = want - List.length from_pool in
    let evicted =
      if missing <= 0 then []
      else begin
        (* Candidate victims: heap pages of live enclaves, chosen at
           random (Sec. IV-A point 3). *)
        let candidates =
          Hashtbl.fold
            (fun _ (e : Enclave.t) acc ->
              List.fold_left
                (fun acc vpn ->
                  match Page_table.lookup e.Enclave.page_table ~vpn with
                  | Some pte -> (e, vpn, pte) :: acc
                  | None -> acc)
                acc
                (List.init
                   (Stdlib.max 0 (e.Enclave.heap_cursor - e.Enclave.layout.Enclave.heap_base))
                   (fun i -> e.Enclave.layout.Enclave.heap_base + i)))
            t.enclaves []
          |> Array.of_list
        in
        Hypertee_util.Xrng.shuffle t.rng candidates;
        let n = Stdlib.min missing (Array.length candidates) in
        List.init n (fun i ->
            let e, vpn, pte = candidates.(i) in
            let frame = pte.Pte.ppn in
            (* Decrypt under the enclave key, then re-encrypt under
               the swap key with vpn binding. *)
            let pt = Mem_encryption.read_page t.mee t.mem ~key_id:pte.Pte.key_id ~frame in
            let blob = Hypertee_crypto.Aes.encrypt_page swap_key ~page_number:vpn pt in
            Hashtbl.replace e.Enclave.swapped_out vpn blob;
            Page_table.unmap e.Enclave.page_table ~vpn;
            Ownership.release t.ownership ~frame;
            Bitmap.clear t.bitmap ~frame;
            Phys_mem.zero t.mem ~frame;
            Phys_mem.set_owner t.mem frame Phys_mem.Free;
            (frame, Hypertee_crypto.Aes.encrypt_page swap_key ~page_number:frame pt))
      end
    in
    let all = blobs @ evicted in
    Types.Ok_writeback { frames = List.map fst all; blobs = all }
  end

let handle_page_fault t ~enclave ~vpn =
  let* e = get_enclave t enclave in
  match Hashtbl.find_opt e.Enclave.swapped_out vpn with
  | Some blob -> (
    (* Swap-in: restore the page from the encrypted blob. *)
    let* frames = take_pool_frames t ~n:1 in
    match frames with
    | [ frame ] ->
      let swap_key = Hypertee_crypto.Aes.expand (Keymgmt.swap_key t.keys) in
      let pt = Hypertee_crypto.Aes.decrypt_page swap_key ~page_number:vpn blob in
      (match map_private_page t e ~vpn ~frame ~r:true ~w:true ~x:false with
      | Error err -> Types.Err err
      | Ok () ->
        Mem_encryption.write_page t.mee t.mem ~key_id:e.Enclave.key_id ~frame pt;
        Hashtbl.remove e.Enclave.swapped_out vpn;
        Types.Ok_alloc { base_vpn = vpn; pages = 1 })
    | _ -> Types.Err Types.Out_of_memory)
  | None -> (
    match Page_table.lookup e.Enclave.page_table ~vpn with
    | Some _ ->
      (* Spurious fault on a resident page (stale TLB, racing
         faults): re-faulting must be idempotent. Allocating here
         would overwrite the live leaf and orphan its frame —
         enclave-owned but unreachable until EDESTROY. *)
      Types.Ok_alloc { base_vpn = vpn; pages = 1 }
    | None ->
    (* Demand allocation within the growth region. *)
    if vpn >= e.Enclave.layout.Enclave.heap_base && vpn < e.Enclave.layout.Enclave.stack_base
    then begin
      let* frames = take_pool_frames t ~n:1 in
      match frames with
      | [ frame ] -> (
        match map_private_page t e ~vpn ~frame ~r:true ~w:true ~x:false with
        | Error err -> Types.Err err
        | Ok () ->
          if vpn >= e.Enclave.heap_cursor then e.Enclave.heap_cursor <- vpn + 1;
          Types.Ok_alloc { base_vpn = vpn; pages = 1 })
      | _ -> Types.Err Types.Out_of_memory
    end
    else Types.Err (Types.Invalid_argument_ "fault outside growable region"))

let handle t ~sender (request : Types.request) =
  match request with
  | Types.Alloc { enclave; pages } -> handle_alloc t ~sender ~enclave ~pages
  | Types.Page_fault { enclave; vpn } -> handle_page_fault t ~enclave ~vpn
  | Types.Free { enclave; vpn; pages } -> handle_free t ~sender ~enclave ~vpn ~pages
  | Types.Writeback { pages_hint } -> handle_writeback t ~pages_hint
  | _ -> Types.Err (Types.Invalid_argument_ "request outside the memory service")

let register registry = Registry.register registry ~service:name ~opcodes handle
