(** Page-ownership table (paper Sec. IV-B, V-B).

    EMS-private record of which enclave (or shared region) owns each
    physical frame. Consulted before any mapping to guarantee a frame
    is never mapped into two enclaves, and extended for shared pages
    with the set of enclaves currently attached. The property tests
    check this table against [Phys_mem] ownership. *)

type record =
  | Private of Types.enclave_id
  | Shared_page of { shm : Types.shm_id; attached : Types.enclave_id list }

type t

(** An empty table. *)
val create : unit -> t

(** [claim_private t ~frame ~enclave] registers ownership. Fails
    (returns [false]) if the frame is already recorded. *)
val claim_private : t -> frame:int -> enclave:Types.enclave_id -> bool

(** [claim_shared t ~frame ~shm] marks a frame as part of a shared
    region (no attachments yet). *)
val claim_shared : t -> frame:int -> shm:Types.shm_id -> bool

(** [attach t ~frame ~enclave] records an additional enclave mapping
    of a shared frame; [false] on private frames or duplicates. *)
val attach : t -> frame:int -> enclave:Types.enclave_id -> bool

(** Remove one enclave from a shared frame's attachment set. Returns
    the number of attachments remaining on the frame ([Some 0] means
    the caller was the last one — the signal the EMS uses to reclaim
    a region whose owner is gone), or [None] if the frame is not a
    shared page. *)
val detach : t -> frame:int -> enclave:Types.enclave_id -> int option

(** [release t ~frame] forgets the frame entirely (free / swap-out). *)
val release : t -> frame:int -> unit

(** The ownership record of a frame, if any. *)
val lookup : t -> frame:int -> record option

(** [can_map_private t ~frame] — the ECREATE/EALLOC pre-check. *)
val can_map_private : t -> frame:int -> bool

(** All frames owned by an enclave (private only). *)
val frames_of : t -> Types.enclave_id -> int list

(** Total records (tests). *)
val size : t -> int

(** Fold over every (frame, record) pair — the invariant checker's
    sweep primitive. *)
val fold : t -> (int -> record -> 'a -> 'a) -> 'a -> 'a

(** Shared frames with an empty attachment set, sorted. Non-empty is
    normal while a region is live but unattached; a zero-attached
    frame whose region's owner is dead is a leak (the checker asserts
    there are none). *)
val shared_zero_attached : t -> int list
