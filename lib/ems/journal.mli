(** Per-shard operation journal: the replay log behind crash-consistent
    EMS shard recovery.

    The platform appends every successful state-mutating gate request
    (and each migration restore) to the owning shard's journal; when a
    shard is killed and cold-restarted, replaying the journal against
    a fresh runtime reconstructs the shard's control state — live
    enclaves, measurements (byte-identical, since EADD page data is
    journaled), shared-memory regions, id counters.

    What is deliberately {e not} journaled:

    - [Writeback] (EWB): victim choice is randomized and the
      encrypted blobs live in EMS memory lost with the shard. Its
      logical effect — residency — is reconstructed lazily: replaying
      a later journaled [Page_fault] on a once-evicted vpn goes
      through the idempotent resident-page path. Physical pool state
      is rebuilt fresh on recovery.
    - [Attest]: read-only.
    - [Err] responses: they mutated nothing.
    - Integrity containment is journaled as a synthetic [Destroy]
      effect ({!record_containment}) because the faulted request
      would not re-fault against scrubbed post-recovery memory.

    The journal therefore guarantees control-state consistency plus
    measured content; runtime-written DRAM contents of a crashed
    shard's enclaves are not durable (as with a real power-fail, data
    the owner never sealed or checkpointed is gone).

    Entries are chained through SHA-256 for tamper evidence
    ({!verify_chain}). The journal itself is held by the platform
    (the "durable" side), not by the runtime it describes. *)

type entry =
  | Op of { sender : Types.enclave_id option; request : Types.request; response : Types.response }
      (** One successful state-mutating primitive as served. *)
  | Restored of { snapshot : bytes; id : Types.enclave_id }
      (** A sealed snapshot restored into this shard ({!Svc_migrate})
          under id [id]; replay re-runs the restore from the blob. *)

type t

val create : unit -> t

(** [record t ~sender request response] appends the op if it is
    state-mutating and succeeded; no-ops otherwise, and always during
    replay (see {!set_replaying}). *)
val record : t -> sender:Types.enclave_id option -> Types.request -> Types.response -> unit

(** Append a [Restored] entry (platform checkpoint/restore and
    migration commit). *)
val record_restore : t -> snapshot:bytes -> id:Types.enclave_id -> unit

(** Journal an integrity-containment termination as a synthetic
    [Destroy] effect. *)
val record_containment : t -> victim:Types.enclave_id -> unit

(** Would [record] keep this (request, response) pair? Exposed for
    the tests and the replay equivalence counter. *)
val should_record : Types.request -> Types.response -> bool

(** Replay equivalence: journaled responses are deterministic, so
    equivalence is structural equality (measurements compared
    byte-wise). *)
val responses_equivalent : Types.response -> Types.response -> bool

(** Entries in append order. *)
val entries : t -> entry list

val length : t -> int

(** While set, [record]/[record_restore]/[record_containment] are
    no-ops so replaying the journal does not re-journal itself. *)
val set_replaying : t -> bool -> unit

val is_replaying : t -> bool

(** Recompute the SHA-256 entry chain and compare with the running
    value (tamper evidence for the in-memory log). *)
val verify_chain : t -> bool
