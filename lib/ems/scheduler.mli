(** EMS-side primitive scheduling (paper Fig. 3 and Sec. III-C).

    Requests arriving from the mailbox are distributed over the EMS
    worker cores and — as one of the timing-side-channel
    countermeasures — dispatched in a randomized order rather than
    arrival order, so a co-located attacker cannot line its own
    primitives up against a victim's to learn execution order or
    interleave with specific victim gadgets.

    The functional simulator executes jobs synchronously, so this
    module models the *order and placement* decisions: a batch of
    pending jobs is shuffled, dealt round-robin to workers, and run.
    Service remains at primitive granularity (a job never yields
    mid-primitive — the property Sec. III-C relies on).

    Fault model: with an injector installed, a worker can crash or
    stall mid-request. The affected job is parked (never silently
    lost) and the worker marked dead; {!watchdog_scan} — EMS's
    recovery sweep, run on every doorbell — revives dead workers and
    re-queues parked jobs under their original request ids, so the
    request/response binding is preserved across recovery. *)

type t

type watchdog_report = { dead_workers : int; redispatched : int list }

(** [create rng ~workers] builds a scheduler over [workers] EMS
    worker cores; [rng] drives the dispatch-order shuffle. [track]
    (default 0) is the trace row its instants land on — the platform
    passes the owning shard's {!Hypertee_obs.Trace.track_ems}, so
    multi-shard runs keep one scheduler timeline per shard. *)
val create : ?track:int -> Hypertee_util.Xrng.t -> workers:int -> t

(** Configured worker-core count. *)
val workers : t -> int

(** Install the platform's fault injector (consulted per job run). *)
val set_fault_injector : t -> Hypertee_faults.Fault.t -> unit

(** [submit t ~id job] queues a primitive for execution. [id] is the
    mailbox request id (used for the audit trail and for watchdog
    re-dispatch). *)
val submit : t -> id:int -> (unit -> unit) -> unit

(** Jobs awaiting execution, including parked in-flight jobs. *)
val pending : t -> int

(** [dispatch t] takes the whole pending batch, shuffles it, assigns
    jobs to the live workers round-robin and runs every job to
    completion. Returns the number of jobs executed (jobs whose
    worker crashed or stalled are parked instead). *)
val dispatch : t -> int

(** Workers currently alive (all of them unless faults struck). *)
val alive_workers : t -> int

(** [watchdog_scan t] — detect dead/stalled workers, restart them and
    re-queue their in-flight jobs for the next {!dispatch}. Returns
    what was recovered; [{ dead_workers = 0; redispatched = [] }]
    when all is well. *)
val watchdog_scan : t -> watchdog_report

(** Audit trail: (request id, worker) in execution order, most recent
    batch last. Used by the tests that check the attacker cannot
    predict ordering. *)
val execution_log : t -> (int * int) list

(** Entries currently in the log — a cheap cursor: snapshotting it
    before a batch drain and slicing {!execution_log} at it afterwards
    yields exactly that drain's execution order (how the gate exposes
    a deterministic batched drain order to the oracle). *)
val log_length : t -> int

(** Jobs run to completion since creation. *)
val executed : t -> int

(** Fault telemetry: worker crashes / stalls injected, and watchdog
    restarts performed. *)
val crashes : t -> int

(** Worker stalls injected. *)
val stalls : t -> int

(** Watchdog worker restarts performed. *)
val restarts : t -> int

(** Snapshot executed/crash/stall/restart counters and the pending
    gauge into a metrics registry, each name prefixed with [prefix]
    (e.g. ["shard0.sched."]). *)
val publish_metrics : t -> prefix:string -> Hypertee_obs.Metrics.t -> unit
