module Phys_mem = Hypertee_arch.Phys_mem
module Bitmap = Hypertee_arch.Bitmap

type t = {
  rng : Hypertee_util.Xrng.t;
  mem : Phys_mem.t;
  bitmap : Bitmap.t;
  os_request : n:int -> int list;
  os_return : frames:int list -> unit;
  mutable parked : int list;
  mutable threshold : int; (* refill when available falls below this *)
  mutable refill_events : int;
  mutable outstanding : int; (* frames taken and not yet given back *)
}

let refill_batch = 64

let randomize_threshold t =
  (* Low-water mark between 1/8 and 1/2 of a refill batch. *)
  t.threshold <- refill_batch / 8 + Hypertee_util.Xrng.int t.rng (refill_batch * 3 / 8)

let park t frames =
  List.iter
    (fun f ->
      Phys_mem.set_owner t.mem f Phys_mem.Pool;
      Phys_mem.zero t.mem ~frame:f;
      Bitmap.set t.bitmap ~frame:f)
    frames;
  t.parked <- frames @ t.parked

let refill t ~need =
  let n = Stdlib.max need refill_batch in
  let got = t.os_request ~n in
  if got <> [] then begin
    t.refill_events <- t.refill_events + 1;
    park t got;
    randomize_threshold t
  end;
  List.length got

let create rng ~mem ~bitmap ~os_request ~os_return ~initial_frames =
  let t =
    {
      rng;
      mem;
      bitmap;
      os_request;
      os_return;
      parked = [];
      threshold = refill_batch / 4;
      refill_events = 0;
      outstanding = 0;
    }
  in
  randomize_threshold t;
  ignore (refill t ~need:initial_frames);
  t

let available t = List.length t.parked
let parked_frames t = List.sort compare t.parked
let outstanding t = t.outstanding
let refill_events t = t.refill_events
let current_threshold t = t.threshold

(* When a take ultimately fails, the refill attempts may have drained
   the OS free list into the pool; hoarding those frames would starve
   every non-pool allocation, so shrink back to one batch. *)
let release_hoard t =
  let surplus = available t - refill_batch in
  if surplus > 0 then begin
    let rec split k acc rest =
      if k = 0 then (acc, rest)
      else match rest with [] -> (acc, rest) | f :: tl -> split (k - 1) (f :: acc) tl
    in
    let released, rest = split surplus [] t.parked in
    t.parked <- rest;
    List.iter
      (fun f ->
        Phys_mem.zero t.mem ~frame:f;
        Bitmap.clear t.bitmap ~frame:f;
        Phys_mem.set_owner t.mem f Phys_mem.Free)
      released;
    t.os_return ~frames:released
  end

let rec take t ~n =
  if available t >= n then begin
    let rec split k acc rest =
      if k = 0 then (List.rev acc, rest)
      else
        match rest with
        | [] -> assert false
        | f :: tl -> split (k - 1) (f :: acc) tl
    in
    let taken, rest = split n [] t.parked in
    t.parked <- rest;
    t.outstanding <- t.outstanding + n;
    (* Frames were zeroed when parked; zero again in case a test
       scribbled on a parked frame. Bits already set. *)
    List.iter (fun f -> Phys_mem.zero t.mem ~frame:f) taken;
    if available t < t.threshold then ignore (refill t ~need:0);
    Some taken
  end
  else if refill t ~need:(n - available t) > 0 then take t ~n
  else begin
    release_hoard t;
    None
  end

let give_back t frames =
  t.outstanding <- t.outstanding - List.length frames;
  park t frames

let surrender t ~n =
  let n = Stdlib.min n (available t) in
  let rec split k acc rest =
    if k = 0 then (acc, rest)
    else match rest with [] -> (acc, rest) | f :: tl -> split (k - 1) (f :: acc) tl
  in
  let released, rest = split n [] t.parked in
  t.parked <- rest;
  List.iter
    (fun f ->
      Phys_mem.zero t.mem ~frame:f;
      Bitmap.clear t.bitmap ~frame:f;
      Phys_mem.set_owner t.mem f Phys_mem.Free)
    released;
  t.os_return ~frames:released;
  released
