type handler = State.t -> sender:Types.enclave_id option -> Types.request -> Types.response

type t = { handlers : (Types.opcode, string * handler) Hashtbl.t }

let create () = { handlers = Hashtbl.create 24 }

let register t ~service ~opcodes handler =
  List.iter
    (fun opcode ->
      (match Hashtbl.find_opt t.handlers opcode with
      | Some (owner, _) ->
        invalid_arg
          (Printf.sprintf "Registry.register: %s already bound to service %s"
             (Types.opcode_name opcode) owner)
      | None -> ());
      Hashtbl.replace t.handlers opcode (service, handler))
    opcodes

let find t opcode =
  match Hashtbl.find_opt t.handlers opcode with
  | Some (_, handler) -> Some handler
  | None -> None

let service_of t opcode =
  match Hashtbl.find_opt t.handlers opcode with
  | Some (service, _) -> Some service
  | None -> None

let services t =
  Hashtbl.fold
    (fun _ (service, _) acc -> if List.mem service acc then acc else service :: acc)
    t.handlers []
  |> List.sort compare

let opcodes t = Hashtbl.fold (fun op _ acc -> op :: acc) t.handlers [] |> List.sort compare

let dispatch t state ~sender request =
  let opcode = Types.opcode_of_request request in
  match find t opcode with
  | Some handler -> handler state ~sender request
  | None ->
    Types.Err
      (Types.Invalid_argument_
         (Printf.sprintf "no service registered for %s" (Types.opcode_name opcode)))
