(** Enclave memory pool (paper Sec. IV-A).

    EMS proactively requests frames from the CS OS and parks them in
    this pool; enclave allocations are then served from the pool
    without notifying the OS, which is what defeats allocation-based
    controlled channels — the OS only sees coarse, batched refills at
    randomized thresholds instead of per-enclave demand.

    Refill policy: when used frames exceed [threshold], the pool asks
    the OS for [batch] more frames through the [os_request] callback
    and re-randomizes the threshold, so an attacker cannot
    reverse-engineer the refill boundary. Frames returning to the
    pool via EFREE are zeroed before reuse; frames leaving the pool
    back to the OS (EWB) are handled by the swap module. *)

type t

(** [create rng ~mem ~bitmap ~os_request ~os_return
    ~initial_frames] builds a pool pre-filled with [initial_frames]
    frames obtained through [os_request]. *)
val create :
  Hypertee_util.Xrng.t ->
  mem:Hypertee_arch.Phys_mem.t ->
  bitmap:Hypertee_arch.Bitmap.t ->
  os_request:(n:int -> int list) ->
  os_return:(frames:int list -> unit) ->
  initial_frames:int ->
  t

(** Frames currently parked (free for enclave use). *)
val available : t -> int

(** The parked frames themselves, sorted (invariant checker: each
    must be [Pool]-owned with its bitmap bit set). *)
val parked_frames : t -> int list

(** Frames taken and not yet given back (invariant checker: pool
    accounting cross-check). *)
val outstanding : t -> int

(** Cumulative OS refill requests (the only events the OS observes —
    the allocation-attack test counts these). *)
val refill_events : t -> int

(** [take t ~n] removes [n] frames from the pool for enclave mapping,
    zeroing each and setting its bitmap bit. Triggers a proactive
    refill when the low-water threshold is crossed. [None] when even
    refilling cannot satisfy the request. *)
val take : t -> n:int -> int list option

(** [give_back t frames] returns previously [take]n frames (EFREE or
    EDESTROY): each is zeroed; its bitmap bit stays set while parked
    (pool frames are enclave memory per Sec. IV-A). *)
val give_back : t -> int list -> unit

(** [surrender t ~n] removes up to [n] frames from the pool to hand
    back to the CS OS (EWB path): zeroes contents, clears bitmap
    bits, marks frames [Free]. Returns the frames released. *)
val surrender : t -> n:int -> int list

(** Current randomized refill threshold (tests only). *)
val current_threshold : t -> int
