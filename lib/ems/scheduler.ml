module Fault = Hypertee_faults.Fault

type job = { id : int; run : unit -> unit }

type watchdog_report = { dead_workers : int; redispatched : int list }

type t = {
  rng : Hypertee_util.Xrng.t;
  workers : int;
  track : int; (* trace row: the owning shard's EMS track *)
  alive : bool array;
  mutable queue : job list; (* reversed arrival order *)
  mutable parked : job list; (* in-flight on dead/stalled workers *)
  mutable log : (int * int) list; (* reversed execution order *)
  mutable executed : int;
  mutable crashes : int;
  mutable stalls : int;
  mutable restarts : int;
  mutable faults : Fault.t option;
}

let create ?(track = 0) rng ~workers =
  if workers < 1 then invalid_arg "Scheduler.create: need at least one worker";
  {
    rng;
    workers;
    track;
    alive = Array.make workers true;
    queue = [];
    parked = [];
    log = [];
    executed = 0;
    crashes = 0;
    stalls = 0;
    restarts = 0;
    faults = None;
  }

let workers t = t.workers
let set_fault_injector t inj = t.faults <- Some inj
let submit t ~id run = t.queue <- { id; run } :: t.queue
let pending t = List.length t.queue + List.length t.parked
let alive_workers t = Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 t.alive

(* Does the injected fault plan take this worker down before the job
   completes? A crash loses the job with the worker; a stall wedges
   the worker with the job still in hand. Either way the job is
   parked for the watchdog, which re-dispatches it under its original
   request id so the request/response binding survives. *)
let strike t =
  match t.faults with
  | None -> `Run
  | Some inj ->
    if Fault.fire inj Fault.Worker_crash then `Crash
    else if Fault.fire inj Fault.Worker_stall then `Stall
    else `Run

let dispatch t =
  let batch = Array.of_list (List.rev t.queue) in
  t.queue <- [];
  (* Randomized dispatch order (Sec. III-C): neither arrival order
     nor anything the submitter controls. *)
  Hypertee_util.Xrng.shuffle t.rng batch;
  let ran = ref 0 in
  Array.iteri
    (fun i job ->
      if alive_workers t = 0 then
        (* Every worker is down: the job waits for the watchdog. *)
        t.parked <- job :: t.parked
      else begin
        (* Round-robin over the workers that are still alive. *)
        let rec pick w = if t.alive.(w) then w else pick ((w + 1) mod t.workers) in
        let worker = pick (i mod t.workers) in
        match strike t with
        | `Crash ->
          t.alive.(worker) <- false;
          t.crashes <- t.crashes + 1;
          t.parked <- job :: t.parked;
          if Hypertee_obs.Trace.enabled () then
            Hypertee_obs.Trace.instant ~track:t.track ~cat:Hypertee_obs.Trace.Sched
              ~name:"sched:crash" ~request_id:job.id ()
        | `Stall ->
          t.alive.(worker) <- false;
          t.stalls <- t.stalls + 1;
          t.parked <- job :: t.parked;
          if Hypertee_obs.Trace.enabled () then
            Hypertee_obs.Trace.instant ~track:t.track ~cat:Hypertee_obs.Trace.Sched
              ~name:"sched:stall" ~request_id:job.id ()
        | `Run ->
          job.run ();
          incr ran;
          t.executed <- t.executed + 1;
          t.log <- (job.id, worker) :: t.log
      end)
    batch;
  !ran

let watchdog_scan t =
  let dead = t.workers - alive_workers t in
  if dead = 0 && t.parked = [] then { dead_workers = 0; redispatched = [] }
  else begin
    Array.fill t.alive 0 t.workers true;
    t.restarts <- t.restarts + dead;
    if dead > 0 && Hypertee_obs.Trace.enabled () then
      Hypertee_obs.Trace.instant ~track:t.track ~cat:Hypertee_obs.Trace.Sched
        ~name:"sched:watchdog-restart" ();
    let recovered = List.rev t.parked in
    t.parked <- [];
    (* Re-dispatch under the original ids: prepend so the recovered
       jobs keep their arrival position relative to new submissions. *)
    t.queue <- t.queue @ List.rev recovered;
    { dead_workers = dead; redispatched = List.map (fun j -> j.id) recovered }
  end

let execution_log t = List.rev t.log
let log_length t = List.length t.log
let executed t = t.executed
let crashes t = t.crashes
let stalls t = t.stalls
let restarts t = t.restarts

let publish_metrics t ~prefix registry =
  let module M = Hypertee_obs.Metrics in
  let set name help v = M.set_counter (M.counter registry ~help (prefix ^ name)) v in
  set "executed" "jobs run to completion" t.executed;
  set "crashes" "worker crashes injected" t.crashes;
  set "stalls" "worker stalls injected" t.stalls;
  set "restarts" "watchdog worker restarts" t.restarts;
  M.set_gauge (M.gauge registry ~help:"jobs queued or parked" (prefix ^ "pending"))
    (float_of_int (pending t))
