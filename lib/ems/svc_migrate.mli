(** Elasticity service: sealed enclave checkpoint and restore.

    A checkpoint quiesces an enclave (it must be [Measured] or
    [Interrupted] with no shared-memory attachments) and seals its
    entire observable state into one self-describing blob:

    - every resident private page, EWB-encrypted under
      {!Keymgmt.swap_key} with the vpn as tweak — the same wire
      format EWB eviction blobs use, so restore and demand fault-in
      share one decryption path, and already-evicted pages embed
      verbatim;
    - a Merkle root over the page blobs ({!Hypertee_crypto.Merkle});
    - lifecycle metadata: config, state, saved pc, heap/shm cursors,
      and the byte-exact build measurement;
    - an HMAC-SHA-256 seal under {!Keymgmt.snapshot_key}, derived
      from the platform root SK so any EMS shard of the same
      platform can verify and restore it.

    Restore rebuilds the enclave under a {e fresh} KeyID with a
    memory key re-derived for the restored identity (the re-key step
    of migration), maps resident pages from the local pool, reseeds
    the swapped-out set, and reproduces the measurement
    byte-identically — a subsequent EATTEST quote verifies exactly
    like the source's.

    Not a Table II primitive: the platform calls these directly
    (checkpoint/restore API, cross-shard migration, journal replay),
    so they return [result]s rather than gate responses. *)

(** [checkpoint t ~enclave] seals the enclave's state. Errors:
    [No_such_enclave]; [Bad_state] when running, unmeasured, or
    attached to shared memory; [Integrity_failure] if a resident
    page fails its MAC while being read. The source enclave is not
    modified. *)
val checkpoint : State.t -> enclave:Types.enclave_id -> (bytes, Types.error) result

(** [restore t ?force_id blob] verifies the seal (HMAC, then Merkle
    root, then structural bounds) and rebuilds the enclave, returning
    its id — [force_id] if given (migration and journal replay keep
    the original id; the id must not be live here), otherwise the
    next id this shard mints. On any failure the half-built enclave
    is torn down completely: frames back to the pool, ownership
    records dropped, the KeyID revoked. If the id's residue class
    belongs to another shard the enclave is marked adopted
    ({!State.mark_adopted}) so the gate can re-route it. *)
val restore : State.t -> ?force_id:Types.enclave_id -> bytes -> (Types.enclave_id, Types.error) result

(** Enclave id recorded in a snapshot blob (unauthenticated peek —
    [restore] is what verifies the seal). *)
val snapshot_id : bytes -> Types.enclave_id option

(** Measurement carried by a snapshot, if the seal verifies — what
    migration re-attests against. *)
val snapshot_measurement : Keymgmt.t -> bytes -> bytes option
