(* Per-shard operation journal for crash-consistent recovery. *)

type entry =
  | Op of { sender : Types.enclave_id option; request : Types.request; response : Types.response }
  | Restored of { snapshot : bytes; id : Types.enclave_id }

type t = {
  mutable entries : entry list; (* reversed *)
  mutable length : int;
  mutable chain : bytes; (* running SHA-256 over appended entries *)
  mutable replaying : bool;
}

let create () = { entries = []; length = 0; chain = Bytes.make 32 '\000'; replaying = false }

(* A request is worth journaling iff replaying it deterministically
   reconstructs shard control state:

   - [Writeback] is excluded by design: its victim choice is random
     and its blobs live in EMS memory that dies with the shard. The
     logical effect (page residency) is rebuilt lazily — a later
     journaled [Page_fault] on an evicted vpn replays through the
     idempotent resident-page path, and physical pool state is
     rebuilt fresh on recovery anyway.
   - [Attest] is read-only (quotes mutate nothing).
   - Failed requests ([Err _]) mutated nothing, so they never enter
     the journal; this also keeps post-eviction [Free]/[Enter]
     failures from depending on the skipped EWB. *)
let should_record request response =
  match response with
  | Types.Err _ -> false
  | _ -> (
    match request with
    | Types.Writeback _ | Types.Attest _ -> false
    (* Secure channels are ephemeral session state: a recovered
       shard cannot resume a live handshake or record stream, so
       channel ops are not replayed — recovery reaps the dead
       shard's channels instead (fail closed, re-establish). *)
    | Types.Chan_open _ | Types.Chan_accept _ | Types.Chan_send _ | Types.Chan_recv _
    | Types.Chan_close _ -> false
    | Types.Create _ | Types.Add _ | Types.Enter _ | Types.Resume _ | Types.Exit _
    | Types.Destroy _ | Types.Alloc _ | Types.Free _ | Types.Shmget _ | Types.Shmat _
    | Types.Shmdt _ | Types.Shmshr _ | Types.Shmdes _ | Types.Measure _ | Types.Page_fault _
    | Types.Interrupt _ -> true
    (* Warm-pool transitions are control state: replaying a Retire
       re-parks the enclave and a later Warm_create re-pops it, so
       recovery reproduces the same id assignments. *)
    | Types.Retire _ | Types.Warm_create _ -> true)

let entry_digest entry =
  (* Entries are pure data (ints, bytes, lists), so the marshalled
     form is a stable fingerprint for the tamper-evidence chain. *)
  Hypertee_crypto.Sha256.digest (Marshal.to_bytes entry [])

let append t entry =
  t.entries <- entry :: t.entries;
  t.length <- t.length + 1;
  t.chain <- Hypertee_crypto.Sha256.digest (Bytes.cat t.chain (entry_digest entry))

let record t ~sender request response =
  if (not t.replaying) && should_record request response then
    append t (Op { sender; request; response })

let record_restore t ~snapshot ~id =
  if not t.replaying then append t (Restored { snapshot; id })

let record_containment t ~victim =
  (* Integrity containment destroys the victim as a side effect of a
     request that will NOT re-fault on replay (the flip is gone after
     the recovery scrub), so the destruction is journaled as its own
     synthetic effect. *)
  if not t.replaying then
    append t (Op { sender = None; request = Types.Destroy { enclave = victim }; response = Types.Ok_unit })

let entries t = List.rev t.entries
let length t = t.length
let set_replaying t v = t.replaying <- v
let is_replaying t = t.replaying

let verify_chain t =
  let recomputed =
    List.fold_left
      (fun acc e -> Hypertee_crypto.Sha256.digest (Bytes.cat acc (entry_digest e)))
      (Bytes.make 32 '\000') (entries t)
  in
  Hypertee_util.Bytes_ext.equal_ct recomputed t.chain

(* Replay-equivalence: deterministic responses must match exactly;
   there is no fuzzier class because everything nondeterministic
   (EWB) is excluded from the journal. *)
let responses_equivalent (a : Types.response) (b : Types.response) =
  match (a, b) with
  | Types.Ok_measure { measurement = m1 }, Types.Ok_measure { measurement = m2 } ->
    Bytes.equal m1 m2
  | _ -> a = b
