module Config = Hypertee_arch.Config

type t = { ems : Config.core; engine : Hypertee_crypto.Engine.t }

let create ~ems ~engine = { ems; engine }
let ems_core t = t.ems
let engine t = t.engine

let page_bytes = Hypertee_util.Units.page_size

(* Instruction budgets for management work, converted to time through
   the EMS core's *management IPC* and clock. These are the model's
   calibration constants: a primitive dispatch is a few thousand
   instructions of runtime code; mapping a page costs page-table +
   bitmap + ownership edits plus the explicit flush of management
   data to memory (Sec. III-D, software-maintained coherence). Pool
   pages are zeroed when parked, so zeroing is off the allocation
   critical path (Sec. IV-A). *)
let dispatch_instructions = 3_000.0
let page_map_instructions = 1_200.0
let page_copy_instructions = 2_000.0 (* EADD: copy 4 KiB into enclave memory *)
let enter_instructions = 2_200.0 (* context-structure updates EMS side *)
let pool_bookkeeping_instructions = 15_000.0 (* per-EALLOC pool accounting + threshold logic *)

(* Management code is branchy pointer-chasing: a wide OoO machine
   extracts little extra ILP from it (the paper's medium-vs-strong
   0.1% gap), while the in-order core pays its full weakness. *)
let management_ipc (core : Config.core) =
  match core.Config.pipeline with
  | Config.In_order -> core.Config.base_ipc *. 0.8
  | Config.Out_of_order -> Stdlib.min core.Config.base_ipc 1.6

let ns_of_instructions t n = n /. management_ipc t.ems /. t.ems.Config.clock_ghz

let dispatch_ns t = ns_of_instructions t dispatch_instructions
let page_map_ns t = ns_of_instructions t page_map_instructions
let measure_ns t ~bytes = Hypertee_crypto.Engine.sha256_ns t.engine ~bytes

let create_ns t ~static_pages =
  dispatch_ns t +. (float_of_int static_pages *. page_map_ns t)

let add_page_ns t =
  (* Copy 4 KiB into enclave memory + extend measurement. *)
  dispatch_ns t
  +. ns_of_instructions t page_copy_instructions
  +. measure_ns t ~bytes:page_bytes

let alloc_ns t ~pages =
  dispatch_ns t
  +. ns_of_instructions t pool_bookkeeping_instructions
  +. (float_of_int pages *. page_map_ns t)

let attest_ns t =
  dispatch_ns t
  +. Hypertee_crypto.Engine.rsa_sign_ns t.engine
  +. Hypertee_crypto.Engine.sha256_ns t.engine ~bytes:256

let enter_ns t = dispatch_ns t +. ns_of_instructions t enter_instructions

let writeback_ns t ~pages =
  dispatch_ns t
  +. float_of_int pages
     *. (ns_of_instructions t page_map_instructions
        +. Hypertee_crypto.Engine.aes_ns t.engine ~bytes:page_bytes)

let service_ns t request =
  match request with
  | Types.Create { config } -> create_ns t ~static_pages:(Types.total_static_pages config)
  | Types.Add _ -> add_page_ns t
  | Types.Enter _ | Types.Resume _ | Types.Interrupt _ -> enter_ns t
  | Types.Exit _ -> dispatch_ns t
  | Types.Destroy _ -> dispatch_ns t +. (8.0 *. page_map_ns t)
  | Types.Alloc { pages; _ } -> alloc_ns t ~pages
  | Types.Free { pages; _ } -> dispatch_ns t +. (float_of_int pages *. page_map_ns t)
  | Types.Writeback { pages_hint } -> writeback_ns t ~pages:pages_hint
  | Types.Shmget { pages; _ } -> alloc_ns t ~pages
  | Types.Shmat _ | Types.Shmdt _ | Types.Shmshr _ -> dispatch_ns t +. page_map_ns t
  | Types.Shmdes _ -> dispatch_ns t +. (4.0 *. page_map_ns t)
  | Types.Measure _ ->
    (* Finalization only; per-page hashing was charged during EADD. *)
    dispatch_ns t +. measure_ns t ~bytes:64
  | Types.Attest _ -> attest_ns t
  | Types.Page_fault _ -> alloc_ns t ~pages:1
  (* Channel control plane: a dispatch plus a key derivation for the
     binding secret (open/accept); close wipes and unlinks. *)
  | Types.Chan_open _ | Types.Chan_accept _ -> dispatch_ns t +. measure_ns t ~bytes:16
  | Types.Chan_close _ -> dispatch_ns t
  (* Channel data plane: a dispatch plus the fabric copy of the
     segment; EMS never touches record cryptography. *)
  | Types.Chan_send { seg; _ } ->
    dispatch_ns t +. ns_of_instructions t (float_of_int (Bytes.length seg) /. 8.0)
  | Types.Chan_recv _ -> dispatch_ns t +. ns_of_instructions t 128.0
  (* Warm pool: ERETIRE re-hashes the resident image (the price of
     the byte-identical-measurement guarantee) plus scrub/unmap work;
     EWARM is the payoff — a dispatch plus context updates, no page
     mapping and no hashing. *)
  | Types.Retire { enclave = _ } ->
    dispatch_ns t
    +. measure_ns t ~bytes:(8 * page_bytes)
    +. (8.0 *. page_map_ns t)
  | Types.Warm_create _ -> dispatch_ns t +. ns_of_instructions t enter_instructions
