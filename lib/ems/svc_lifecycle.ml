(** Lifecycle service: ECREATE, EADD, EENTER, ERESUME (incl. the
    interrupt save path), EEXIT, EDESTROY, plus the warm-pool pair
    ERETIRE/EWARM. *)

module Phys_mem = Hypertee_arch.Phys_mem
module Mem_encryption = Hypertee_arch.Mem_encryption
module Page_table = Hypertee_arch.Page_table
module Pte = Hypertee_arch.Pte
open State

let name = "lifecycle"
let opcodes = Types.[ ECREATE; EADD; EENTER; ERESUME; EEXIT; EDESTROY; ERETIRE; EWARM ]

let handle_create t (config : Types.enclave_config) =
  let sane =
    config.Types.code_pages > 0 && config.Types.code_pages <= 4096
    && config.Types.data_pages >= 0
    && config.Types.heap_pages >= 0
    && config.Types.stack_pages > 0
    && config.Types.shared_pages >= 0
    && Types.total_static_pages config <= 65536
  in
  if not sane then Types.Err (Types.Invalid_argument_ "enclave configuration out of bounds")
  else begin
    match allocate_key_id t ~except:(-1) with
    | None -> Types.Err Types.Out_of_key_ids
    | Some key_id -> (
      let id = t.next_enclave_id in
      (* Private page table backed by pool frames (enclave memory). *)
      let pt_alloc () =
        match Mem_pool.take t.pool ~n:1 with
        | Some [ f ] -> f
        | Some _ | None -> failwith "out of memory"
      in
      match
        Page_table.create t.mem ~node_owner:(Phys_mem.Page_table id) ~alloc:pt_alloc
      with
      | exception Failure _ ->
        (* Release the reserved KeyID: [allocate_key_id] claimed it. *)
        Mem_encryption.revoke t.mee ~key_id;
        Types.Err Types.Out_of_memory
      | page_table -> (
        let e = Enclave.create ~id ~config ~page_table ~key_id in
        (* The memory key is bound to the (not yet final) identity;
           derive from the enclave id now, rebound at EMEAS time in
           principle — the simulator derives from id only. *)
        let key = Keymgmt.memory_key t.keys ~enclave_measurement:Bytes.empty ~enclave_id:id in
        Mem_encryption.program t.mee ~key_id key;
        (* Any failure from here on must tear the half-built enclave
           down completely: pages back to the pool, ownership records
           dropped, the KeyID released. [untaken] holds frames taken
           from the pool but not yet claimed into the ownership table:
           a page-table node [Failure] mid-mapping used to leave them
           stranded — owner still Pool, absent from the parked list,
           [Mem_pool.outstanding] permanently inflated. *)
        let untaken = ref [] in
        let teardown err =
          let frames = Ownership.frames_of t.ownership id in
          List.iter (fun frame -> Ownership.release t.ownership ~frame) frames;
          Mem_pool.give_back t.pool frames;
          Mem_pool.give_back t.pool !untaken;
          untaken := [];
          Mem_pool.give_back t.pool (Page_table.node_frames page_table);
          Mem_encryption.revoke t.mee ~key_id;
          Types.Err err
        in
        (* Static allocation at creation (Sec. IV-A): map code, data,
           heap, stack pages from the pool. Page-table node allocation
           can also exhaust the pool mid-mapping ([Failure]). *)
        let vpns = Enclave.static_vpns e in
        try
        match take_pool_frames t ~n:(List.length vpns) with
        | Error err -> teardown err
        | Ok frames ->
          untaken := frames;
          let result =
            List.fold_left2
              (fun acc vpn frame ->
                match acc with
                | Error _ -> acc
                | Ok () ->
                  let x = vpn < e.Enclave.layout.Enclave.data_base in
                  (* Popped before the claim: a [Failure] raised inside
                     the map leaves the frame claimed, so it must not
                     also sit in [untaken] (double give-back). *)
                  untaken := List.tl !untaken;
                  (match map_private_page t e ~vpn ~frame ~r:true ~w:(not x) ~x with
                  | Ok () -> Ok ()
                  | Error err ->
                    (* Claim refused: the frame is still unowned. *)
                    untaken := frame :: !untaken;
                    Error err))
              (Ok ()) vpns frames
          in
          (match result with
          | Error err -> teardown err
          | Ok () ->
            (* Staging window: HostApp memory mapped into the enclave
               address space in plaintext (KeyID 0) so the host can
               pass encrypted inputs in and read results out
               (Sec. IV-A). Not enclave memory: no bitmap bit. *)
            let staging = t.os_request ~n:config.Types.shared_pages in
            if List.length staging < config.Types.shared_pages then begin
              t.os_return ~frames:staging;
              teardown Types.Out_of_memory
            end
            else begin
              List.iteri
                (fun i frame ->
                  Page_table.map e.Enclave.page_table
                    ~vpn:(e.Enclave.layout.Enclave.staging_base + i)
                    (Pte.leaf ~ppn:frame ~r:true ~w:true ~x:false ~key_id:0))
                staging;
              e.Enclave.staging_frames <- staging;
              t.next_enclave_id <- id + t.id_stride;
              Hashtbl.replace t.enclaves id e;
              Types.Ok_created { enclave = id }
            end)
        with Failure _ -> teardown Types.Out_of_memory))
  end

(* Reused EADD staging page, zero-padded per call (single-threaded). *)
let add_page = Bytes.make Hypertee_util.Units.page_size '\000'

let handle_add t ~sender ~enclave ~vpn ~data ~executable =
  ignore sender;
  let* e = get_enclave t enclave in
  let* () = Enclave.can_add e in
  if Bytes.length data > Hypertee_util.Units.page_size then
    Types.Err (Types.Invalid_argument_ "EADD data exceeds one page")
  else begin
    match Page_table.lookup e.Enclave.page_table ~vpn with
    | None -> Types.Err (Types.Invalid_argument_ "EADD target page not mapped")
    | Some pte ->
      Bytes.fill add_page 0 Hypertee_util.Units.page_size '\000';
      Bytes.blit data 0 add_page 0 (Bytes.length data);
      (* Store through the memory-encryption engine: DRAM holds
         ciphertext under the enclave's key (encrypted in place, no
         intermediate page copy). *)
      Mem_encryption.write_page t.mee t.mem ~key_id:pte.Pte.key_id ~frame:pte.Pte.ppn add_page;
      measurement_update e ~vpn add_page;
      (* Record the EADD so ERETIRE can replay the measurement over
         the resident pages before parking (warm pool). *)
      e.Enclave.added_pages <- e.Enclave.added_pages @ [ (vpn, executable) ];
      Types.Ok_unit
  end

let handle_enter t ~enclave =
  let* e = get_enclave t enclave in
  let* () = Enclave.can_enter e in
  let* () = if e.Enclave.key_parked then revive_key t e else Ok () in
  e.Enclave.state <- Enclave.Running;
  Types.Ok_entered { enclave }

let handle_resume t ~enclave =
  let* e = get_enclave t enclave in
  let* () = Enclave.can_resume e in
  e.Enclave.state <- Enclave.Running;
  Types.Ok_entered { enclave }

let handle_interrupt t ~enclave ~pc ~cause =
  ignore cause;
  let* e = get_enclave t enclave in
  match e.Enclave.state with
  | Enclave.Running ->
    (* Save the interrupted context into the ECS (EMS-private) and
       park the enclave; EMCall performs the CS register switch. *)
    e.Enclave.saved_pc <- pc;
    e.Enclave.state <- Enclave.Interrupted;
    Types.Ok_unit
  | _ -> Types.Err (Types.Bad_state (Enclave.state_name e.Enclave.state))

let handle_exit t ~sender ~enclave =
  let* e = get_enclave t enclave in
  let* () = check_identity ~sender ~target:enclave ~strict:true in
  let* () = Enclave.can_exit e in
  e.Enclave.state <- Enclave.Measured;
  Types.Ok_unit

let handle_destroy t ~enclave =
  (* Direct lookup, not [get_enclave]: EDESTROY is one of the two
     primitives allowed to reach a Parked (warm-pool) enclave. *)
  let* e =
    match Hashtbl.find_opt t.enclaves enclave with
    | Some e when e.Enclave.state <> Enclave.Destroyed -> Ok e
    | Some _ | None -> Error Types.No_such_enclave
  in
  (* Detach any shared memory first (connections must not leak). *)
  List.iter (fun (shm_id, _) -> detach_shm_frames t e shm_id) e.Enclave.attached_shms;
  e.Enclave.attached_shms <- [];
  (* Reclaim private pages: zero, return to pool. *)
  let private_frames = Ownership.frames_of t.ownership e.Enclave.id in
  List.iter (fun frame -> Ownership.release t.ownership ~frame) private_frames;
  Mem_pool.give_back t.pool private_frames;
  (* Page-table frames are enclave memory too. *)
  let pt_frames = Page_table.node_frames e.Enclave.page_table in
  Mem_pool.give_back t.pool pt_frames;
  (* Staging frames were host memory: hand them back to the OS. *)
  t.os_return ~frames:e.Enclave.staging_frames;
  e.Enclave.staging_frames <- [];
  (* KeyID release requires TLB+cache flush on CS (EMCall does it);
     EMS side revokes the slot — unless it was already parked away. *)
  if not e.Enclave.key_parked then Mem_encryption.revoke t.mee ~key_id:e.Enclave.key_id;
  e.Enclave.state <- Enclave.Destroyed;
  Hashtbl.remove t.enclaves enclave;
  State.clear_adopted t enclave;
  (* A parked enclave leaves the warm pool when destroyed. *)
  State.warm_remove t enclave;
  (* Regions this enclave owned and nobody is attached to can never
     be ESHMDES'd (owner identity required): reclaim them now.
     Regions with live attachments survive and are reaped on the
     last ESHMDT. *)
  ignore (reap_orphaned_shms t);
  (* Secure channels that name this enclave as an endpoint die with
     it, wiping their binding secrets — the "no orphaned channel
     keys" rule the invariant checker enforces. *)
  ignore (Chan.drop_for_enclave t.chans enclave);
  Types.Ok_unit

(* Direct entry point for integrity containment: [Runtime] terminates
   a compromised enclave without a round trip through dispatch. *)
let destroy = handle_destroy

(* --- Warm pool (ERETIRE / EWARM) ---

   ERETIRE parks a Measured, shm-free enclave for reuse: dynamic heap
   growth is released, unmeasured static pages are scrubbed, and the
   measurement is RE-DERIVED from the resident pages by replaying the
   EADD history through the same hash stream EADD fed. Only an exact
   byte match with the recorded measurement parks; anything else
   (modified pages, swapped-out pages, no EADD history, parked key,
   pool full) falls back to a full destroy — so an EWARM create
   provably hands out exactly the image a cold create would measure. *)

let rehash_resident t (e : Enclave.t) =
  let ctx = Hypertee_crypto.Sha256.init () in
  let header = Bytes.create 8 in
  try
    List.iter
      (fun (vpn, _executable) ->
        match Page_table.lookup e.Enclave.page_table ~vpn with
        | None -> raise Exit
        | Some pte ->
          let data =
            Mem_encryption.read_page t.mee t.mem ~key_id:pte.Pte.key_id ~frame:pte.Pte.ppn
          in
          (* Mirror [State.measurement_update]: 8-byte LE vpn header,
             then the full page. *)
          Hypertee_util.Bytes_ext.set_u64_le header 0 (Int64.of_int vpn);
          Hypertee_crypto.Sha256.feed_sub ctx header ~off:0 ~len:8;
          Hypertee_crypto.Sha256.update ctx data)
      e.Enclave.added_pages;
    Some (Hypertee_crypto.Sha256.finalize ctx)
  with Exit -> None

let handle_retire t ~enclave =
  let* e = get_enclave t enclave in
  let* () = Enclave.can_retire e in
  if e.Enclave.attached_shms <> [] then
    Types.Err (Types.Bad_state "shared memory attached: detach before ERETIRE")
  else begin
    (* A session's channels never survive it. *)
    ignore (Chan.drop_for_enclave t.chans enclave);
    (* Release dynamic heap growth beyond the static layout. *)
    let static_heap_top =
      e.Enclave.layout.Enclave.heap_base + e.Enclave.config.Types.heap_pages
    in
    let dynamic = ref [] in
    for vpn = static_heap_top to e.Enclave.heap_cursor - 1 do
      match unmap_private_page t e ~vpn with
      | Ok frame -> dynamic := frame :: !dynamic
      | Error _ -> () (* allocation failed midway; never mapped *)
    done;
    Mem_pool.give_back t.pool !dynamic;
    e.Enclave.heap_cursor <- static_heap_top;
    e.Enclave.shm_cursor <- e.Enclave.layout.Enclave.shm_base;
    e.Enclave.saved_pc <- 0;
    let parkable =
      Hashtbl.length e.Enclave.swapped_out = 0
      && e.Enclave.added_pages <> []
      && (not e.Enclave.key_parked)
      && warm_has_room t
      (* Park only on the measurement's home shard — the one the gate
         routes EWARM to. Parking anywhere else would strand the
         enclave: no lookup ever reaches it, and it would squat in
         the warm list until capacity starves real candidates. *)
      && (match e.Enclave.measurement with
         | Some m -> Types.warm_home ~shards:t.id_stride m = t.shard
         | None -> false)
      &&
      match (rehash_resident t e, e.Enclave.measurement) with
      | Some m, Some recorded -> Bytes.equal m recorded
      | _ -> false
    in
    if parkable then begin
      (* Scrub unmeasured static pages (heap, stack, and any static
         page EADD never wrote) so no tenant data crosses sessions. *)
      let added = List.map fst e.Enclave.added_pages in
      List.iter
        (fun vpn ->
          if not (List.mem vpn added) then
            match Page_table.lookup e.Enclave.page_table ~vpn with
            | Some pte when pte.Pte.key_id = e.Enclave.key_id ->
              store_zero_page t ~key_id:pte.Pte.key_id ~frame:pte.Pte.ppn
            | Some _ | None -> ())
        (Enclave.static_vpns e);
      e.Enclave.state <- Enclave.Parked;
      warm_push t enclave;
      Types.Ok_unit
    end
    else
      (* Not reusable: fall back to a full destroy. The caller sees
         Ok_unit either way — ERETIRE means "this session is over". *)
      handle_destroy t ~enclave
  end

let handle_warm_create t ~measurement =
  if Bytes.length measurement <> Hypertee_crypto.Sha256.digest_size then
    Types.Err (Types.Invalid_argument_ "EWARM measurement must be a SHA-256 digest")
  else
    match warm_pop_matching t ~measurement with
    | None -> Types.Err (Types.Bad_state "no warm enclave with this measurement")
    | Some e ->
      let finish () =
        e.Enclave.state <- Enclave.Measured;
        Types.Ok_created { enclave = e.Enclave.id }
      in
      if e.Enclave.key_parked then (
        match revive_key t e with
        | Error err ->
          (* Leave it parked (and listed) for a later attempt. *)
          warm_push t e.Enclave.id;
          Types.Err err
        | Ok () -> finish ())
      else finish ()

let handle t ~sender (request : Types.request) =
  match request with
  | Types.Create { config } -> handle_create t config
  | Types.Add { enclave; vpn; data; executable } ->
    handle_add t ~sender ~enclave ~vpn ~data ~executable
  | Types.Enter { enclave } -> handle_enter t ~enclave
  | Types.Resume { enclave } -> handle_resume t ~enclave
  | Types.Interrupt { enclave; pc; cause } -> handle_interrupt t ~enclave ~pc ~cause
  | Types.Exit { enclave } -> handle_exit t ~sender ~enclave
  | Types.Destroy { enclave } -> handle_destroy t ~enclave
  | Types.Retire { enclave } -> handle_retire t ~enclave
  | Types.Warm_create { measurement } -> handle_warm_create t ~measurement
  | _ -> Types.Err (Types.Invalid_argument_ "request outside the lifecycle service")

let register registry = Registry.register registry ~service:name ~opcodes handle
