(** Lifecycle service: ECREATE, EADD, EENTER, ERESUME (incl. the
    interrupt save path), EEXIT, EDESTROY. *)

module Phys_mem = Hypertee_arch.Phys_mem
module Mem_encryption = Hypertee_arch.Mem_encryption
module Page_table = Hypertee_arch.Page_table
module Pte = Hypertee_arch.Pte
open State

let name = "lifecycle"
let opcodes = Types.[ ECREATE; EADD; EENTER; ERESUME; EEXIT; EDESTROY ]

let handle_create t (config : Types.enclave_config) =
  let sane =
    config.Types.code_pages > 0 && config.Types.code_pages <= 4096
    && config.Types.data_pages >= 0
    && config.Types.heap_pages >= 0
    && config.Types.stack_pages > 0
    && config.Types.shared_pages >= 0
    && Types.total_static_pages config <= 65536
  in
  if not sane then Types.Err (Types.Invalid_argument_ "enclave configuration out of bounds")
  else begin
    match allocate_key_id t ~except:(-1) with
    | None -> Types.Err Types.Out_of_key_ids
    | Some key_id -> (
      let id = t.next_enclave_id in
      (* Private page table backed by pool frames (enclave memory). *)
      let pt_alloc () =
        match Mem_pool.take t.pool ~n:1 with
        | Some [ f ] -> f
        | Some _ | None -> failwith "out of memory"
      in
      match
        Page_table.create t.mem ~node_owner:(Phys_mem.Page_table id) ~alloc:pt_alloc
      with
      | exception Failure _ ->
        (* Release the reserved KeyID: [allocate_key_id] claimed it. *)
        Mem_encryption.revoke t.mee ~key_id;
        Types.Err Types.Out_of_memory
      | page_table -> (
        let e = Enclave.create ~id ~config ~page_table ~key_id in
        (* The memory key is bound to the (not yet final) identity;
           derive from the enclave id now, rebound at EMEAS time in
           principle — the simulator derives from id only. *)
        let key = Keymgmt.memory_key t.keys ~enclave_measurement:Bytes.empty ~enclave_id:id in
        Mem_encryption.program t.mee ~key_id key;
        (* Any failure from here on must tear the half-built enclave
           down completely: pages back to the pool, ownership records
           dropped, the KeyID released. *)
        let teardown err =
          let frames = Ownership.frames_of t.ownership id in
          List.iter (fun frame -> Ownership.release t.ownership ~frame) frames;
          Mem_pool.give_back t.pool frames;
          Mem_pool.give_back t.pool (Page_table.node_frames page_table);
          Mem_encryption.revoke t.mee ~key_id;
          Types.Err err
        in
        (* Static allocation at creation (Sec. IV-A): map code, data,
           heap, stack pages from the pool. Page-table node allocation
           can also exhaust the pool mid-mapping ([Failure]). *)
        let vpns = Enclave.static_vpns e in
        try
        match take_pool_frames t ~n:(List.length vpns) with
        | Error err -> teardown err
        | Ok frames ->
          let result =
            List.fold_left2
              (fun acc vpn frame ->
                match acc with
                | Error _ -> acc
                | Ok () ->
                  let x = vpn < e.Enclave.layout.Enclave.data_base in
                  (match map_private_page t e ~vpn ~frame ~r:true ~w:(not x) ~x with
                  | Ok () -> Ok ()
                  | Error err -> Error err))
              (Ok ()) vpns frames
          in
          (match result with
          | Error err -> teardown err
          | Ok () ->
            (* Staging window: HostApp memory mapped into the enclave
               address space in plaintext (KeyID 0) so the host can
               pass encrypted inputs in and read results out
               (Sec. IV-A). Not enclave memory: no bitmap bit. *)
            let staging = t.os_request ~n:config.Types.shared_pages in
            if List.length staging < config.Types.shared_pages then begin
              t.os_return ~frames:staging;
              teardown Types.Out_of_memory
            end
            else begin
              List.iteri
                (fun i frame ->
                  Page_table.map e.Enclave.page_table
                    ~vpn:(e.Enclave.layout.Enclave.staging_base + i)
                    (Pte.leaf ~ppn:frame ~r:true ~w:true ~x:false ~key_id:0))
                staging;
              e.Enclave.staging_frames <- staging;
              t.next_enclave_id <- id + t.id_stride;
              Hashtbl.replace t.enclaves id e;
              Types.Ok_created { enclave = id }
            end)
        with Failure _ -> teardown Types.Out_of_memory))
  end

(* Reused EADD staging page, zero-padded per call (single-threaded). *)
let add_page = Bytes.make Hypertee_util.Units.page_size '\000'

let handle_add t ~sender ~enclave ~vpn ~data ~executable =
  ignore sender;
  let* e = get_enclave t enclave in
  let* () = Enclave.can_add e in
  if Bytes.length data > Hypertee_util.Units.page_size then
    Types.Err (Types.Invalid_argument_ "EADD data exceeds one page")
  else begin
    match Page_table.lookup e.Enclave.page_table ~vpn with
    | None -> Types.Err (Types.Invalid_argument_ "EADD target page not mapped")
    | Some pte ->
      Bytes.fill add_page 0 Hypertee_util.Units.page_size '\000';
      Bytes.blit data 0 add_page 0 (Bytes.length data);
      (* Store through the memory-encryption engine: DRAM holds
         ciphertext under the enclave's key (encrypted in place, no
         intermediate page copy). *)
      Mem_encryption.write_page t.mee t.mem ~key_id:pte.Pte.key_id ~frame:pte.Pte.ppn add_page;
      measurement_update e ~vpn add_page;
      ignore executable;
      Types.Ok_unit
  end

let handle_enter t ~enclave =
  let* e = get_enclave t enclave in
  let* () = Enclave.can_enter e in
  let* () = if e.Enclave.key_parked then revive_key t e else Ok () in
  e.Enclave.state <- Enclave.Running;
  Types.Ok_entered { enclave }

let handle_resume t ~enclave =
  let* e = get_enclave t enclave in
  let* () = Enclave.can_resume e in
  e.Enclave.state <- Enclave.Running;
  Types.Ok_entered { enclave }

let handle_interrupt t ~enclave ~pc ~cause =
  ignore cause;
  let* e = get_enclave t enclave in
  match e.Enclave.state with
  | Enclave.Running ->
    (* Save the interrupted context into the ECS (EMS-private) and
       park the enclave; EMCall performs the CS register switch. *)
    e.Enclave.saved_pc <- pc;
    e.Enclave.state <- Enclave.Interrupted;
    Types.Ok_unit
  | _ -> Types.Err (Types.Bad_state (Enclave.state_name e.Enclave.state))

let handle_exit t ~sender ~enclave =
  let* e = get_enclave t enclave in
  let* () = check_identity ~sender ~target:enclave ~strict:true in
  let* () = Enclave.can_exit e in
  e.Enclave.state <- Enclave.Measured;
  Types.Ok_unit

let handle_destroy t ~enclave =
  let* e = get_enclave t enclave in
  (* Detach any shared memory first (connections must not leak). *)
  List.iter (fun (shm_id, _) -> detach_shm_frames t e shm_id) e.Enclave.attached_shms;
  e.Enclave.attached_shms <- [];
  (* Reclaim private pages: zero, return to pool. *)
  let private_frames = Ownership.frames_of t.ownership e.Enclave.id in
  List.iter (fun frame -> Ownership.release t.ownership ~frame) private_frames;
  Mem_pool.give_back t.pool private_frames;
  (* Page-table frames are enclave memory too. *)
  let pt_frames = Page_table.node_frames e.Enclave.page_table in
  Mem_pool.give_back t.pool pt_frames;
  (* Staging frames were host memory: hand them back to the OS. *)
  t.os_return ~frames:e.Enclave.staging_frames;
  e.Enclave.staging_frames <- [];
  (* KeyID release requires TLB+cache flush on CS (EMCall does it);
     EMS side revokes the slot — unless it was already parked away. *)
  if not e.Enclave.key_parked then Mem_encryption.revoke t.mee ~key_id:e.Enclave.key_id;
  e.Enclave.state <- Enclave.Destroyed;
  Hashtbl.remove t.enclaves enclave;
  State.clear_adopted t enclave;
  (* Regions this enclave owned and nobody is attached to can never
     be ESHMDES'd (owner identity required): reclaim them now.
     Regions with live attachments survive and are reaped on the
     last ESHMDT. *)
  ignore (reap_orphaned_shms t);
  (* Secure channels that name this enclave as an endpoint die with
     it, wiping their binding secrets — the "no orphaned channel
     keys" rule the invariant checker enforces. *)
  ignore (Chan.drop_for_enclave t.chans enclave);
  Types.Ok_unit

(* Direct entry point for integrity containment: [Runtime] terminates
   a compromised enclave without a round trip through dispatch. *)
let destroy = handle_destroy

let handle t ~sender (request : Types.request) =
  match request with
  | Types.Create { config } -> handle_create t config
  | Types.Add { enclave; vpn; data; executable } ->
    handle_add t ~sender ~enclave ~vpn ~data ~executable
  | Types.Enter { enclave } -> handle_enter t ~enclave
  | Types.Resume { enclave } -> handle_resume t ~enclave
  | Types.Interrupt { enclave; pc; cause } -> handle_interrupt t ~enclave ~pc ~cause
  | Types.Exit { enclave } -> handle_exit t ~sender ~enclave
  | Types.Destroy { enclave } -> handle_destroy t ~enclave
  | _ -> Types.Err (Types.Invalid_argument_ "request outside the lifecycle service")

let register registry = Registry.register registry ~service:name ~opcodes handle
