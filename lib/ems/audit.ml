type outcome = Served | Refused of string

type entry = {
  seq : int;
  opcode : Types.opcode;
  sender : Types.enclave_id option;
  outcome : outcome;
}

type fault_event = { fault_seq : int; site : string; detail : string; recovered : bool }

type t = {
  capacity : int;
  mutable entries : entry list; (* newest first *)
  mutable retained : int;
  mutable total : int;
  mutable faults : fault_event list; (* newest first *)
  mutable faults_retained : int;
  mutable faults_total : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Audit.create: capacity must be positive";
  {
    capacity;
    entries = [];
    retained = 0;
    total = 0;
    faults = [];
    faults_retained = 0;
    faults_total = 0;
  }

let record t ~opcode ~sender ~outcome =
  t.entries <- { seq = t.total; opcode; sender; outcome } :: t.entries;
  t.total <- t.total + 1;
  t.retained <- t.retained + 1;
  if t.retained > t.capacity then begin
    (* Drop the oldest half in one pass: amortised O(1) per record. *)
    let keep = t.capacity / 2 in
    let rec take n = function
      | x :: rest when n > 0 -> x :: take (n - 1) rest
      | _ -> []
    in
    t.entries <- take keep t.entries;
    t.retained <- keep
  end

let record_fault t ~site ~detail ~recovered =
  t.faults <- { fault_seq = t.faults_total; site; detail; recovered } :: t.faults;
  t.faults_total <- t.faults_total + 1;
  t.faults_retained <- t.faults_retained + 1;
  if t.faults_retained > t.capacity then begin
    let keep = t.capacity / 2 in
    let rec take n = function x :: rest when n > 0 -> x :: take (n - 1) rest | _ -> [] in
    t.faults <- take keep t.faults;
    t.faults_retained <- keep
  end

let entries t = List.rev t.entries
let total t = t.total
let fault_events t = List.rev t.faults
let faults_total t = t.faults_total
let refusals t = List.filter (fun e -> e.outcome <> Served) (entries t)
let by_sender t ~sender = List.filter (fun e -> e.sender = sender) (entries t)

let pp_entry fmt e =
  Format.fprintf fmt "#%d %s from %s: %s" e.seq
    (Types.opcode_name e.opcode)
    (match e.sender with Some id -> Printf.sprintf "enclave %d" id | None -> "host")
    (match e.outcome with Served -> "served" | Refused reason -> "refused (" ^ reason ^ ")")
