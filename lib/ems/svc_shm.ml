(** Shared-memory service: ESHMGET, ESHMSHR, ESHMAT, ESHMDT,
    ESHMDES (Sec. V-A). *)

module Phys_mem = Hypertee_arch.Phys_mem
module Mem_encryption = Hypertee_arch.Mem_encryption
module Page_table = Hypertee_arch.Page_table
module Pte = Hypertee_arch.Pte
open State

let name = "shm"
let opcodes = Types.[ ESHMGET; ESHMAT; ESHMDT; ESHMSHR; ESHMDES ]

let handle_shmget t ~sender ~owner ~pages ~max_perm =
  let* _e = get_enclave t owner in
  let* () = check_identity ~sender ~target:owner ~strict:true in
  if pages <= 0 || pages > 4096 then Types.Err (Types.Invalid_argument_ "bad page count")
  else begin
    match Mem_encryption.find_free_slot t.mee with
    | None -> Types.Err Types.Out_of_key_ids
    | Some key_id -> (
      (* The slot is reserved from here: every error exit before
         [program] must release it. *)
      let fail err =
        Mem_encryption.revoke t.mee ~key_id;
        Types.Err err
      in
      match take_pool_frames t ~n:pages with
      | Error err -> fail err
      | Ok frames ->
      let shm = t.next_shm_id in
      let claim_ok =
        List.for_all (fun frame -> Ownership.claim_shared t.ownership ~frame ~shm) frames
      in
      if not claim_ok then fail (Types.Invalid_argument_ "frame already owned")
      else begin
        List.iter (fun frame -> Phys_mem.set_owner t.mem frame (Phys_mem.Shared shm)) frames;
        (* Dedicated key derived from initial sender + ShmID (Sec. V-A). *)
        let key = Keymgmt.shm_key t.keys ~owner ~shm_id:shm in
        Mem_encryption.program t.mee ~key_id key;
        List.iter (fun frame -> store_zero_page t ~key_id ~frame) frames;
        ignore (Shm.register t.shms ~shm ~owner ~frames ~key_id ~max_perm);
        t.next_shm_id <- shm + t.id_stride;
        Types.Ok_shm { shm }
      end)
  end

let handle_shmshr t ~sender ~owner ~shm ~grantee ~perm =
  let* _e = get_enclave t owner in
  let* () = check_identity ~sender ~target:owner ~strict:true in
  let* _g = get_enclave t grantee in
  (match Shm.grant t.shms ~shm ~caller:owner ~grantee ~perm with
  | Ok () -> Types.Ok_unit
  | Error err -> Types.Err err)

let handle_shmat t ~sender ~enclave ~shm ~requested_perm =
  let* e = get_enclave t enclave in
  let* () = check_identity ~sender ~target:enclave ~strict:true in
  match Shm.find t.shms shm with
  | None -> Types.Err Types.No_such_shm
  | Some region -> (
    let base_vpn = e.Enclave.shm_cursor in
    match Shm.attach t.shms ~shm ~enclave ~requested_perm ~base_vpn with
    | Error err -> Types.Err err
    | Ok granted ->
      let writable = granted = Types.Read_write in
      List.iteri
        (fun i frame ->
          ignore (Ownership.attach t.ownership ~frame ~enclave);
          Page_table.map e.Enclave.page_table ~vpn:(base_vpn + i)
            (Pte.leaf ~ppn:frame ~r:true ~w:writable ~x:false ~key_id:region.Shm.key_id))
        region.Shm.frames;
      let pages = List.length region.Shm.frames in
      e.Enclave.shm_cursor <- base_vpn + pages + 1;
      e.Enclave.attached_shms <- (shm, base_vpn) :: e.Enclave.attached_shms;
      Types.Ok_shmat { base_vpn; pages })

let handle_shmdt t ~sender ~enclave ~shm =
  let* e = get_enclave t enclave in
  let* () = check_identity ~sender ~target:enclave ~strict:true in
  match List.assoc_opt shm e.Enclave.attached_shms with
  | None -> Types.Err (Types.Invalid_argument_ "not attached")
  | Some base_vpn -> (
    match Shm.find t.shms shm with
    | None -> Types.Err Types.No_such_shm
    | Some region -> (
      match Shm.detach t.shms ~shm ~enclave with
      | Error err -> Types.Err err
      | Ok () ->
        List.iteri
          (fun i frame ->
            ignore (Ownership.detach t.ownership ~frame ~enclave);
            Page_table.unmap e.Enclave.page_table ~vpn:(base_vpn + i))
          region.Shm.frames;
        e.Enclave.attached_shms <- List.remove_assoc shm e.Enclave.attached_shms;
        (* If the detaching enclave was the last attachment of a
           region whose owner is gone, no ESHMDES can ever reclaim
           it: reap it now. *)
        ignore (reap_orphaned_shms t);
        Types.Ok_unit))

let handle_shmdes t ~sender ~owner ~shm =
  let* _e = get_enclave t owner in
  let* () = check_identity ~sender ~target:owner ~strict:true in
  match Shm.destroy t.shms ~shm ~caller:owner with
  | Error err -> Types.Err err
  | Ok region ->
    List.iter
      (fun frame ->
        Ownership.release t.ownership ~frame;
        Phys_mem.zero t.mem ~frame)
      region.Shm.frames;
    Mem_pool.give_back t.pool region.Shm.frames;
    Mem_encryption.revoke t.mee ~key_id:region.Shm.key_id;
    Types.Ok_unit

let handle t ~sender (request : Types.request) =
  match request with
  | Types.Shmget { owner; pages; max_perm } -> handle_shmget t ~sender ~owner ~pages ~max_perm
  | Types.Shmat { enclave; shm; requested_perm } ->
    handle_shmat t ~sender ~enclave ~shm ~requested_perm
  | Types.Shmdt { enclave; shm } -> handle_shmdt t ~sender ~enclave ~shm
  | Types.Shmshr { owner; shm; grantee; perm } ->
    handle_shmshr t ~sender ~owner ~shm ~grantee ~perm
  | Types.Shmdes { owner; shm } -> handle_shmdes t ~sender ~owner ~shm
  | _ -> Types.Err (Types.Invalid_argument_ "request outside the shm service")

let register registry = Registry.register registry ~service:name ~opcodes handle
