module Phys_mem = Hypertee_arch.Phys_mem
module Bitmap = Hypertee_arch.Bitmap
module Mem_encryption = Hypertee_arch.Mem_encryption
module Page_table = Hypertee_arch.Page_table
module Pte = Hypertee_arch.Pte

type t = {
  rng : Hypertee_util.Xrng.t;
  mem : Phys_mem.t;
  bitmap : Bitmap.t;
  mee : Mem_encryption.t;
  keys : Keymgmt.t;
  cost : Cost.t;
  pool : Mem_pool.t;
  ownership : Ownership.t;
  shms : Shm.t;
  enclaves : (Types.enclave_id, Enclave.t) Hashtbl.t;
  audit : Audit.t;
  platform_measurement : bytes;
  served : (Types.opcode, int) Hashtbl.t;
  os_request : n:int -> int list;
  os_return : frames:int list -> unit;
  mutable next_enclave_id : int;
  mutable next_shm_id : int;
}

let create ~rng ~mem ~bitmap ~mee ~keys ~cost ~os_request ~os_return ~platform_measurement =
  let pool_rng = Hypertee_util.Xrng.split rng in
  let pool =
    Mem_pool.create pool_rng ~mem ~bitmap ~os_request ~os_return ~initial_frames:128
  in
  {
    rng;
    mem;
    bitmap;
    mee;
    keys;
    cost;
    pool;
    ownership = Ownership.create ();
    shms = Shm.create ();
    enclaves = Hashtbl.create 16;
    audit = Audit.create ();
    platform_measurement;
    served = Hashtbl.create 16;
    os_request;
    os_return;
    next_enclave_id = 1;
    next_shm_id = 1;
  }

let keys t = t.keys
let pool t = t.pool
let ownership t = t.ownership
let platform_measurement t = t.platform_measurement
let find_enclave t id = Hashtbl.find_opt t.enclaves id
let find_shm t id = Shm.find t.shms id
let served t op = Option.value ~default:0 (Hashtbl.find_opt t.served op)
let live_enclaves t = Hashtbl.fold (fun id _ acc -> id :: acc) t.enclaves [] |> List.sort compare
let audit t = t.audit
let service_ns t request = Cost.service_ns t.cost request

let count t op = Hashtbl.replace t.served op (served t op + 1)

(* --- helpers --- *)

let ( let* ) r f = match r with Ok v -> f v | Error e -> Types.Err e

let get_enclave t id =
  match Hashtbl.find_opt t.enclaves id with
  | Some e when e.Enclave.state <> Enclave.Destroyed -> Ok e
  | Some _ | None -> Error Types.No_such_enclave

(* Identity check: a user-privilege primitive acting on enclave [id]
   must come from that enclave itself (sender stamped by EMCall) or
   from its host application (sender = None) for the setup
   primitives. [strict] requires the enclave itself. *)
let check_identity ~sender ~target ~strict =
  match sender with
  | Some s when s = target -> Ok ()
  | Some _ -> Error (Types.Permission_denied "request forged for another enclave")
  | None ->
    if strict then Error (Types.Permission_denied "primitive must be issued from the enclave")
    else Ok ()

let take_pool_frames t ~n =
  match Mem_pool.take t.pool ~n with Some fs -> Ok fs | None -> Error Types.Out_of_memory

(* Initialise a freshly mapped page through the encryption engine so
   DRAM holds valid (encrypted-zero) content with a valid MAC; an
   uninitialised line would otherwise MAC-fault on first load. *)
let store_zero_page t ~key_id ~frame =
  let zero = Bytes.make Hypertee_util.Units.page_size '\000' in
  Phys_mem.write t.mem ~frame (Mem_encryption.store t.mee ~key_id ~frame zero)

let map_private_page t (e : Enclave.t) ~vpn ~frame ~r ~w ~x =
  if not (Ownership.claim_private t.ownership ~frame ~enclave:e.Enclave.id) then
    Error (Types.Invalid_argument_ "frame already owned")
  else begin
    Phys_mem.set_owner t.mem frame (Phys_mem.Enclave e.Enclave.id);
    Page_table.map e.Enclave.page_table ~vpn
      (Pte.leaf ~ppn:frame ~r ~w ~x ~key_id:e.Enclave.key_id);
    store_zero_page t ~key_id:e.Enclave.key_id ~frame;
    Ok ()
  end

let unmap_private_page t (e : Enclave.t) ~vpn =
  match Page_table.lookup e.Enclave.page_table ~vpn with
  | None -> Error (Types.Invalid_argument_ "page not mapped")
  | Some pte ->
    let frame = pte.Pte.ppn in
    Page_table.unmap e.Enclave.page_table ~vpn;
    Ownership.release t.ownership ~frame;
    Phys_mem.zero t.mem ~frame;
    Ok frame

(* --- KeyID pressure (Sec. IV-C) ---

   "In case of KeyID exhaustion, EMS can suspend an enclave to
   release a KeyID." Parking a victim's key re-encrypts its private
   pages in place under the EMS swap key and revokes the slot;
   revival (at the next EENTER) assigns a fresh KeyID and restores
   the pages. EMCall's context-switch flush covers the TLB/cache
   coherence the paper requires. *)

let private_leaves (e : Enclave.t) =
  List.filter
    (fun (_, pte) -> pte.Pte.key_id = e.Enclave.key_id)
    (Page_table.entries e.Enclave.page_table)

let park_key t (e : Enclave.t) =
  let swap_key = Hypertee_crypto.Aes.expand (Keymgmt.swap_key t.keys) in
  List.iter
    (fun (vpn, pte) ->
      let frame = pte.Pte.ppn in
      let pt = Mem_encryption.load t.mee ~key_id:pte.Pte.key_id ~frame (Phys_mem.read t.mem ~frame) in
      Phys_mem.write t.mem ~frame (Hypertee_crypto.Aes.encrypt_page swap_key ~page_number:vpn pt))
    (private_leaves e);
  Mem_encryption.revoke t.mee ~key_id:e.Enclave.key_id;
  e.Enclave.key_parked <- true

(* A parkable victim: measured, idle, key not already parked. *)
let find_parkable t ~except =
  Hashtbl.fold
    (fun id (e : Enclave.t) acc ->
      match acc with
      | Some _ -> acc
      | None ->
        if id <> except && e.Enclave.state = Enclave.Measured && not e.Enclave.key_parked then
          Some e
        else None)
    t.enclaves None

(* Allocate a KeyID, parking an idle enclave's key if the engine is
   full. [except] is the enclave the allocation serves. *)
let allocate_key_id t ~except =
  match Mem_encryption.find_free_slot t.mee with
  | Some key_id -> Some key_id
  | None -> (
    match find_parkable t ~except with
    | Some victim ->
      park_key t victim;
      Mem_encryption.find_free_slot t.mee
    | None -> None)

let revive_key t (e : Enclave.t) =
  match allocate_key_id t ~except:e.Enclave.id with
  | None -> Error Types.Out_of_key_ids
  | Some key_id ->
    let measurement = Option.value ~default:Bytes.empty e.Enclave.measurement in
    let key = Keymgmt.memory_key t.keys ~enclave_measurement:measurement ~enclave_id:e.Enclave.id in
    Mem_encryption.program t.mee ~key_id key;
    let swap_key = Hypertee_crypto.Aes.expand (Keymgmt.swap_key t.keys) in
    (* The parked leaves still carry the old KeyID in their PTEs. *)
    let old_key = e.Enclave.key_id in
    List.iter
      (fun (vpn, pte) ->
        if pte.Pte.key_id = old_key then begin
          let frame = pte.Pte.ppn in
          let pt =
            Hypertee_crypto.Aes.decrypt_page swap_key ~page_number:vpn (Phys_mem.read t.mem ~frame)
          in
          Phys_mem.write t.mem ~frame (Mem_encryption.store t.mee ~key_id ~frame pt);
          Page_table.map e.Enclave.page_table ~vpn { pte with Pte.key_id }
        end)
      (Page_table.entries e.Enclave.page_table);
    e.Enclave.key_id <- key_id;
    e.Enclave.key_parked <- false;
    Ok ()

(* --- primitive handlers --- *)

let handle_create t (config : Types.enclave_config) =
  let sane =
    config.Types.code_pages > 0 && config.Types.code_pages <= 4096
    && config.Types.data_pages >= 0
    && config.Types.heap_pages >= 0
    && config.Types.stack_pages > 0
    && config.Types.shared_pages >= 0
    && Types.total_static_pages config <= 65536
  in
  if not sane then Types.Err (Types.Invalid_argument_ "enclave configuration out of bounds")
  else begin
    match allocate_key_id t ~except:(-1) with
    | None -> Types.Err Types.Out_of_key_ids
    | Some key_id -> (
      let id = t.next_enclave_id in
      (* Private page table backed by pool frames (enclave memory). *)
      let pt_alloc () =
        match Mem_pool.take t.pool ~n:1 with
        | Some [ f ] -> f
        | Some _ | None -> failwith "out of memory"
      in
      match
        Page_table.create t.mem ~node_owner:(Phys_mem.Page_table id) ~alloc:pt_alloc
      with
      | exception Failure _ -> Types.Err Types.Out_of_memory
      | page_table -> (
        let e = Enclave.create ~id ~config ~page_table ~key_id in
        (* The memory key is bound to the (not yet final) identity;
           derive from the enclave id now, rebound at EMEAS time in
           principle — the simulator derives from id only. *)
        let key = Keymgmt.memory_key t.keys ~enclave_measurement:Bytes.empty ~enclave_id:id in
        Mem_encryption.program t.mee ~key_id key;
        (* Any failure from here on must tear the half-built enclave
           down completely: pages back to the pool, ownership records
           dropped, the KeyID released. *)
        let teardown err =
          let frames = Ownership.frames_of t.ownership id in
          List.iter (fun frame -> Ownership.release t.ownership ~frame) frames;
          Mem_pool.give_back t.pool frames;
          Mem_pool.give_back t.pool (Page_table.node_frames page_table);
          Mem_encryption.revoke t.mee ~key_id;
          Types.Err err
        in
        (* Static allocation at creation (Sec. IV-A): map code, data,
           heap, stack pages from the pool. Page-table node allocation
           can also exhaust the pool mid-mapping ([Failure]). *)
        let vpns = Enclave.static_vpns e in
        try
        match take_pool_frames t ~n:(List.length vpns) with
        | Error err -> teardown err
        | Ok frames ->
          let result =
            List.fold_left2
              (fun acc vpn frame ->
                match acc with
                | Error _ -> acc
                | Ok () ->
                  let x = vpn < e.Enclave.layout.Enclave.data_base in
                  (match map_private_page t e ~vpn ~frame ~r:true ~w:(not x) ~x with
                  | Ok () -> Ok ()
                  | Error err -> Error err))
              (Ok ()) vpns frames
          in
          (match result with
          | Error err -> teardown err
          | Ok () ->
            (* Staging window: HostApp memory mapped into the enclave
               address space in plaintext (KeyID 0) so the host can
               pass encrypted inputs in and read results out
               (Sec. IV-A). Not enclave memory: no bitmap bit. *)
            let staging = t.os_request ~n:config.Types.shared_pages in
            if List.length staging < config.Types.shared_pages then begin
              t.os_return ~frames:staging;
              teardown Types.Out_of_memory
            end
            else begin
              List.iteri
                (fun i frame ->
                  Page_table.map e.Enclave.page_table
                    ~vpn:(e.Enclave.layout.Enclave.staging_base + i)
                    (Pte.leaf ~ppn:frame ~r:true ~w:true ~x:false ~key_id:0))
                staging;
              e.Enclave.staging_frames <- staging;
              t.next_enclave_id <- id + 1;
              Hashtbl.replace t.enclaves id e;
              Types.Ok_created { enclave = id }
            end)
        with Failure _ -> teardown Types.Out_of_memory))
  end

let measurement_update (e : Enclave.t) ~vpn data =
  match e.Enclave.measurement_ctx with
  | Some ctx ->
    let header = Bytes.create 8 in
    Hypertee_util.Bytes_ext.set_u64_le header 0 (Int64.of_int vpn);
    Hypertee_crypto.Sha256.update ctx header;
    Hypertee_crypto.Sha256.update ctx data
  | None -> ()

let handle_add t ~sender ~enclave ~vpn ~data ~executable =
  ignore sender;
  let* e = get_enclave t enclave in
  let* () = Enclave.can_add e in
  if Bytes.length data > Hypertee_util.Units.page_size then
    Types.Err (Types.Invalid_argument_ "EADD data exceeds one page")
  else begin
    match Page_table.lookup e.Enclave.page_table ~vpn with
    | None -> Types.Err (Types.Invalid_argument_ "EADD target page not mapped")
    | Some pte ->
      let page = Bytes.make Hypertee_util.Units.page_size '\000' in
      Bytes.blit data 0 page 0 (Bytes.length data);
      (* Store through the memory-encryption engine: DRAM holds
         ciphertext under the enclave's key. *)
      let ct = Mem_encryption.store t.mee ~key_id:pte.Pte.key_id ~frame:pte.Pte.ppn page in
      Phys_mem.write t.mem ~frame:pte.Pte.ppn ct;
      measurement_update e ~vpn page;
      ignore executable;
      Types.Ok_unit
  end

let handle_measure t ~enclave =
  let* e = get_enclave t enclave in
  let* () = Enclave.can_measure e in
  (match e.Enclave.measurement_ctx with
  | None -> Types.Err (Types.Bad_state "measurement already finalized")
  | Some ctx ->
    let m = Hypertee_crypto.Sha256.finalize ctx in
    e.Enclave.measurement_ctx <- None;
    e.Enclave.measurement <- Some m;
    e.Enclave.state <- Enclave.Measured;
    Types.Ok_measure { measurement = m })

let handle_enter t ~enclave =
  let* e = get_enclave t enclave in
  let* () = Enclave.can_enter e in
  let* () = if e.Enclave.key_parked then revive_key t e else Ok () in
  e.Enclave.state <- Enclave.Running;
  Types.Ok_entered { enclave }

let handle_resume t ~enclave =
  let* e = get_enclave t enclave in
  let* () = Enclave.can_resume e in
  e.Enclave.state <- Enclave.Running;
  Types.Ok_entered { enclave }

let handle_interrupt t ~enclave ~pc ~cause =
  ignore cause;
  let* e = get_enclave t enclave in
  match e.Enclave.state with
  | Enclave.Running ->
    (* Save the interrupted context into the ECS (EMS-private) and
       park the enclave; EMCall performs the CS register switch. *)
    e.Enclave.saved_pc <- pc;
    e.Enclave.state <- Enclave.Interrupted;
    Types.Ok_unit
  | _ -> Types.Err (Types.Bad_state (Enclave.state_name e.Enclave.state))

let handle_exit t ~sender ~enclave =
  let* e = get_enclave t enclave in
  let* () = check_identity ~sender ~target:enclave ~strict:true in
  let* () = Enclave.can_exit e in
  e.Enclave.state <- Enclave.Measured;
  Types.Ok_unit

let detach_shm_frames t (e : Enclave.t) shm_id =
  match Shm.find t.shms shm_id with
  | None -> ()
  | Some region ->
    List.iter (fun frame -> Ownership.detach t.ownership ~frame ~enclave:e.Enclave.id)
      region.Shm.frames;
    ignore (Shm.detach t.shms ~shm:shm_id ~enclave:e.Enclave.id)

let handle_destroy t ~enclave =
  let* e = get_enclave t enclave in
  (* Detach any shared memory first (connections must not leak). *)
  List.iter (fun (shm_id, _) -> detach_shm_frames t e shm_id) e.Enclave.attached_shms;
  e.Enclave.attached_shms <- [];
  (* Reclaim private pages: zero, return to pool. *)
  let private_frames = Ownership.frames_of t.ownership e.Enclave.id in
  List.iter (fun frame -> Ownership.release t.ownership ~frame) private_frames;
  Mem_pool.give_back t.pool private_frames;
  (* Page-table frames are enclave memory too. *)
  let pt_frames = Page_table.node_frames e.Enclave.page_table in
  Mem_pool.give_back t.pool pt_frames;
  (* Staging frames were host memory: hand them back to the OS. *)
  t.os_return ~frames:e.Enclave.staging_frames;
  e.Enclave.staging_frames <- [];
  (* KeyID release requires TLB+cache flush on CS (EMCall does it);
     EMS side revokes the slot — unless it was already parked away. *)
  if not e.Enclave.key_parked then Mem_encryption.revoke t.mee ~key_id:e.Enclave.key_id;
  e.Enclave.state <- Enclave.Destroyed;
  Hashtbl.remove t.enclaves enclave;
  Types.Ok_unit

let handle_alloc t ~sender ~enclave ~pages =
  let* e = get_enclave t enclave in
  let* () = check_identity ~sender ~target:enclave ~strict:false in
  if pages <= 0 || pages > 16384 then Types.Err (Types.Invalid_argument_ "bad page count")
  else begin
    let* frames = take_pool_frames t ~n:pages in
    let base_vpn = e.Enclave.heap_cursor in
    let result =
      List.fold_left
        (fun (i, acc) frame ->
          match acc with
          | Error _ -> (i, acc)
          | Ok () ->
            (i + 1, map_private_page t e ~vpn:(base_vpn + i) ~frame ~r:true ~w:true ~x:false))
        (0, Ok ()) frames
      |> snd
    in
    match result with
    | Error err -> Types.Err err
    | Ok () ->
      e.Enclave.heap_cursor <- base_vpn + pages;
      Types.Ok_alloc { base_vpn; pages }
  end

let handle_free t ~sender ~enclave ~vpn ~pages =
  let* e = get_enclave t enclave in
  let* () = check_identity ~sender ~target:enclave ~strict:false in
  if pages <= 0 then Types.Err (Types.Invalid_argument_ "bad page count")
  else begin
    let rec go i acc =
      if i = pages then Ok (List.rev acc)
      else
        match unmap_private_page t e ~vpn:(vpn + i) with
        | Ok frame -> go (i + 1) (frame :: acc)
        | Error e -> Error e
    in
    match go 0 [] with
    | Error err -> Types.Err err
    | Ok frames ->
      Mem_pool.give_back t.pool frames;
      Types.Ok_unit
  end

(* EWB (Sec. IV-A): serve reclamation from *unused pool frames*, in a
   randomized quantity, so the OS never learns which enclave pages
   are live. Pool frames are encrypted before leaving EMS custody
   (their zeroed contents must be indistinguishable from real data).
   If the pool cannot cover the request, evict real enclave pages:
   encrypt into the owner's swap store, invalidate the PTE, clear the
   bitmap bit, return the frame. *)
let handle_writeback t ~pages_hint =
  if pages_hint <= 0 || pages_hint > 4096 then
    Types.Err (Types.Invalid_argument_ "bad page hint")
  else begin
    let jitter = Hypertee_util.Xrng.int t.rng (1 + (pages_hint / 2)) in
    let want = pages_hint + jitter in
    let swap_key = Hypertee_crypto.Aes.expand (Keymgmt.swap_key t.keys) in
    let from_pool = Mem_pool.surrender t.pool ~n:want in
    let blobs =
      List.map
        (fun frame ->
          let content = Bytes.make Hypertee_util.Units.page_size '\000' in
          (frame, Hypertee_crypto.Aes.encrypt_page swap_key ~page_number:frame content))
        from_pool
    in
    let missing = want - List.length from_pool in
    let evicted =
      if missing <= 0 then []
      else begin
        (* Candidate victims: heap pages of live enclaves, chosen at
           random (Sec. IV-A point 3). *)
        let candidates =
          Hashtbl.fold
            (fun _ (e : Enclave.t) acc ->
              List.fold_left
                (fun acc vpn ->
                  match Page_table.lookup e.Enclave.page_table ~vpn with
                  | Some pte -> (e, vpn, pte) :: acc
                  | None -> acc)
                acc
                (List.init
                   (Stdlib.max 0 (e.Enclave.heap_cursor - e.Enclave.layout.Enclave.heap_base))
                   (fun i -> e.Enclave.layout.Enclave.heap_base + i)))
            t.enclaves []
          |> Array.of_list
        in
        Hypertee_util.Xrng.shuffle t.rng candidates;
        let n = Stdlib.min missing (Array.length candidates) in
        List.init n (fun i ->
            let e, vpn, pte = candidates.(i) in
            let frame = pte.Pte.ppn in
            (* Read ciphertext, decrypt under the enclave key, then
               re-encrypt under the swap key with vpn binding. *)
            let ct = Phys_mem.read t.mem ~frame in
            let pt = Mem_encryption.load t.mee ~key_id:pte.Pte.key_id ~frame ct in
            let blob = Hypertee_crypto.Aes.encrypt_page swap_key ~page_number:vpn pt in
            Hashtbl.replace e.Enclave.swapped_out vpn blob;
            Page_table.unmap e.Enclave.page_table ~vpn;
            Ownership.release t.ownership ~frame;
            Bitmap.clear t.bitmap ~frame;
            Phys_mem.zero t.mem ~frame;
            Phys_mem.set_owner t.mem frame Phys_mem.Free;
            (frame, Hypertee_crypto.Aes.encrypt_page swap_key ~page_number:frame pt))
      end
    in
    let all = blobs @ evicted in
    Types.Ok_writeback { frames = List.map fst all; blobs = all }
  end

let has_swapped_page t enclave ~vpn =
  match Hashtbl.find_opt t.enclaves enclave with
  | Some e -> Hashtbl.mem e.Enclave.swapped_out vpn
  | None -> false

let handle_page_fault t ~enclave ~vpn =
  let* e = get_enclave t enclave in
  match Hashtbl.find_opt e.Enclave.swapped_out vpn with
  | Some blob -> (
    (* Swap-in: restore the page from the encrypted blob. *)
    let* frames = take_pool_frames t ~n:1 in
    match frames with
    | [ frame ] ->
      let swap_key = Hypertee_crypto.Aes.expand (Keymgmt.swap_key t.keys) in
      let pt = Hypertee_crypto.Aes.decrypt_page swap_key ~page_number:vpn blob in
      (match map_private_page t e ~vpn ~frame ~r:true ~w:true ~x:false with
      | Error err -> Types.Err err
      | Ok () ->
        let ct = Mem_encryption.store t.mee ~key_id:e.Enclave.key_id ~frame pt in
        Phys_mem.write t.mem ~frame ct;
        Hashtbl.remove e.Enclave.swapped_out vpn;
        Types.Ok_alloc { base_vpn = vpn; pages = 1 })
    | _ -> Types.Err Types.Out_of_memory)
  | None ->
    (* Demand allocation within the growth region. *)
    if vpn >= e.Enclave.layout.Enclave.heap_base && vpn < e.Enclave.layout.Enclave.stack_base
    then begin
      let* frames = take_pool_frames t ~n:1 in
      match frames with
      | [ frame ] -> (
        match map_private_page t e ~vpn ~frame ~r:true ~w:true ~x:false with
        | Error err -> Types.Err err
        | Ok () ->
          if vpn >= e.Enclave.heap_cursor then e.Enclave.heap_cursor <- vpn + 1;
          Types.Ok_alloc { base_vpn = vpn; pages = 1 })
      | _ -> Types.Err Types.Out_of_memory
    end
    else Types.Err (Types.Invalid_argument_ "fault outside growable region")

let handle_shmget t ~sender ~owner ~pages ~max_perm =
  let* _e = get_enclave t owner in
  let* () = check_identity ~sender ~target:owner ~strict:true in
  if pages <= 0 || pages > 4096 then Types.Err (Types.Invalid_argument_ "bad page count")
  else begin
    match Mem_encryption.find_free_slot t.mee with
    | None -> Types.Err Types.Out_of_key_ids
    | Some key_id -> (
      let* frames = take_pool_frames t ~n:pages in
      let shm = t.next_shm_id in
      let claim_ok =
        List.for_all (fun frame -> Ownership.claim_shared t.ownership ~frame ~shm) frames
      in
      if not claim_ok then Types.Err (Types.Invalid_argument_ "frame already owned")
      else begin
        List.iter (fun frame -> Phys_mem.set_owner t.mem frame (Phys_mem.Shared shm)) frames;
        (* Dedicated key derived from initial sender + ShmID (Sec. V-A). *)
        let key = Keymgmt.shm_key t.keys ~owner ~shm_id:shm in
        Mem_encryption.program t.mee ~key_id key;
        List.iter (fun frame -> store_zero_page t ~key_id ~frame) frames;
        ignore (Shm.register t.shms ~shm ~owner ~frames ~key_id ~max_perm);
        t.next_shm_id <- shm + 1;
        Types.Ok_shm { shm }
      end)
  end

let handle_shmshr t ~sender ~owner ~shm ~grantee ~perm =
  let* _e = get_enclave t owner in
  let* () = check_identity ~sender ~target:owner ~strict:true in
  let* _g = get_enclave t grantee in
  (match Shm.grant t.shms ~shm ~caller:owner ~grantee ~perm with
  | Ok () -> Types.Ok_unit
  | Error err -> Types.Err err)

let handle_shmat t ~sender ~enclave ~shm ~requested_perm =
  let* e = get_enclave t enclave in
  let* () = check_identity ~sender ~target:enclave ~strict:true in
  match Shm.find t.shms shm with
  | None -> Types.Err Types.No_such_shm
  | Some region -> (
    let base_vpn = e.Enclave.shm_cursor in
    match Shm.attach t.shms ~shm ~enclave ~requested_perm ~base_vpn with
    | Error err -> Types.Err err
    | Ok granted ->
      let writable = granted = Types.Read_write in
      List.iteri
        (fun i frame ->
          ignore (Ownership.attach t.ownership ~frame ~enclave);
          Page_table.map e.Enclave.page_table ~vpn:(base_vpn + i)
            (Pte.leaf ~ppn:frame ~r:true ~w:writable ~x:false ~key_id:region.Shm.key_id))
        region.Shm.frames;
      let pages = List.length region.Shm.frames in
      e.Enclave.shm_cursor <- base_vpn + pages + 1;
      e.Enclave.attached_shms <- (shm, base_vpn) :: e.Enclave.attached_shms;
      Types.Ok_shmat { base_vpn; pages })

let handle_shmdt t ~sender ~enclave ~shm =
  let* e = get_enclave t enclave in
  let* () = check_identity ~sender ~target:enclave ~strict:true in
  match List.assoc_opt shm e.Enclave.attached_shms with
  | None -> Types.Err (Types.Invalid_argument_ "not attached")
  | Some base_vpn -> (
    match Shm.find t.shms shm with
    | None -> Types.Err Types.No_such_shm
    | Some region -> (
      match Shm.detach t.shms ~shm ~enclave with
      | Error err -> Types.Err err
      | Ok () ->
        List.iteri
          (fun i frame ->
            Ownership.detach t.ownership ~frame ~enclave;
            Page_table.unmap e.Enclave.page_table ~vpn:(base_vpn + i))
          region.Shm.frames;
        e.Enclave.attached_shms <- List.remove_assoc shm e.Enclave.attached_shms;
        Types.Ok_unit))

let handle_shmdes t ~sender ~owner ~shm =
  let* _e = get_enclave t owner in
  let* () = check_identity ~sender ~target:owner ~strict:true in
  match Shm.destroy t.shms ~shm ~caller:owner with
  | Error err -> Types.Err err
  | Ok region ->
    List.iter
      (fun frame ->
        Ownership.release t.ownership ~frame;
        Phys_mem.zero t.mem ~frame)
      region.Shm.frames;
    Mem_pool.give_back t.pool region.Shm.frames;
    Mem_encryption.revoke t.mee ~key_id:region.Shm.key_id;
    Types.Ok_unit

let handle_attest t ~sender ~enclave ~user_data =
  let* e = get_enclave t enclave in
  let* () = check_identity ~sender ~target:enclave ~strict:true in
  match e.Enclave.measurement with
  | None -> Types.Err (Types.Bad_state "enclave not measured")
  | Some m ->
    let quote =
      Attest.make_quote t.keys ~platform_measurement:t.platform_measurement
        ~enclave_measurement:m ~user_data
    in
    Types.Ok_attest { quote = Attest.quote_to_bytes quote }

let dispatch t ~sender request =
  match request with
  | Types.Create { config } -> handle_create t config
  | Types.Add { enclave; vpn; data; executable } ->
    handle_add t ~sender ~enclave ~vpn ~data ~executable
  | Types.Enter { enclave } -> handle_enter t ~enclave
  | Types.Resume { enclave } -> handle_resume t ~enclave
  | Types.Exit { enclave } -> handle_exit t ~sender ~enclave
  | Types.Destroy { enclave } -> handle_destroy t ~enclave
  | Types.Alloc { enclave; pages } -> handle_alloc t ~sender ~enclave ~pages
  | Types.Free { enclave; vpn; pages } -> handle_free t ~sender ~enclave ~vpn ~pages
  | Types.Writeback { pages_hint } -> handle_writeback t ~pages_hint
  | Types.Shmget { owner; pages; max_perm } -> handle_shmget t ~sender ~owner ~pages ~max_perm
  | Types.Shmat { enclave; shm; requested_perm } ->
    handle_shmat t ~sender ~enclave ~shm ~requested_perm
  | Types.Shmdt { enclave; shm } -> handle_shmdt t ~sender ~enclave ~shm
  | Types.Shmshr { owner; shm; grantee; perm } ->
    handle_shmshr t ~sender ~owner ~shm ~grantee ~perm
  | Types.Shmdes { owner; shm } -> handle_shmdes t ~sender ~owner ~shm
  | Types.Measure { enclave } -> handle_measure t ~enclave
  | Types.Attest { enclave; user_data } -> handle_attest t ~sender ~enclave ~user_data
  | Types.Page_fault { enclave; vpn } -> handle_page_fault t ~enclave ~vpn
  | Types.Interrupt { enclave; pc; cause } -> handle_interrupt t ~enclave ~pc ~cause


(* The enclave a request acts on, if any — the victim EMS terminates
   when serving the request trips a memory-integrity fault. *)
let enclave_of_request = function
  | Types.Create _ | Types.Writeback _ -> None
  | Types.Add { enclave; _ }
  | Types.Enter { enclave }
  | Types.Resume { enclave }
  | Types.Exit { enclave }
  | Types.Destroy { enclave }
  | Types.Alloc { enclave; _ }
  | Types.Free { enclave; _ }
  | Types.Shmat { enclave; _ }
  | Types.Shmdt { enclave; _ }
  | Types.Measure { enclave }
  | Types.Attest { enclave; _ }
  | Types.Page_fault { enclave; _ }
  | Types.Interrupt { enclave; _ } ->
    Some enclave
  | Types.Shmget { owner; _ } | Types.Shmshr { owner; _ } | Types.Shmdes { owner; _ } ->
    Some owner

(* Containment (Table I availability): a MAC failure while serving a
   primitive is a compromise of that enclave's memory, never of the
   platform. EMS terminates the affected enclave, records the event,
   and keeps serving everyone else. *)
let contain_integrity_fault t request ~frame =
  let victim =
    match enclave_of_request request with
    | Some _ as v -> v
    | None -> (
      (* The request names no enclave (e.g. EWB touching victim
         pages): the compromised memory still has an owner. *)
      match Ownership.lookup t.ownership ~frame with
      | Some (Ownership.Private id) -> Some id
      | Some (Ownership.Shared_page _) | None -> None)
  in
  (match victim with
  | Some id when Hashtbl.mem t.enclaves id ->
    (try ignore (handle_destroy t ~enclave:id) with _ -> Hashtbl.remove t.enclaves id)
  | _ -> ());
  Audit.record_fault t.audit ~site:"memory-integrity"
    ~detail:
      (Printf.sprintf "MAC mismatch at frame %d%s" frame
         (match victim with
         | Some id -> Printf.sprintf "; enclave %d terminated" id
         | None -> ""))
    ~recovered:false;
  Types.Err (Types.Integrity_failure { frame })

let handle t ~sender request =
  let opcode = Types.opcode_of_request request in
  count t opcode;
  let response =
    try dispatch t ~sender request with
    | Mem_encryption.Integrity_violation { frame } -> contain_integrity_fault t request ~frame
  in
  let outcome =
    match response with
    | Types.Err e -> Audit.Refused (Types.error_message e)
    | _ -> Audit.Served
  in
  Audit.record t.audit ~opcode ~sender ~outcome;
  response
