module Mem_encryption = Hypertee_arch.Mem_encryption

type recorder = sender:Types.enclave_id option -> Types.request -> Types.response -> unit

type t = {
  state : State.t;
  registry : Registry.t;
  mutable recorder : recorder option;
  mutable containment_recorder : (Types.enclave_id -> unit) option;
}

let build_registry () =
  let registry = Registry.create () in
  Svc_lifecycle.register registry;
  Svc_memory.register registry;
  Svc_shm.register registry;
  Svc_attest.register registry;
  Svc_channel.register registry;
  registry

let create ?first_enclave_id ?first_shm_id ?id_stride ?chans ~rng ~mem ~bitmap ~mee ~keys ~cost
    ~os_request ~os_return ~platform_measurement () =
  let state =
    State.create ?first_enclave_id ?first_shm_id ?id_stride ?chans ~rng ~mem ~bitmap ~mee ~keys
      ~cost ~os_request ~os_return ~platform_measurement ()
  in
  { state; registry = build_registry (); recorder = None; containment_recorder = None }

(* Journaling hooks (crash-consistent recovery): the platform points
   these at the shard's journal; [None] (the default) is a no-op. *)
let set_recorder t r = t.recorder <- Some r
let set_containment_recorder t r = t.containment_recorder <- Some r

(* Delegated lookups: the public surface is unchanged from the
   monolithic runtime. *)
let keys t = State.keys t.state
let pool t = State.pool t.state
let ownership t = State.ownership t.state
let platform_measurement t = State.platform_measurement t.state
let find_enclave t id = State.find_enclave t.state id
let find_shm t id = State.find_shm t.state id
let served t op = State.served t.state op
let live_enclaves t = State.live_enclaves t.state
let audit t = State.audit t.state
let service_ns t request = State.service_ns t.state request
let has_swapped_page t enclave ~vpn = State.has_swapped_page t.state enclave ~vpn
let shm_regions t = State.shm_regions t.state
let leaked_shm_frames t = State.leaked_shm_frames t.state
let shard t = t.state.State.shard
let id_stride t = t.state.State.id_stride
let state t = t.state
let services t = Registry.services t.registry
let service_of t opcode = Registry.service_of t.registry opcode

(* The enclave a request acts on, if any — the victim when serving
   the request trips a memory-integrity fault, and the affinity key
   the platform shards by. *)
let enclave_of_request = function
  | Types.Create _ | Types.Writeback _ -> None
  | Types.Add { enclave; _ }
  | Types.Enter { enclave }
  | Types.Resume { enclave }
  | Types.Exit { enclave }
  | Types.Destroy { enclave }
  | Types.Alloc { enclave; _ }
  | Types.Free { enclave; _ }
  | Types.Shmat { enclave; _ }
  | Types.Shmdt { enclave; _ }
  | Types.Measure { enclave }
  | Types.Attest { enclave; _ }
  | Types.Page_fault { enclave; _ }
  | Types.Interrupt { enclave; _ }
  | Types.Retire { enclave } ->
    Some enclave
  | Types.Shmget { owner; _ } | Types.Shmshr { owner; _ } | Types.Shmdes { owner; _ } ->
    Some owner
  | Types.Chan_open { listener } -> Some listener
  | Types.Chan_accept { enclave; _ } -> Some enclave
  (* Data-plane channel requests carry no enclave affinity: the gate
     routes them by the channel id's home-shard residue instead. *)
  | Types.Chan_send _ | Types.Chan_recv _ | Types.Chan_close _ -> None
  (* EWARM names no enclave up front — any shard's warm pool may hold
     a match, so it round-robins like Create. *)
  | Types.Warm_create _ -> None

(* Containment (Table I availability): a MAC failure while serving a
   primitive is a compromise of that enclave's memory, never of the
   platform. EMS terminates the affected enclave, records the event,
   and keeps serving everyone else. *)
let contain_integrity_fault t request ~frame =
  let state = t.state in
  let victim =
    match enclave_of_request request with
    | Some _ as v -> v
    | None -> (
      (* The request names no enclave (e.g. EWB touching victim
         pages): the compromised memory still has an owner. *)
      match Ownership.lookup state.State.ownership ~frame with
      | Some (Ownership.Private id) -> Some id
      | Some (Ownership.Shared_page _) | None -> None)
  in
  (match victim with
  | Some id when Hashtbl.mem state.State.enclaves id ->
    (try ignore (Svc_lifecycle.destroy state ~enclave:id)
     with _ -> Hashtbl.remove state.State.enclaves id);
    (* The faulted request will not re-fault against scrubbed
       post-recovery memory, so the termination is journaled as its
       own synthetic effect. *)
    Option.iter (fun f -> f id) t.containment_recorder
  | _ -> ());
  if Hypertee_obs.Trace.enabled () then
    Hypertee_obs.Trace.instant
      ~track:(Hypertee_obs.Trace.track_ems state.State.shard)
      ?enclave:victim ~cat:Hypertee_obs.Trace.Ems ~name:"ems:integrity-contained" ();
  Audit.record_fault state.State.audit ~site:"memory-integrity"
    ~detail:
      (Printf.sprintf "MAC mismatch at frame %d%s" frame
         (match victim with
         | Some id -> Printf.sprintf "; enclave %d terminated" id
         | None -> ""))
    ~recovered:false;
  Types.Err (Types.Integrity_failure { frame })

let handle t ~sender request =
  let opcode = Types.opcode_of_request request in
  State.count t.state opcode;
  let response =
    try Registry.dispatch t.registry t.state ~sender request with
    | Mem_encryption.Integrity_violation { frame } -> contain_integrity_fault t request ~frame
  in
  (* EMS-side view of the primitive: one span on this shard's track,
     as long as the modelled service time. The CS-side gate records
     its own decomposition of the same round trip. *)
  if Hypertee_obs.Trace.enabled () then begin
    let module Trace = Hypertee_obs.Trace in
    ignore
      (Trace.emit
         ~track:(Trace.track_ems t.state.State.shard)
         ?enclave:(enclave_of_request request)
         ~opcode:(Types.opcode_name opcode) ~cat:Trace.Ems
         ~name:("EMS:" ^ Types.opcode_name opcode)
         ~start_ns:(Trace.global_now ())
         ~dur_ns:(State.service_ns t.state request) ())
  end;
  let outcome =
    match response with
    | Types.Err e -> Audit.Refused (Types.error_message e)
    | _ -> Audit.Served
  in
  Audit.record (State.audit t.state) ~opcode ~sender ~outcome;
  Option.iter (fun f -> f ~sender request response) t.recorder;
  response

let publish_metrics t ~prefix registry =
  let module M = Hypertee_obs.Metrics in
  List.iter
    (fun op ->
      let n = served t op in
      if n > 0 then
        M.set_counter
          (M.counter registry ~help:"primitives served"
             (prefix ^ "served." ^ Types.opcode_name op))
          n)
    Types.all_opcodes;
  M.set_counter
    (M.counter registry ~help:"live enclaves" (prefix ^ "live_enclaves"))
    (List.length (live_enclaves t))
