(** The EMS Runtime: a thin dispatch shell over the primitive
    service registry.

    The EMS-private state — control structures, the enclave memory
    pool, the page-ownership table, shared-memory control
    structures, root keys — lives in [State.t]; the service routine
    behind each Table II primitive lives in one of the per-domain
    service modules ([Svc_lifecycle], [Svc_memory], [Svc_shm],
    [Svc_attest], [Svc_channel]), registered in a [Registry.t] keyed
    by opcode.
    [handle] is what an EMS worker core runs for one request packet:
    count, look the service up, invoke it with the shared state,
    contain integrity faults, record the outcome in the audit log.

    Every handler follows the paper's discipline: sanity-check the
    arguments (Sec. III-B, mechanism 3), check the caller's identity
    against the control structures, perform the state change, then
    flush management data so CS observes a consistent view. *)

type t

(** [create ()] builds a runtime with all five services registered.

    The optional id parameters support platform sharding: shard [s]
    of [n] runs with [first_enclave_id = s+1], [first_shm_id = s+1]
    and [id_stride = n], so each shard assigns ids from a disjoint
    residue class and [(id-1) mod n] recovers the owning shard. The
    defaults (1, 1, 1) are the single-shard behaviour. [chans] is
    the platform-shared secure-channel fabric; every shard of one
    platform must be handed the same value. *)
val create :
  ?first_enclave_id:int ->
  ?first_shm_id:int ->
  ?id_stride:int ->
  ?chans:Chan.t ->
  rng:Hypertee_util.Xrng.t ->
  mem:Hypertee_arch.Phys_mem.t ->
  bitmap:Hypertee_arch.Bitmap.t ->
  mee:Hypertee_arch.Mem_encryption.t ->
  keys:Keymgmt.t ->
  cost:Cost.t ->
  os_request:(n:int -> int list) ->
  os_return:(frames:int list -> unit) ->
  platform_measurement:bytes ->
  unit ->
  t

(** [handle t ~sender request] runs one primitive. [sender] is the
    enclaveID EMCall stamped on the packet ([None] = host software);
    handlers that act on an enclave's own resources verify it. *)
val handle : t -> sender:Types.enclave_id option -> Types.request -> Types.response

(** Journaling hook ({!Journal}): called once per [handle] with the
    request and the response it produced, after audit recording. The
    platform points this at the shard's operation journal. *)
type recorder = sender:Types.enclave_id option -> Types.request -> Types.response -> unit

val set_recorder : t -> recorder -> unit

(** Called with the victim id when integrity containment terminates
    an enclave mid-request — the journal records it as a synthetic
    destroy, since the faulted request would not re-fault on
    replay. *)
val set_containment_recorder : t -> (Types.enclave_id -> unit) -> unit

(** Service-time model for the request (timing layer). *)
val service_ns : t -> Types.request -> float

(** Lookups used by the platform layer and tests. *)
val find_enclave : t -> Types.enclave_id -> Enclave.t option

(** Shared-memory region by id, if live. *)
val find_shm : t -> Types.shm_id -> Shm.region option

(** The key-management service (root, sealing and attestation keys). *)
val keys : t -> Keymgmt.t

(** The EMS-managed enclave memory pool. *)
val pool : t -> Mem_pool.t

(** The page-ownership table. *)
val ownership : t -> Ownership.t

(** Measurement of the EMS firmware itself, bound into quotes. *)
val platform_measurement : t -> bytes

(** The EMS-private audit log of served/refused primitives. *)
val audit : t -> Audit.t

(** Ids of enclaves not yet destroyed. *)
val live_enclaves : t -> Types.enclave_id list

(** Per-opcode served counters (telemetry / tests). *)
val served : t -> Types.opcode -> int

(** Swap-in support: does the enclave have an EWB-evicted page at
    [vpn]? (EMCall routes such faults to EMS.) *)
val has_swapped_page : t -> Types.enclave_id -> vpn:int -> bool

(** Every live shared-memory region of this shard. *)
val shm_regions : t -> Shm.region list

(** Frames stuck in orphaned shared regions (dead owner, nobody
    attached) — the shm leak gauge; the invariant checker asserts it
    is zero. *)
val leaked_shm_frames : t -> int

(** This runtime's shard index and id stride (residue-class
    identity: live ids satisfy [(id - 1) mod id_stride = shard]). *)
val shard : t -> int

val id_stride : t -> int

(** The full EMS-private state, exposed for the invariant checker
    ({!Hypertee_check.Invariant}), which audits it read-only against
    the architectural ground truth. Production consumers use the
    accessors above. *)
val state : t -> State.t

(** Registry introspection (telemetry / tests). *)
val services : t -> string list

(** Name of the service registered for the opcode, if any. *)
val service_of : t -> Types.opcode -> string option

(** The enclave a request acts on, if any — the integrity-fault
    victim, and the affinity key the platform shards by. *)
val enclave_of_request : Types.request -> Types.enclave_id option

(** Snapshot per-opcode served counters and the live-enclave count
    into a metrics registry, each name prefixed with [prefix] (e.g.
    ["shard0.ems."]). Only opcodes served at least once appear. *)
val publish_metrics : t -> prefix:string -> Hypertee_obs.Metrics.t -> unit
