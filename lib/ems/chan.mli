(** Platform-shared secure-channel fabric (docs/PROTOCOL.md §2).

    The control-plane state behind the five [ECH*] primitives: one
    table of channel control blocks — endpoints, the 16-byte binding
    secret, and a bounded segment queue per direction — shared by
    every EMS shard under a mutex, so a channel's two endpoints can
    live on different shards and the fabric is the cross-shard
    transport. Channel ids follow the same residue discipline as
    enclave ids (shard [s] mints [s+1], [s+1+N], …), so
    [(chan-1) mod N] names the home shard and the EMCall gate routes
    data-plane requests arithmetically.

    Channels are deliberately {e ephemeral} control state: they are
    excluded from the shard journal (a recovered shard cannot replay
    session traffic it never recorded), and {!drop_home} /
    {!drop_for_enclave} reap every channel a crash or EDESTROY
    orphans — the invariant checker's "chan-orphan" rule holds the
    fabric to that.

    The fault injector hooks the queue-push path ([Chan_corrupt],
    [Chan_truncate], [Chan_reorder]); the record layer above must
    convert each into a detected failure (fail closed). *)

(** A channel endpoint: the un-attested host side of the EMCall
    gate, or an enclave. *)
type endpoint = Host | Enclave of Types.enclave_id

(** Map a primitive's sender identity to an endpoint. *)
val endpoint_of_sender : Types.enclave_id option -> endpoint

type t

(** Per-direction queued-segment cap; a full queue refuses sends. *)
val queue_cap : int

(** [create ~shards] — an empty fabric for an [shards]-way platform.
    @raise Invalid_argument if [shards < 1]. *)
val create : shards:int -> t

(** Install (or remove) the fault injector consulted on every queue
    push. *)
val set_injector : t -> Hypertee_faults.Fault.t option -> unit

(** The home shard encoded in a channel id: [(chan-1) mod shards]. *)
val home_of : t -> int -> int

(** [open_ t ~shard ~listener ~initiator ~binding_of] mints a channel
    homed on [shard], derives its binding via [binding_of chan]
    (Keymgmt) and returns [(chan, binding)]. *)
val open_ :
  t ->
  shard:int ->
  listener:Types.enclave_id ->
  initiator:endpoint ->
  binding_of:(int -> bytes) ->
  int * bytes

(** [accept t ~chan ~enclave] — the listening enclave claims the
    pending channel and learns the binding. Rejected when [enclave]
    is not the listener or the channel was already accepted. *)
val accept : t -> chan:int -> enclave:Types.enclave_id -> (bytes, Types.error) result

(** [send t ~chan ~sender ~seg] queues one 1–1024-byte segment toward
    the peer; refused when [sender] is not an endpoint or the queue
    is full. Fault-injection sites fire here. *)
val send : t -> chan:int -> sender:endpoint -> seg:bytes -> (unit, Types.error) result

(** [recv t ~chan ~sender] dequeues the oldest segment addressed to
    [sender], or [None] when the peer has queued nothing. *)
val recv : t -> chan:int -> sender:endpoint -> (bytes option, Types.error) result

(** [close t ~chan ~sender] wipes the binding, drops queued segments
    and removes the entry. Either endpoint may close. *)
val close : t -> chan:int -> sender:endpoint -> (unit, Types.error) result

(** Reap every channel that names enclave [id] as an endpoint
    (EDESTROY, integrity containment). Returns how many died. *)
val drop_for_enclave : t -> Types.enclave_id -> int

(** Reap every channel homed on [home] (shard crash recovery).
    Returns how many died. *)
val drop_home : t -> home:int -> int

(** Read-only view of one control block, for the invariant checker. *)
type view = {
  v_chan : int;
  v_home : int;
  v_listener : Types.enclave_id;
  v_initiator : endpoint;
  v_accepted : bool;
  v_queued : int;
  v_binding_live : bool;
      (** the binding secret is not all-zero — a live entry whose
          binding was wiped (or never derived) is a fabric bug *)
}

(** All live control blocks, sorted by channel id. *)
val snapshot : t -> view list

(** Live channel count. *)
val live : t -> int

(** The shard count the fabric was created for. *)
val shards : t -> int

(** Counters under [chan.*]. *)
val publish_metrics : t -> Hypertee_obs.Metrics.t -> unit
