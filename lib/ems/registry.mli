(** Typed primitive-dispatch registry.

    Each EMS service module ([Svc_lifecycle], [Svc_memory],
    [Svc_shm], [Svc_attest]) registers a handler for the Table II
    opcodes in its domain; [Runtime.handle] looks the handler up by
    the request's opcode and invokes it with the shared [State.t].
    Registration is exclusive: binding an opcode twice is a
    programming error and raises. *)

type handler = State.t -> sender:Types.enclave_id option -> Types.request -> Types.response

type t

(** An empty registry. *)
val create : unit -> t

(** [register t ~service ~opcodes handler] binds [handler] to every
    opcode in [opcodes] on behalf of [service].
    @raise Invalid_argument if any opcode is already bound. *)
val register : t -> service:string -> opcodes:Types.opcode list -> handler -> unit

(** The handler bound to an opcode, if any. *)
val find : t -> Types.opcode -> handler option

(** Name of the service a given opcode is bound to, if any. *)
val service_of : t -> Types.opcode -> string option

(** Distinct registered service names, sorted. *)
val services : t -> string list

(** All bound opcodes, sorted. *)
val opcodes : t -> Types.opcode list

(** Route one request to its service handler; an unbound opcode is
    refused, never a crash. *)
val dispatch : t -> State.t -> sender:Types.enclave_id option -> Types.request -> Types.response
