(** Memory service: dynamic enclave memory management.

    Serves EALLOC (both explicit allocation and the page-fault path
    that shares its opcode: demand paging and EWB swap-in), EFREE,
    and EWB reclamation. *)

(** Registry name of this service. *)
val name : string

(** The Table II opcodes this service claims. *)
val opcodes : Types.opcode list

(** The service routine (dispatched through {!Registry}). *)
val handle : Registry.handler

(** Register {!handle} for each of {!opcodes}. *)
val register : Registry.t -> unit
