(** Memory service: dynamic enclave memory management.

    Serves EALLOC (both explicit allocation and the page-fault path
    that shares its opcode: demand paging and EWB swap-in), EFREE,
    and EWB reclamation. *)

val name : string
val opcodes : Types.opcode list
val handle : Registry.handler
val register : Registry.t -> unit
