(** Shared EMS runtime state, passed explicitly to every primitive
    service module.

    This is the record that used to live inside [Runtime]: control
    structures, the enclave memory pool, the page-ownership table,
    shared-memory control structures, root keys, the audit log. The
    service modules ([Svc_lifecycle], [Svc_memory], [Svc_shm],
    [Svc_attest]) receive it explicitly — there is no global.

    The record is exposed (not abstract) because the service modules
    are the implementation of the EMS and manipulate the state
    directly; external consumers go through [Runtime], whose type
    stays abstract. *)

type t = {
  rng : Hypertee_util.Xrng.t;
  mem : Hypertee_arch.Phys_mem.t;
  bitmap : Hypertee_arch.Bitmap.t;
  mee : Hypertee_arch.Mem_encryption.t;
  keys : Keymgmt.t;
  cost : Cost.t;
  pool : Mem_pool.t;
  ownership : Ownership.t;
  shms : Shm.t;
  enclaves : (Types.enclave_id, Enclave.t) Hashtbl.t;
  audit : Audit.t;
  platform_measurement : bytes;
  served : (Types.opcode, int) Hashtbl.t;
  os_request : n:int -> int list;
  os_return : frames:int list -> unit;
  id_stride : int;
      (** Distance between consecutive ids this shard assigns; with N
          shards, shard [s] uses [first_*_id = s+1] and stride [N] so
          id ranges never collide and [(id-1) mod N] recovers the
          shard — the affinity function the EMCall gate routes by. *)
  shard : int;
      (** This runtime's shard index, recovered from
          [first_enclave_id] and [id_stride]; 0 for a single-shard
          platform. Tags the tracer's EMS-side spans. *)
  adopted : (Types.enclave_id, unit) Hashtbl.t;
      (** Ids restored here by migration although their residue class
          belongs to another shard ({!Svc_migrate}); exempt from the
          residue invariant and routed to this shard by a gate
          override the platform maintains. *)
  chans : Chan.t;
      (** Secure-channel fabric, {e shared across every shard} of a
          platform (the cross-shard transport); each shard mints
          channel ids from its own residue class. *)
  mutable next_enclave_id : int;
  mutable next_shm_id : int;
  mutable warm : Types.enclave_id list;
      (** Warm pool: ids of [Parked] enclaves on this shard, oldest
          first (FIFO). Bounded by {!warm_capacity}; every id here
          must be resident and Parked, and every Parked enclave must
          be listed — the invariant checker asserts both. *)
}

(** Warm-pool capacity per shard; ERETIRE beyond it destroys. *)
val warm_capacity : int

(** Build the shared state; the id parameters are those of
    {!Runtime.create} (platform sharding). [chans] is the platform's
    shared channel fabric — every shard of one platform must receive
    the same value (defaults to a fresh fabric sized by
    [id_stride]). *)
val create :
  ?first_enclave_id:int ->
  ?first_shm_id:int ->
  ?id_stride:int ->
  ?chans:Chan.t ->
  rng:Hypertee_util.Xrng.t ->
  mem:Hypertee_arch.Phys_mem.t ->
  bitmap:Hypertee_arch.Bitmap.t ->
  mee:Hypertee_arch.Mem_encryption.t ->
  keys:Keymgmt.t ->
  cost:Cost.t ->
  os_request:(n:int -> int list) ->
  os_return:(frames:int list -> unit) ->
  platform_measurement:bytes ->
  unit ->
  t

(** Lookups shared by [Runtime] and the platform layer. *)

(** The key-management service. *)
val keys : t -> Keymgmt.t

(** The enclave memory pool. *)
val pool : t -> Mem_pool.t

(** The page-ownership table. *)
val ownership : t -> Ownership.t

(** Measurement of the EMS firmware itself. *)
val platform_measurement : t -> bytes

(** Enclave control structure by id, if live. *)
val find_enclave : t -> Types.enclave_id -> Enclave.t option

(** Shared-memory region by id, if live. *)
val find_shm : t -> Types.shm_id -> Shm.region option

(** Times the opcode has been recorded via {!count}. *)
val served : t -> Types.opcode -> int

(** Ids of enclaves not yet destroyed. *)
val live_enclaves : t -> Types.enclave_id list

(** The EMS-private audit log. *)
val audit : t -> Audit.t

(** Service-time model for the request (timing layer). *)
val service_ns : t -> Types.request -> float

(** Record one served instance of the opcode. *)
val count : t -> Types.opcode -> unit

(** Does the enclave have an EWB-evicted page at [vpn]? *)
val has_swapped_page : t -> Types.enclave_id -> vpn:int -> bool

(** Migration adoption bookkeeping (see the [adopted] field). *)

val mark_adopted : t -> Types.enclave_id -> unit
val is_adopted : t -> Types.enclave_id -> bool
val clear_adopted : t -> Types.enclave_id -> unit

(** Adopted ids still hosted here, ascending. *)
val adopted_ids : t -> Types.enclave_id list

(** Helpers shared by the service modules. *)

(** Handler idiom: early-return [Err e] on [Error e]. *)
val ( let* ) : ('a, Types.error) result -> ('a -> Types.response) -> Types.response

(** Enclave by id, or [Error No_such_enclave]. Parked (warm-pool)
    enclaves are invisible here: only EWARM and EDESTROY reach them,
    through {!warm_pop_matching} and a direct table lookup. *)
val get_enclave : t -> Types.enclave_id -> (Enclave.t, Types.error) result

(** Sec. III-B identity check: a packet stamped with an enclave id
    must name the enclave it acts on; [strict] additionally rejects
    unstamped (host-software) senders. *)
val check_identity :
  sender:Types.enclave_id option -> target:Types.enclave_id -> strict:bool ->
  (unit, Types.error) result

(** Take [n] free frames from the pool, or [Error Out_of_memory]. *)
val take_pool_frames : t -> n:int -> (int list, Types.error) result

(** Write an encrypted all-zero page into [frame] under [key_id]. *)
val store_zero_page : t -> key_id:int -> frame:int -> unit

(** Map [vpn] to [frame] in the enclave's table and record
    ownership. *)
val map_private_page :
  t -> Enclave.t -> vpn:int -> frame:int -> r:bool -> w:bool -> x:bool ->
  (unit, Types.error) result

(** Unmap [vpn], returning the freed frame. *)
val unmap_private_page : t -> Enclave.t -> vpn:int -> (int, Types.error) result

(** The enclave's mapped private leaves [(vpn, pte)] — entries under
    its own KeyID (excludes staging and attached shared pages). *)
val private_leaves : Enclave.t -> (int * Hypertee_arch.Pte.t) list

(** KeyID pressure (Sec. IV-C): parking and revival. *)

(** A free MEE KeyID — parking a victim enclave's key when the
    slots are exhausted ([except] is never chosen as victim);
    [None] if no slot can be freed. *)
val allocate_key_id : t -> except:Types.enclave_id -> int option

(** Re-assign a KeyID to an enclave whose key was parked. *)
val revive_key : t -> Enclave.t -> (unit, Types.error) result

(** Extend the enclave's build measurement with page [vpn]'s
    contents. *)
val measurement_update : Enclave.t -> vpn:int -> bytes -> unit

(** Unmap a detached shared region's pages from the enclave. *)
val detach_shm_frames : t -> Enclave.t -> Types.shm_id -> unit

(** Every live shared-memory region (invariant checker sweep). *)
val shm_regions : t -> Shm.region list

(** Frames held by regions whose owner is destroyed and that no one
    is attached to — unreachable through ESHMDES, i.e. leaked. The
    invariant checker asserts this is zero; {!reap_orphaned_shms}
    keeps it so. *)
val leaked_shm_frames : t -> int

(** Reclaim every orphaned region (dead owner, zero attachments):
    release ownership records, zero and return the frames to the
    pool, revoke the region key. Returns the number of regions
    reaped. EDESTROY and ESHMDT run this after their own teardown. *)
val reap_orphaned_shms : t -> int

(** Warm pool (ERETIRE / EWARM). *)

(** Parked ids, oldest first. *)
val warm_ids : t -> Types.enclave_id list

(** Current warm-pool occupancy. *)
val warm_count : t -> int

(** Can another enclave be parked without exceeding capacity? *)
val warm_has_room : t -> bool

(** Append a freshly parked id (caller set the state to Parked). *)
val warm_push : t -> Types.enclave_id -> unit

(** Drop an id from the warm list (EDESTROY of a parked enclave). *)
val warm_remove : t -> Types.enclave_id -> unit

(** Pop the oldest parked enclave whose measurement is byte-equal to
    [measurement]; the caller revives it. [None] on no match. *)
val warm_pop_matching : t -> measurement:bytes -> Enclave.t option
