(** Shared EMS runtime state, passed explicitly to every primitive
    service module.

    This is the record that used to live inside [Runtime]: control
    structures, the enclave memory pool, the page-ownership table,
    shared-memory control structures, root keys, the audit log. The
    service modules ([Svc_lifecycle], [Svc_memory], [Svc_shm],
    [Svc_attest]) receive it explicitly — there is no global.

    The record is exposed (not abstract) because the service modules
    are the implementation of the EMS and manipulate the state
    directly; external consumers go through [Runtime], whose type
    stays abstract. *)

type t = {
  rng : Hypertee_util.Xrng.t;
  mem : Hypertee_arch.Phys_mem.t;
  bitmap : Hypertee_arch.Bitmap.t;
  mee : Hypertee_arch.Mem_encryption.t;
  keys : Keymgmt.t;
  cost : Cost.t;
  pool : Mem_pool.t;
  ownership : Ownership.t;
  shms : Shm.t;
  enclaves : (Types.enclave_id, Enclave.t) Hashtbl.t;
  audit : Audit.t;
  platform_measurement : bytes;
  served : (Types.opcode, int) Hashtbl.t;
  os_request : n:int -> int list;
  os_return : frames:int list -> unit;
  id_stride : int;
      (** Distance between consecutive ids this shard assigns; with N
          shards, shard [s] uses [first_*_id = s+1] and stride [N] so
          id ranges never collide and [(id-1) mod N] recovers the
          shard — the affinity function the EMCall gate routes by. *)
  mutable next_enclave_id : int;
  mutable next_shm_id : int;
}

val create :
  ?first_enclave_id:int ->
  ?first_shm_id:int ->
  ?id_stride:int ->
  rng:Hypertee_util.Xrng.t ->
  mem:Hypertee_arch.Phys_mem.t ->
  bitmap:Hypertee_arch.Bitmap.t ->
  mee:Hypertee_arch.Mem_encryption.t ->
  keys:Keymgmt.t ->
  cost:Cost.t ->
  os_request:(n:int -> int list) ->
  os_return:(frames:int list -> unit) ->
  platform_measurement:bytes ->
  unit ->
  t

(** Lookups shared by [Runtime] and the platform layer. *)

val keys : t -> Keymgmt.t
val pool : t -> Mem_pool.t
val ownership : t -> Ownership.t
val platform_measurement : t -> bytes
val find_enclave : t -> Types.enclave_id -> Enclave.t option
val find_shm : t -> Types.shm_id -> Shm.region option
val served : t -> Types.opcode -> int
val live_enclaves : t -> Types.enclave_id list
val audit : t -> Audit.t
val service_ns : t -> Types.request -> float
val count : t -> Types.opcode -> unit
val has_swapped_page : t -> Types.enclave_id -> vpn:int -> bool

(** Helpers shared by the service modules. *)

val ( let* ) : ('a, Types.error) result -> ('a -> Types.response) -> Types.response
val get_enclave : t -> Types.enclave_id -> (Enclave.t, Types.error) result

val check_identity :
  sender:Types.enclave_id option -> target:Types.enclave_id -> strict:bool ->
  (unit, Types.error) result

val take_pool_frames : t -> n:int -> (int list, Types.error) result
val store_zero_page : t -> key_id:int -> frame:int -> unit

val map_private_page :
  t -> Enclave.t -> vpn:int -> frame:int -> r:bool -> w:bool -> x:bool ->
  (unit, Types.error) result

val unmap_private_page : t -> Enclave.t -> vpn:int -> (int, Types.error) result

(** KeyID pressure (Sec. IV-C): parking and revival. *)

val allocate_key_id : t -> except:Types.enclave_id -> int option
val revive_key : t -> Enclave.t -> (unit, Types.error) result
val measurement_update : Enclave.t -> vpn:int -> bytes -> unit
val detach_shm_frames : t -> Enclave.t -> Types.shm_id -> unit
