(** Shared vocabulary of the enclave-management interface.

    Defines the 16 enclave primitives of paper Table II with their
    privilege requirements, the request/response payloads carried
    through the mailbox, and the error space EMS can report. Both
    EMCall (CS side) and the EMS runtime depend on these types — they
    are the wire format of the decoupled architecture. *)

type enclave_id = int
type shm_id = int

(** Access permission on shared memory. *)
type perm = Read_only | Read_write

(** Who may invoke a primitive (Table II "Priv." column). *)
type privilege = Os | User

(** The primitive opcodes of Table II, extended with the five secure-
    channel primitives ([ECH*]) this reproduction adds for attested
    session transport (docs/PROTOCOL.md §2) and the warm-pool pair
    ([ERETIRE]/[EWARM]) for enclave-as-a-service churn. *)
type opcode =
  | ECREATE
  | EADD
  | EENTER
  | ERESUME
  | EEXIT
  | EDESTROY
  | EALLOC
  | EFREE
  | EWB
  | ESHMGET
  | ESHMAT
  | ESHMDT
  | ESHMSHR
  | ESHMDES
  | EMEAS
  | EATTEST
  | ECHOPEN
  | ECHACC
  | ECHSEND
  | ECHRECV
  | ECHCLOSE
  | ERETIRE
  | EWARM

(** Every opcode, in Table II order (channel primitives last). *)
val all_opcodes : opcode list

(** Mnemonic, e.g. ["EALLOC"]. *)
val opcode_name : opcode -> string

(** Table II "Priv." column. *)
val required_privilege : opcode -> privilege

(** One-line description of the primitive (Table II). *)
val opcode_semantics : opcode -> string

(** Static resource declaration from the enclave's configuration file
    (Sec. III-B: heap/stack sizes etc. declared before compilation). *)
type enclave_config = {
  code_pages : int;
  data_pages : int;
  heap_pages : int;
  stack_pages : int;
  shared_pages : int;  (** HostApp <-> enclave staging region *)
}

(** Small static layout used by tests and synthetic workloads. *)
val default_config : enclave_config

(** Pages ECREATE reserves up front for this configuration. *)
val total_static_pages : enclave_config -> int

(** Request payloads. The [enclave_id] argument EMCall stamps on each
    packet travels in the mailbox envelope, not here. *)
type request =
  | Create of { config : enclave_config }
  | Add of { enclave : enclave_id; vpn : int; data : bytes; executable : bool }
  | Enter of { enclave : enclave_id }
  | Resume of { enclave : enclave_id }
  | Exit of { enclave : enclave_id }
  | Destroy of { enclave : enclave_id }
  | Alloc of { enclave : enclave_id; pages : int }
  | Free of { enclave : enclave_id; vpn : int; pages : int }
  | Writeback of { pages_hint : int }  (** CS OS asks for frames to reclaim *)
  | Shmget of { owner : enclave_id; pages : int; max_perm : perm }
  | Shmat of { enclave : enclave_id; shm : shm_id; requested_perm : perm }
  | Shmdt of { enclave : enclave_id; shm : shm_id }
  | Shmshr of { owner : enclave_id; shm : shm_id; grantee : enclave_id; perm : perm }
  | Shmdes of { owner : enclave_id; shm : shm_id }
  | Measure of { enclave : enclave_id }
  | Attest of { enclave : enclave_id; user_data : bytes }
  | Page_fault of { enclave : enclave_id; vpn : int }
      (** forwarded by EMCall when an enclave faults (Sec. III-B) *)
  | Interrupt of { enclave : enclave_id; pc : int; cause : int }
      (** EMCall reports an interrupt/exception during enclave
          execution: EMS saves the context into the ECS and parks the
          enclave in Interrupted state until ERESUME (Sec. III-B) *)
  | Chan_open of { listener : enclave_id }
      (** mint a channel toward [listener]; routed to the listener's
          shard, which becomes the channel's home
          (docs/PROTOCOL.md §2.1) *)
  | Chan_accept of { enclave : enclave_id; chan : int }
      (** the listening enclave claims a pending channel and learns
          its binding secret (§2.2) *)
  | Chan_send of { chan : int; seg : bytes }
      (** queue one transport segment (≤ §3 segment budget) toward
          the peer endpoint *)
  | Chan_recv of { chan : int }  (** dequeue the next segment queued for the caller, if any *)
  | Chan_close of { chan : int }
      (** tear the channel down: wipe the binding and drop queued
          segments (§2.4) *)
  | Retire of { enclave : enclave_id }
      (** park a Measured, shm-free enclave in the shard's warm pool:
          EMS re-derives the measurement from the resident pages and
          only parks on an exact match, else destroys *)
  | Warm_create of { measurement : bytes }
      (** pop a parked enclave whose measurement matches, skipping
          ECREATE/EADD*/EMEAS; [Err Bad_state] when the shard has no
          match (callers fall back to a cold create) *)

(** The Table II opcode a request is charged to. *)
val opcode_of_request : request -> opcode

type error =
  | No_such_enclave
  | No_such_shm
  | Bad_state of string  (** life-cycle violation, e.g. EADD after EENTER *)
  | Out_of_memory
  | Out_of_key_ids
  | Permission_denied of string
  | Not_registered  (** ESHMAT without a legal-connection entry *)
  | Invalid_argument_ of string  (** failed the EMS sanity check *)
  | Integrity_failure of { frame : int }
      (** the memory-encryption MAC caught tampering (or an injected
          bit flip); EMS terminated the affected enclave *)
  | No_such_channel  (** unknown, closed, or already-reaped channel id *)

(** [warm_home ~shards measurement] — the shard whose warm pool may
    hold parked enclaves of this measurement. The EMCall gate routes
    EWARM by it and ERETIRE parks only on it, so pool placement and
    lookup agree; ids and routing overrides play no part. Total (a
    short or malformed measurement maps to shard 0). *)
val warm_home : shards:int -> bytes -> int

(** Human-readable error text for reports and logs. *)
val error_message : error -> string

(** Response payloads, matched to requests by mailbox request id. *)
type response =
  | Ok_unit
  | Ok_created of { enclave : enclave_id }
  | Ok_entered of { enclave : enclave_id }
  | Ok_alloc of { base_vpn : int; pages : int }
  | Ok_writeback of { frames : int list; blobs : (int * bytes) list }
      (** frames handed back to CS OS and their encrypted contents *)
  | Ok_shm of { shm : shm_id }
  | Ok_shmat of { base_vpn : int; pages : int }
  | Ok_measure of { measurement : bytes }
  | Ok_attest of { quote : bytes }
  | Ok_chan of { chan : int; binding : bytes }
      (** channel id plus the 16-byte EMS binding secret both
          endpoints mix into the session key schedule
          (docs/PROTOCOL.md §4.1) *)
  | Ok_seg of { seg : bytes option }
      (** [None] when the peer has queued nothing (poll again) *)
  | Err of error

(** Formatters (also backing the Alcotest testables). *)
val pp_opcode : Format.formatter -> opcode -> unit
val pp_error : Format.formatter -> error -> unit
