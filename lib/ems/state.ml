module Phys_mem = Hypertee_arch.Phys_mem
module Bitmap = Hypertee_arch.Bitmap
module Mem_encryption = Hypertee_arch.Mem_encryption
module Page_table = Hypertee_arch.Page_table
module Pte = Hypertee_arch.Pte

type t = {
  rng : Hypertee_util.Xrng.t;
  mem : Phys_mem.t;
  bitmap : Bitmap.t;
  mee : Mem_encryption.t;
  keys : Keymgmt.t;
  cost : Cost.t;
  pool : Mem_pool.t;
  ownership : Ownership.t;
  shms : Shm.t;
  enclaves : (Types.enclave_id, Enclave.t) Hashtbl.t;
  audit : Audit.t;
  platform_measurement : bytes;
  served : (Types.opcode, int) Hashtbl.t;
  os_request : n:int -> int list;
  os_return : frames:int list -> unit;
  id_stride : int;
  shard : int;
  adopted : (Types.enclave_id, unit) Hashtbl.t;
  chans : Chan.t;
  mutable next_enclave_id : int;
  mutable next_shm_id : int;
  mutable warm : Types.enclave_id list;
}

(* Warm-pool capacity per shard: beyond this, ERETIRE destroys
   instead of parking, so churn cannot pin unbounded memory. *)
let warm_capacity = 8

let create ?(first_enclave_id = 1) ?(first_shm_id = 1) ?(id_stride = 1) ?chans ~rng ~mem ~bitmap
    ~mee ~keys ~cost ~os_request ~os_return ~platform_measurement () =
  if id_stride < 1 then invalid_arg "State.create: id_stride must be >= 1";
  let pool_rng = Hypertee_util.Xrng.split rng in
  let pool =
    Mem_pool.create pool_rng ~mem ~bitmap ~os_request ~os_return ~initial_frames:128
  in
  {
    rng;
    mem;
    bitmap;
    mee;
    keys;
    cost;
    pool;
    ownership = Ownership.create ();
    shms = Shm.create ();
    enclaves = Hashtbl.create 16;
    audit = Audit.create ();
    platform_measurement;
    served = Hashtbl.create 16;
    os_request;
    os_return;
    id_stride;
    shard = (first_enclave_id - 1) mod max 1 id_stride;
    adopted = Hashtbl.create 4;
    chans = (match chans with Some c -> c | None -> Chan.create ~shards:(max 1 id_stride));
    next_enclave_id = first_enclave_id;
    next_shm_id = first_shm_id;
    warm = [];
  }

let keys t = t.keys
let pool t = t.pool
let ownership t = t.ownership
let platform_measurement t = t.platform_measurement
let find_enclave t id = Hashtbl.find_opt t.enclaves id
let find_shm t id = Shm.find t.shms id
let served t op = Option.value ~default:0 (Hashtbl.find_opt t.served op)
let live_enclaves t = Hashtbl.fold (fun id _ acc -> id :: acc) t.enclaves [] |> List.sort compare
let audit t = t.audit
let service_ns t request = Cost.service_ns t.cost request

let count t op = Hashtbl.replace t.served op (served t op + 1)

(* --- helpers shared by the service modules --- *)

let ( let* ) r f = match r with Ok v -> f v | Error e -> Types.Err e

(* Parked (warm-pool) enclaves are invisible to every primitive
   except EWARM and EDESTROY, which look them up directly. *)
let get_enclave t id =
  match Hashtbl.find_opt t.enclaves id with
  | Some e -> (
    match e.Enclave.state with
    | Enclave.Destroyed | Enclave.Parked -> Error Types.No_such_enclave
    | _ -> Ok e)
  | None -> Error Types.No_such_enclave

(* Identity check: a user-privilege primitive acting on enclave [id]
   must come from that enclave itself (sender stamped by EMCall) or
   from its host application (sender = None) for the setup
   primitives. [strict] requires the enclave itself. *)
let check_identity ~sender ~target ~strict =
  match sender with
  | Some s when s = target -> Ok ()
  | Some _ -> Error (Types.Permission_denied "request forged for another enclave")
  | None ->
    if strict then Error (Types.Permission_denied "primitive must be issued from the enclave")
    else Ok ()

let take_pool_frames t ~n =
  match Mem_pool.take t.pool ~n with Some fs -> Ok fs | None -> Error Types.Out_of_memory

(* Initialise a freshly mapped page through the encryption engine so
   DRAM holds valid (encrypted-zero) content with a valid MAC; an
   uninitialised line would otherwise MAC-fault on first load. The
   zero page is shared and only ever read. *)
let zero_page = Bytes.make Hypertee_util.Units.page_size '\000'

let store_zero_page t ~key_id ~frame =
  Mem_encryption.write_page t.mee t.mem ~key_id ~frame zero_page

let map_private_page t (e : Enclave.t) ~vpn ~frame ~r ~w ~x =
  if not (Ownership.claim_private t.ownership ~frame ~enclave:e.Enclave.id) then
    Error (Types.Invalid_argument_ "frame already owned")
  else begin
    Phys_mem.set_owner t.mem frame (Phys_mem.Enclave e.Enclave.id);
    Page_table.map e.Enclave.page_table ~vpn
      (Pte.leaf ~ppn:frame ~r ~w ~x ~key_id:e.Enclave.key_id);
    store_zero_page t ~key_id:e.Enclave.key_id ~frame;
    Ok ()
  end

let unmap_private_page t (e : Enclave.t) ~vpn =
  match Page_table.lookup e.Enclave.page_table ~vpn with
  | None -> Error (Types.Invalid_argument_ "page not mapped")
  | Some pte ->
    let frame = pte.Pte.ppn in
    Page_table.unmap e.Enclave.page_table ~vpn;
    Ownership.release t.ownership ~frame;
    Phys_mem.zero t.mem ~frame;
    Ok frame

(* --- KeyID pressure (Sec. IV-C) ---

   "In case of KeyID exhaustion, EMS can suspend an enclave to
   release a KeyID." Parking a victim's key re-encrypts its private
   pages in place under the EMS swap key and revokes the slot;
   revival (at the next EENTER) assigns a fresh KeyID and restores
   the pages. EMCall's context-switch flush covers the TLB/cache
   coherence the paper requires. *)

let private_leaves (e : Enclave.t) =
  List.filter
    (fun (_, pte) -> pte.Pte.key_id = e.Enclave.key_id)
    (Page_table.entries e.Enclave.page_table)

let park_key t (e : Enclave.t) =
  let swap_key = Hypertee_crypto.Aes.expand (Keymgmt.swap_key t.keys) in
  List.iter
    (fun (vpn, pte) ->
      let frame = pte.Pte.ppn in
      (* Decrypt under the enclave key, re-encrypt under the swap key
         straight back into the same DRAM buffer. *)
      let pt = Mem_encryption.read_page t.mee t.mem ~key_id:pte.Pte.key_id ~frame in
      Hypertee_crypto.Aes.encrypt_page_into swap_key ~page_number:vpn ~src:pt ~src_off:0
        ~dst:(Phys_mem.borrow t.mem ~frame) ~dst_off:0
        (Bytes.length pt))
    (private_leaves e);
  Mem_encryption.revoke t.mee ~key_id:e.Enclave.key_id;
  e.Enclave.key_parked <- true

(* A parkable victim: measured or warm-parked, idle, key not already
   parked. Warm-pool residents are ideal victims — nobody is about to
   run them. *)
let find_parkable t ~except =
  Hashtbl.fold
    (fun id (e : Enclave.t) acc ->
      match acc with
      | Some _ -> acc
      | None ->
        if
          id <> except
          && (match e.Enclave.state with
             | Enclave.Measured | Enclave.Parked -> true
             | _ -> false)
          && not e.Enclave.key_parked
        then Some e
        else None)
    t.enclaves None

(* Allocate a KeyID, parking an idle enclave's key if the engine is
   full. [except] is the enclave the allocation serves. *)
let allocate_key_id t ~except =
  match Mem_encryption.find_free_slot t.mee with
  | Some key_id -> Some key_id
  | None -> (
    match find_parkable t ~except with
    | Some victim ->
      park_key t victim;
      Mem_encryption.find_free_slot t.mee
    | None -> None)

let revive_key t (e : Enclave.t) =
  match allocate_key_id t ~except:e.Enclave.id with
  | None -> Error Types.Out_of_key_ids
  | Some key_id ->
    let measurement = Option.value ~default:Bytes.empty e.Enclave.measurement in
    let key = Keymgmt.memory_key t.keys ~enclave_measurement:measurement ~enclave_id:e.Enclave.id in
    Mem_encryption.program t.mee ~key_id key;
    let swap_key = Hypertee_crypto.Aes.expand (Keymgmt.swap_key t.keys) in
    (* The parked leaves still carry the old KeyID in their PTEs. *)
    let old_key = e.Enclave.key_id in
    List.iter
      (fun (vpn, pte) ->
        if pte.Pte.key_id = old_key then begin
          let frame = pte.Pte.ppn in
          let pt =
            Hypertee_crypto.Aes.decrypt_page swap_key ~page_number:vpn
              (Phys_mem.borrow_ro t.mem ~frame)
          in
          Mem_encryption.write_page t.mee t.mem ~key_id ~frame pt;
          Page_table.map e.Enclave.page_table ~vpn { pte with Pte.key_id }
        end)
      (Page_table.entries e.Enclave.page_table);
    e.Enclave.key_id <- key_id;
    e.Enclave.key_parked <- false;
    Ok ()

(* Reused 8-byte header scratch for the measurement stream, one per
   domain so shards measuring in parallel never share it. *)
let meas_header : bytes Domain.DLS.key = Domain.DLS.new_key (fun () -> Bytes.create 8)

let measurement_update (e : Enclave.t) ~vpn data =
  match e.Enclave.measurement_ctx with
  | Some ctx ->
    let meas_header = Domain.DLS.get meas_header in
    Hypertee_util.Bytes_ext.set_u64_le meas_header 0 (Int64.of_int vpn);
    Hypertee_crypto.Sha256.feed_sub ctx meas_header ~off:0 ~len:8;
    Hypertee_crypto.Sha256.update ctx data
  | None -> ()

let detach_shm_frames t (e : Enclave.t) shm_id =
  match Shm.find t.shms shm_id with
  | None -> ()
  | Some region ->
    List.iter
      (fun frame -> ignore (Ownership.detach t.ownership ~frame ~enclave:e.Enclave.id))
      region.Shm.frames;
    ignore (Shm.detach t.shms ~shm:shm_id ~enclave:e.Enclave.id)

(* --- Shared-region reclamation (the ESHMDES no one can issue) ---

   ESHMDES requires the region's owner identity, so a region whose
   owner enclave is destroyed while others remain attached — or that
   nobody ever attached — would stay registered forever: its frames
   sit in the ownership table as zero-attached [Shared_page]s,
   permanently blocking [can_map_private]. The EMS reaps such
   orphaned regions itself, acting as the dead owner, as soon as the
   last attachment is gone (EDESTROY and ESHMDT call this). *)

let shm_regions t = Shm.regions t.shms

let orphaned_shm_regions t =
  List.filter
    (fun (r : Shm.region) ->
      (not (Hashtbl.mem t.enclaves r.Shm.owner)) && Shm.active_connections r = 0)
    (shm_regions t)

(* Frames currently stuck in orphaned regions — the leak gauge the
   invariant checker asserts to be zero after every primitive. *)
let leaked_shm_frames t =
  List.fold_left
    (fun acc (r : Shm.region) -> acc + List.length r.Shm.frames)
    0 (orphaned_shm_regions t)

let reap_orphaned_shms t =
  List.fold_left
    (fun reaped (r : Shm.region) ->
      match Shm.destroy t.shms ~shm:r.Shm.shm ~caller:r.Shm.owner with
      | Error _ -> reaped
      | Ok region ->
        List.iter
          (fun frame ->
            Ownership.release t.ownership ~frame;
            Phys_mem.zero t.mem ~frame)
          region.Shm.frames;
        Mem_pool.give_back t.pool region.Shm.frames;
        Mem_encryption.revoke t.mee ~key_id:region.Shm.key_id;
        reaped + 1)
    0 (orphaned_shm_regions t)

(* --- Migration adoption (Svc_migrate) ---

   An enclave restored on a shard outside its id's residue class is
   "adopted": the gate routes its id here through an override table,
   and the invariant checker exempts it from the residue rule. *)

let mark_adopted t id = Hashtbl.replace t.adopted id ()
let is_adopted t id = Hashtbl.mem t.adopted id
let clear_adopted t id = Hashtbl.remove t.adopted id
let adopted_ids t = Hashtbl.fold (fun id () acc -> id :: acc) t.adopted [] |> List.sort compare

(* --- Warm pool (ERETIRE / EWARM) ---

   A per-shard FIFO of parked enclave ids. Parked enclaves stay in
   [t.enclaves] with their pages, KeyID and measurement intact; the
   list only orders eviction and lookup. *)

let warm_ids t = t.warm
let warm_count t = List.length t.warm
let warm_has_room t = List.length t.warm < warm_capacity
let warm_push t id = t.warm <- t.warm @ [ id ]
let warm_remove t id = t.warm <- List.filter (fun i -> i <> id) t.warm

(* First (oldest) parked enclave whose measurement matches, FIFO. *)
let warm_pop_matching t ~measurement =
  let rec go = function
    | [] -> None
    | id :: rest -> (
      match Hashtbl.find_opt t.enclaves id with
      | Some e
        when e.Enclave.state = Enclave.Parked
             && Bytes.equal (Enclave.measurement_exn e) measurement ->
        warm_remove t id;
        Some e
      | _ -> go rest)
  in
  go t.warm

let has_swapped_page t enclave ~vpn =
  match Hashtbl.find_opt t.enclaves enclave with
  | Some e -> Hashtbl.mem e.Enclave.swapped_out vpn
  | None -> false
