type state = Loading | Measured | Running | Interrupted | Parked | Destroyed

type layout = {
  code_base : int;
  data_base : int;
  heap_base : int;
  stack_base : int;
  staging_base : int;
  shm_base : int;
}

type t = {
  id : Types.enclave_id;
  config : Types.enclave_config;
  layout : layout;
  page_table : Hypertee_arch.Page_table.t;
  mutable key_id : int;
  mutable key_parked : bool;
  mutable state : state;
  mutable measurement_ctx : Hypertee_crypto.Sha256.ctx option;
  mutable measurement : bytes option;
  mutable heap_cursor : int;
  mutable shm_cursor : int;
  mutable attached_shms : (Types.shm_id * int) list;
  mutable saved_pc : int;
  mutable swapped_out : (int, bytes) Hashtbl.t;
  mutable staging_frames : int list;
  (* EADD history in issue order: (vpn, executable). ERETIRE replays
     it to re-derive the measurement from the resident image pages, so
     a parked enclave provably still carries the bytes it was measured
     over before EWARM hands it out again. *)
  mutable added_pages : (int * bool) list;
}

let state_name = function
  | Loading -> "loading"
  | Measured -> "measured"
  | Running -> "running"
  | Interrupted -> "interrupted"
  | Parked -> "parked"
  | Destroyed -> "destroyed"

let make_layout (config : Types.enclave_config) =
  let code_base = 0x100 in
  let data_base = code_base + config.Types.code_pages in
  let heap_base = data_base + config.Types.data_pages in
  let stack_base = heap_base + config.Types.heap_pages + 0x1000 (* growth room *) in
  let staging_base = stack_base + config.Types.stack_pages + 0x10 in
  let shm_base = staging_base + config.Types.shared_pages + 0x10 in
  { code_base; data_base; heap_base; stack_base; staging_base; shm_base }

let create ~id ~config ~page_table ~key_id =
  let layout = make_layout config in
  {
    id;
    config;
    layout;
    page_table;
    key_id;
    key_parked = false;
    state = Loading;
    measurement_ctx = Some (Hypertee_crypto.Sha256.init ());
    measurement = None;
    heap_cursor = layout.heap_base + config.Types.heap_pages;
    shm_cursor = layout.shm_base;
    attached_shms = [];
    saved_pc = 0;
    swapped_out = Hashtbl.create 8;
    staging_frames = [];
    added_pages = [];
  }

let bad t = Error (Types.Bad_state (state_name t.state))

let can_add t = match t.state with Loading -> Ok () | _ -> bad t
let can_measure t = match t.state with Loading -> Ok () | _ -> bad t
let can_enter t = match t.state with Measured -> Ok () | _ -> bad t
let can_resume t = match t.state with Interrupted -> Ok () | _ -> bad t
let can_exit t = match t.state with Running | Interrupted -> Ok () | _ -> bad t
let can_retire t = match t.state with Measured -> Ok () | _ -> bad t

let static_vpns t =
  let range base n = List.init n (fun i -> base + i) in
  range t.layout.code_base t.config.Types.code_pages
  @ range t.layout.data_base t.config.Types.data_pages
  @ range t.layout.heap_base t.config.Types.heap_pages
  @ range t.layout.stack_base t.config.Types.stack_pages

let measurement_exn t =
  match t.measurement with
  | Some m -> m
  | None -> invalid_arg "Enclave.measurement_exn: enclave not yet measured"
