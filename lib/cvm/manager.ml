module Phys_mem = Hypertee_arch.Phys_mem
module Mem_encryption = Hypertee_arch.Mem_encryption
module Mem_pool = Hypertee_ems.Mem_pool
module Runtime = Hypertee_ems.Runtime
module Keymgmt = Hypertee_ems.Keymgmt

let page_size = Hypertee_util.Units.page_size

type cvm_id = int
type state = Running | Suspended | Destroyed

type cvm = {
  id : cvm_id;
  vcpus : int;
  mutable frames : int array; (* guest-physical page i lives in frames.(i) *)
  key_id : int;
  measurement : bytes;
  mutable cvm_state : state;
  (* Snapshot protection state, EMS-private (Sec. IX): the key and
     the Merkle root never leave the manager except over an attested
     encrypted channel during migration. *)
  mutable snapshot_key : bytes option;
  mutable snapshot_root : bytes option;
}

type t = {
  platform : Hypertee.Platform.t;
  cvms : (cvm_id, cvm) Hashtbl.t;
  mutable next_id : int;
  mutable tamper_detections : int;
}

let create platform = { platform; cvms = Hashtbl.create 8; next_id = 1; tamper_detections = 0 }
let platform t = t.platform

let runtime t = Hypertee.Platform.Internals.runtime t.platform
let mee t = Hypertee.Platform.Internals.mee t.platform
let mem t = Hypertee.Platform.mem t.platform

let find t id =
  match Hashtbl.find_opt t.cvms id with
  | Some cvm when cvm.cvm_state <> Destroyed -> Ok cvm
  | Some _ | None -> Error "no such CVM"

let state t id =
  match Hashtbl.find_opt t.cvms id with Some c -> Some c.cvm_state | None -> None

let measurement t id =
  match Hashtbl.find_opt t.cvms id with Some c -> Some c.measurement | None -> None

let memory_pages t id =
  match Hashtbl.find_opt t.cvms id with Some c -> Array.length c.frames | None -> 0

let ( let* ) = Result.bind

let store_page t cvm ~page data =
  let frame = cvm.frames.(page) in
  Mem_encryption.write_page (mee t) (mem t) ~key_id:cvm.key_id ~frame data

(* Reused page scratch for bulk image/snapshot streaming, one page
   per domain (consumed before the next call on that domain). *)
let page_scratch_key : bytes Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Bytes.make page_size '\000')

let launch t ~vcpus ~memory_pages ~image =
  if vcpus <= 0 || memory_pages <= 0 then Error "bad CVM dimensions"
  else if Bytes.length image > memory_pages * page_size then Error "image exceeds CVM memory"
  else begin
    let pool = Runtime.pool (runtime t) in
    match Mem_encryption.find_free_slot (mee t) with
    | None -> Error "out of memory-encryption KeyIDs"
    | Some key_id -> (
      match Mem_pool.take pool ~n:memory_pages with
      | None ->
        (* Release the KeyID [find_free_slot] reserved. *)
        Mem_encryption.revoke (mee t) ~key_id;
        Error "out of memory"
      | Some frames ->
        let id = t.next_id in
        let keys = Hypertee.Platform.Internals.keys t.platform in
        let measurement = Hypertee_crypto.Sha256.digest image in
        let key = Keymgmt.memory_key keys ~enclave_measurement:measurement ~enclave_id:(0x10000 + id) in
        Mem_encryption.program (mee t) ~key_id key;
        let frames = Array.of_list frames in
        Array.iter (fun f -> Phys_mem.set_owner (mem t) f (Phys_mem.Enclave (0x10000 + id))) frames;
        let cvm =
          {
            id;
            vcpus;
            frames;
            key_id;
            measurement;
            cvm_state = Running;
            snapshot_key = None;
            snapshot_root = None;
          }
        in
        (* Load the image page by page through the engine. *)
        let pages = (Bytes.length image + page_size - 1) / page_size in
        for p = 0 to Array.length frames - 1 do
          let page_scratch = Domain.DLS.get page_scratch_key in
          Bytes.fill page_scratch 0 page_size '\000';
          if p < pages then begin
            let off = p * page_size in
            Bytes.blit image off page_scratch 0 (Stdlib.min page_size (Bytes.length image - off))
          end;
          store_page t cvm ~page:p page_scratch
        done;
        t.next_id <- id + 1;
        Hashtbl.replace t.cvms id cvm;
        Ok id)
  end

let guest_access t id ~gpa ~len k =
  let* cvm = find t id in
  if gpa < 0 || len < 0 || gpa + len > Array.length cvm.frames * page_size then
    Error "guest-physical access out of range"
  else k cvm

let guest_read t id ~gpa ~len =
  guest_access t id ~gpa ~len (fun cvm ->
      let out = Bytes.create len in
      let cursor = ref gpa and remaining = ref len and dst = ref 0 in
      while !remaining > 0 do
        let page = !cursor / page_size and off = !cursor mod page_size in
        let chunk = Stdlib.min !remaining (page_size - off) in
        (* Decrypt only the requested range of each page. *)
        Mem_encryption.read_range_into (mee t) (mem t) ~key_id:cvm.key_id
          ~frame:cvm.frames.(page) ~off ~len:chunk out ~dst_off:!dst;
        cursor := !cursor + chunk;
        dst := !dst + chunk;
        remaining := !remaining - chunk
      done;
      Ok out)

let guest_write t id ~gpa data =
  guest_access t id ~gpa ~len:(Bytes.length data) (fun cvm ->
      let cursor = ref gpa and src = ref 0 and remaining = ref (Bytes.length data) in
      while !remaining > 0 do
        let page = !cursor / page_size and off = !cursor mod page_size in
        let chunk = Stdlib.min !remaining (page_size - off) in
        Mem_encryption.update_range (mee t) (mem t) ~key_id:cvm.key_id
          ~frame:cvm.frames.(page) ~off ~src:data ~src_off:!src ~len:chunk;
        cursor := !cursor + chunk;
        src := !src + chunk;
        remaining := !remaining - chunk
      done;
      Ok ())

let suspend t id =
  let* cvm = find t id in
  match cvm.cvm_state with
  | Running ->
    cvm.cvm_state <- Suspended;
    Ok ()
  | Suspended -> Error "already suspended"
  | Destroyed -> Error "destroyed"

let resume t id =
  let* cvm = find t id in
  match cvm.cvm_state with
  | Suspended ->
    cvm.cvm_state <- Running;
    Ok ()
  | Running -> Error "already running"
  | Destroyed -> Error "destroyed"

let destroy t id =
  let* cvm = find t id in
  let pool = Runtime.pool (runtime t) in
  Array.iter (fun f -> Phys_mem.zero (mem t) ~frame:f) cvm.frames;
  Mem_pool.give_back pool (Array.to_list cvm.frames);
  Mem_encryption.revoke (mee t) ~key_id:cvm.key_id;
  cvm.cvm_state <- Destroyed;
  cvm.frames <- [||];
  Ok ()

type snapshot = { cvm : cvm_id; encrypted_pages : bytes array; vcpus : int }

let fresh_snapshot_key t =
  (* Derived from the platform SK and a per-snapshot nonce. *)
  let keys = Hypertee.Platform.Internals.keys t.platform in
  let nonce = Hypertee_util.Xrng.bytes (Hypertee.Platform.rng t.platform) 16 in
  Hypertee_crypto.Hmac.hmac
    ~key:(Keymgmt.swap_key keys)
    (Bytes.cat (Bytes.of_string "cvm-snapshot") nonce)
  |> fun h -> Bytes.sub h 0 16

let snapshot t id =
  let* cvm = find t id in
  let key_bytes = fresh_snapshot_key t in
  let key = Hypertee_crypto.Aes.expand key_bytes in
  let n = Array.length cvm.frames in
  let encrypt_page p =
    let page_scratch = Domain.DLS.get page_scratch_key in
    let frame = cvm.frames.(p) in
    (* Decrypt into scratch, re-encrypt under the snapshot key into
       the retained blob: one allocation per page instead of two. *)
    Mem_encryption.load_into (mee t) ~key_id:cvm.key_id ~frame
      ~src:(Phys_mem.borrow_ro (mem t) ~frame)
      ~dst:page_scratch;
    let ct = Bytes.create page_size in
    Hypertee_crypto.Aes.encrypt_page_into key ~page_number:p ~src:page_scratch ~src_off:0
      ~dst:ct ~dst_off:0 page_size;
    ct
  in
  (* Pages are independent (per-domain scratch, distinct frames):
     fan out over the platform's worker pool when one is installed. *)
  let dpool = Hypertee.Platform.pool t.platform in
  let encrypted_pages =
    match dpool with
    | Some dp -> Hypertee_util.Domain_pool.map dp encrypt_page (Array.init n Fun.id)
    | None -> Array.init n encrypt_page
  in
  (* Integrity root over the *ciphertext* (encrypt-then-MAC shape). *)
  let tree = Hypertee_crypto.Merkle.build ?pool:dpool (Array.to_list encrypted_pages) in
  cvm.snapshot_key <- Some key_bytes;
  cvm.snapshot_root <- Some (Hypertee_crypto.Merkle.root tree);
  Ok { cvm = id; encrypted_pages; vcpus = cvm.vcpus }

(* Restore with explicit key material (shared by local restore and
   the migration receive path). *)
let restore_with t snap ~key_bytes ~root ~measurement =
  let n = Array.length snap.encrypted_pages in
  if n = 0 then Error "empty snapshot"
  else begin
    (* Verify every page against the root before touching any state. *)
    let dpool = Hypertee.Platform.pool t.platform in
    let tree =
      Hypertee_crypto.Merkle.build ?pool:dpool (Array.to_list snap.encrypted_pages)
    in
    if not (Hypertee_util.Bytes_ext.equal_ct (Hypertee_crypto.Merkle.root tree) root) then begin
      t.tamper_detections <- t.tamper_detections + 1;
      Error "snapshot integrity verification failed"
    end
    else begin
      let key = Hypertee_crypto.Aes.expand key_bytes in
      let pool = Runtime.pool (runtime t) in
      match Mem_encryption.find_free_slot (mee t) with
      | None -> Error "out of memory-encryption KeyIDs"
      | Some key_id -> (
        match Mem_pool.take pool ~n with
        | None ->
          Mem_encryption.revoke (mee t) ~key_id;
          Error "out of memory"
        | Some frames ->
          let id = t.next_id in
          let keys = Hypertee.Platform.Internals.keys t.platform in
          let mem_key =
            Keymgmt.memory_key keys ~enclave_measurement:measurement ~enclave_id:(0x10000 + id)
          in
          Mem_encryption.program (mee t) ~key_id mem_key;
          let frames = Array.of_list frames in
          Array.iter (fun f -> Phys_mem.set_owner (mem t) f (Phys_mem.Enclave (0x10000 + id))) frames;
          let cvm =
            {
              id;
              vcpus = snap.vcpus;
              frames;
              key_id;
              measurement;
              cvm_state = Suspended;
              snapshot_key = Some key_bytes;
              snapshot_root = Some root;
            }
          in
          let fill_page p =
            let page_scratch = Domain.DLS.get page_scratch_key in
            Hypertee_crypto.Aes.decrypt_page_into key ~page_number:p
              ~src:snap.encrypted_pages.(p) ~src_off:0 ~dst:page_scratch ~dst_off:0
              page_size;
            store_page t cvm ~page:p page_scratch
          in
          (match dpool with
          | Some dp ->
            Hypertee_util.Domain_pool.run_all dp (Array.init n (fun p () -> fill_page p))
          | None ->
            for p = 0 to n - 1 do
              fill_page p
            done);
          t.next_id <- id + 1;
          Hashtbl.replace t.cvms id cvm;
          Ok id)
    end
  end

let restore t snap =
  match Hashtbl.find_opt t.cvms snap.cvm with
  | None -> Error "unknown CVM (snapshot from another platform needs migrate)"
  | Some cvm -> (
    match (cvm.snapshot_key, cvm.snapshot_root) with
    | Some key_bytes, Some root ->
      restore_with t snap ~key_bytes ~root ~measurement:cvm.measurement
    | _ -> Error "no snapshot key material retained for this CVM")

(* Migration (Sec. IX): remote attestation between source and
   destination EMSes establishes an encrypted channel; the snapshot
   key and root hash cross inside it; pages cross as ciphertext. *)
let migrate ~src ~dst ~rng id =
  let* cvm = find src id in
  (* 1. Mutual platform attestation: each side signs its platform
     measurement + DH share with its EK; each verifies the peer. *)
  let src_dh = Hypertee_crypto.Dh.generate rng in
  let dst_dh = Hypertee_crypto.Dh.generate rng in
  let sign t dh =
    let keys = Hypertee.Platform.Internals.keys t.platform in
    let body =
      Bytes.cat
        (Hypertee.Platform.platform_measurement t.platform)
        (Hypertee_crypto.Bignum.to_bytes_be ~len:32 dh.Hypertee_crypto.Dh.public)
    in
    (body, Keymgmt.sign_with_ek keys body)
  in
  let src_body, src_sig = sign src src_dh in
  let dst_body, dst_sig = sign dst dst_dh in
  let verify_peer t body signature =
    Hypertee_crypto.Rsa.verify (Hypertee.Platform.ek_public t.platform) ~msg:body ~signature
  in
  if not (verify_peer dst dst_body dst_sig) then Error "destination attestation failed"
  else if not (verify_peer src src_body src_sig) then Error "source attestation failed"
  else begin
    (* 2. Channel keys from the attested DH shares. *)
    let channel_src =
      Hypertee_crypto.Dh.session_key ~secret:src_dh.Hypertee_crypto.Dh.secret
        ~peer_public:dst_dh.Hypertee_crypto.Dh.public ~context:"cvm-migration"
    in
    let channel_dst =
      Hypertee_crypto.Dh.session_key ~secret:dst_dh.Hypertee_crypto.Dh.secret
        ~peer_public:src_dh.Hypertee_crypto.Dh.public ~context:"cvm-migration"
    in
    if not (Bytes.equal channel_src channel_dst) then Error "channel establishment failed"
    else begin
      (* 3. Snapshot on the source; wrap (key || root) in the channel. *)
      let* snap = snapshot src id in
      let key_bytes = Option.get cvm.snapshot_key in
      let root = Option.get cvm.snapshot_root in
      let chan = Hypertee_crypto.Aes.expand channel_src in
      let nonce = Hypertee_util.Xrng.bytes rng 16 in
      let wrapped = Hypertee_crypto.Aes.ctr chan ~nonce (Bytes.cat key_bytes root) in
      (* --- ciphertext pages + (nonce, wrapped) travel to dst --- *)
      let unwrapped = Hypertee_crypto.Aes.ctr (Hypertee_crypto.Aes.expand channel_dst) ~nonce wrapped in
      let key_rx = Bytes.sub unwrapped 0 16 in
      let root_rx = Bytes.sub unwrapped 16 (Bytes.length unwrapped - 16) in
      (* 4. Verified restore on the destination. *)
      let* new_id = restore_with dst snap ~key_bytes:key_rx ~root:root_rx ~measurement:cvm.measurement in
      (* 5. Tear down the source copy. *)
      let* () = destroy src id in
      Ok new_id
    end
  end

let tamper_detections t = t.tamper_detections
