(** Process-wide execution mode: deterministic single-domain (the
    reference semantics) or parallel over OCaml 5 domains.

    The HYPERTEE_EXEC environment variable ([deterministic],
    [parallel], [parallel:<n>]) forces a mode for the whole process,
    letting the test matrix run both modes without recompiling. *)

type mode = Deterministic | Parallel of { domains : int }

val domains : mode -> int
(** Parallelism implied by the mode: 1 for [Deterministic]. *)

val to_string : mode -> string
val of_string : string -> mode option

val env_var : string
(** ["HYPERTEE_EXEC"]. *)

val default_mode : unit -> mode
(** The environment override, or [Deterministic]. Resolved once per
    process. *)

val resolve : requested:mode -> mode
(** The mode a platform should actually use: the environment override
    when set, otherwise [requested]. *)
