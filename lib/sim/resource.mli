(** Multi-server FCFS resource for the discrete-event engine.

    Models a pool of identical servers (e.g. the EMS cores serving
    primitive requests in Fig. 6): jobs arrive, wait in FIFO order
    for a free server, hold it for their service time, then release
    it and run a completion callback.

    Each job is placed on a specific server slot (FIFO over the
    freed slots), and with a tracer installed every completion emits a
    [sim:queued] + [sim:service] span pair on that slot's sim track
    — one Chrome-trace row per modelled server. *)

type t

(** [create engine ~servers] with [servers >= 1]. *)
val create : Engine.t -> servers:int -> t

(** [submit t ~service_ns ~on_done] enqueues a job at the current
    simulated time. [on_done ~queued_ns ~total_ns] fires at
    completion with the time spent waiting and the total
    queueing+service latency. *)
val submit : t -> service_ns:float -> on_done:(queued_ns:float -> total_ns:float -> unit) -> unit

(** Jobs currently waiting (excludes in-service). *)
val queue_length : t -> int

(** Servers currently busy. *)
val busy : t -> int

(** Total jobs completed. *)
val completed : t -> int
