(** Priority queue of timestamped events (binary min-heap).

    Ties are broken by insertion order so simulations are
    deterministic regardless of heap internals. *)

type 'a t

(** An empty queue. *)
val create : unit -> 'a t

(** [push q ~time x] schedules [x] at [time]. *)
val push : 'a t -> time:float -> 'a -> unit

(** Earliest event (and its time); [None] when empty. *)
val pop : 'a t -> (float * 'a) option

(** Time of the earliest event without removing it. *)
val peek_time : 'a t -> float option

(** Events currently queued. *)
val length : 'a t -> int

(** [true] iff no events are queued. *)
val is_empty : 'a t -> bool
