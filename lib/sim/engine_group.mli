(** Conservative windowed parallel discrete-event execution.

    A group of per-member {!Engine}s (one per EMS shard, server bank,
    ...) advancing through virtual time in bounded windows. Within a
    window members are independent, so {!Exec.Parallel} mode runs
    their windows on worker domains; members interact only through
    {!send} messages that cross at the end-of-window barrier.

    {2 The time-window barrier protocol}

    Repeat until no events remain (or [until] is reached):

    + let [start] be the earliest pending event over all members and
      [window_end = start + window_ns];
    + every member runs its own event queue up to [window_end] —
      concurrently in parallel mode, in member order otherwise;
    + {e barrier}; every member's inbox is drained in member order,
      each inbox sorted by (sender, sender-sequence), and each
      message is scheduled on its target at no earlier than
      [window_end].

    Flooring deliveries to the window boundary makes the schedule a
    function of (window index, sender, sender sequence) alone —
    domain interleaving cannot perturb it — so parallel and
    deterministic runs produce identical clocks and event orders,
    which the mode-equivalence tests assert. Physically the floor is
    the fabric hop: [window_ns] at or below the modelled interconnect
    latency (the lookahead) adds no delay a real fabric would not. *)

type t

val default_window_ns : float
(** 200 ns — below the default fabric hop, so flooring is free. *)

val create :
  ?pool:Hypertee_util.Domain_pool.t ->
  ?window_ns:float ->
  mode:Exec.mode ->
  members:int ->
  unit ->
  t
(** [create ~mode ~members ()] — in [Parallel] mode without [?pool]
    the group creates (and owns) its own worker pool; a supplied
    [?pool] is shared and left alive by {!shutdown}. *)

val mode : t -> Exec.mode
val window_ns : t -> float
val member_count : t -> int

val engine : t -> int -> Engine.t
(** Member [i]'s engine — for seeding initial events and reading its
    clock. Handlers running on member [i] must touch only this
    engine (and [i]-owned state); that confinement is what makes the
    window parallelizable. *)

val at : t -> member:int -> time:float -> (Engine.t -> unit) -> unit
(** Schedule on a member's own timeline (no fabric crossing, no
    flooring). Call from that member's handlers or before {!run}. *)

val send : t -> ?src:int -> dst:int -> time:float -> (Engine.t -> unit) -> unit
(** Cross-member fabric message: delivered to [dst] at the next
    window barrier, at [max time window_end]. [src] is the sending
    member (default [-1]: external, pre-run seeding); it selects the
    canonical drain order. Safe to call from a member's handlers
    while windows run in parallel. *)

val run : ?until:float -> t -> float
(** Run the window protocol until no events remain or [until] is
    passed; returns the latest member clock. Events and messages
    beyond [until] stay queued, as with {!Engine.run}. *)

val next_event_time : t -> float option
(** Earliest pending event over all members. *)

val inboxes_pending : t -> bool
(** Any undelivered cross-member message? ([false] at quiescence.) *)

val windows : t -> int
(** Barrier rounds executed. *)

val delivered : t -> int
(** Cross-member messages delivered. *)

val processed : t -> int
(** Total events processed over all members. *)

val shutdown : t -> unit
(** Join the worker pool if the group created one (no-op otherwise
    and in deterministic mode). *)
