(** Discrete-event simulation engine.

    Time is in nanoseconds (float). Handlers scheduled with [at] or
    [after] run when the clock reaches their timestamp; a handler may
    schedule further events. Used by the Fig. 6 concurrent-primitive
    queueing experiment and the mailbox transport model. *)

type t

(** A fresh engine with an empty event queue at time 0. *)
val create : unit -> t

(** Current simulated time (ns). *)
val now : t -> float

(** [at t ~time f] schedules [f] at absolute [time] (>= now). *)
val at : t -> time:float -> (t -> unit) -> unit

(** [after t ~delay f] schedules [f] at [now + delay]. *)
val after : t -> delay:float -> (t -> unit) -> unit

(** Run until no events remain or [until] (if given) is passed.
    Returns the final time. An event scheduled beyond [until] stays
    queued (the clock parks at [until]); a later [run] resumes with
    it — the property windowed execution ({!Engine_group}) relies
    on. *)
val run : ?until:float -> t -> float

(** Timestamp of the earliest pending event, if any. *)
val next_time : t -> float option

(** Number of events processed so far. *)
val processed : t -> int

(** [bind_tracer t tracer] binds the tracer's clock to this engine's
    simulated time ({!Hypertee_obs.Trace.set_clock}), so spans
    emitted while the simulation runs are stamped with event time
    rather than the tracer's virtual cursor. *)
val bind_tracer : t -> Hypertee_obs.Trace.t -> unit
