type t = {
  queue : (t -> unit) Event_queue.t;
  mutable clock : float;
  mutable processed : int;
}

let create () = { queue = Event_queue.create (); clock = 0.0; processed = 0 }
let now t = t.clock

let at t ~time f =
  if time < t.clock then invalid_arg "Engine.at: time in the past";
  Event_queue.push t.queue ~time f

let after t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.after: negative delay";
  Event_queue.push t.queue ~time:(t.clock +. delay) f

let run ?until t =
  let continue = ref true in
  while !continue do
    (* Peek before popping: an event beyond [until] stays queued, so
       windowed execution ([Engine_group]) can resume exactly where
       this window stopped. *)
    match Event_queue.peek_time t.queue with
    | None -> continue := false
    | Some time -> (
      match until with
      | Some limit when time > limit ->
        t.clock <- limit;
        continue := false
      | Some _ | None ->
        let time, f =
          match Event_queue.pop t.queue with Some e -> e | None -> assert false
        in
        t.clock <- time;
        t.processed <- t.processed + 1;
        f t)
  done;
  t.clock

let next_time t = Event_queue.peek_time t.queue

let processed t = t.processed

(* Make the tracer read simulated time: spans pushed/popped while the
   engine runs are stamped with the event clock. *)
let bind_tracer t tracer =
  Hypertee_obs.Trace.set_clock tracer (Some (fun () -> t.clock))
