(* Execution-mode switch for the whole platform.

   [Deterministic] is the default and the reference semantics: one
   domain, every shard drained in gate order, bit-identical traces,
   reproducible fault replays, a happy differential oracle.
   [Parallel] runs distinct-shard work concurrently on OCaml 5
   domains; results are equivalent per call and the final platform
   state is [Platform.check]-clean, but interleaving-sensitive
   observables (trace span order, frame allocation order) may differ.

   The mode can be forced process-wide through the HYPERTEE_EXEC
   environment variable so the test suite runs the same binaries in
   both modes without recompiling:

     HYPERTEE_EXEC=deterministic   (the default)
     HYPERTEE_EXEC=parallel        (recommended_domain_count domains)
     HYPERTEE_EXEC=parallel:4      (exactly 4 domains) *)

type mode = Deterministic | Parallel of { domains : int }

let domains = function Deterministic -> 1 | Parallel { domains } -> domains

let to_string = function
  | Deterministic -> "deterministic"
  | Parallel { domains } -> Printf.sprintf "parallel:%d" domains

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "" | "deterministic" | "det" | "1" -> Some Deterministic
  | "parallel" | "par" ->
    Some (Parallel { domains = Domain.recommended_domain_count () })
  | s -> (
    match String.index_opt s ':' with
    | Some i
      when String.sub s 0 i = "parallel" || String.sub s 0 i = "par" -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some n when n >= 1 -> Some (Parallel { domains = n })
      | _ -> None)
    | _ -> (
      match int_of_string_opt s with
      | Some 1 -> Some Deterministic
      | Some n when n > 1 -> Some (Parallel { domains = n })
      | _ -> None))

let env_var = "HYPERTEE_EXEC"

(* Resolved once: tests construct many platforms and the mode must
   not flip between them mid-process. *)
let forced =
  lazy
    (match Sys.getenv_opt env_var with
    | None | Some "" -> None
    | Some s -> (
      match of_string s with
      | Some m -> Some m
      | None ->
        Printf.eprintf "hypertee: ignoring unparsable %s=%S\n%!" env_var s;
        None))

let default_mode () = match Lazy.force forced with Some m -> m | None -> Deterministic

(* [resolve ~requested] is the single decision point platforms use:
   an explicit request (CLI flag, Config.domains) wins unless the
   environment forces a mode for the whole process. *)
let resolve ~requested =
  match Lazy.force forced with Some m -> m | None -> requested
