type job = {
  arrival : float;
  service_ns : float;
  on_done : queued_ns:float -> total_ns:float -> unit;
}

type t = {
  engine : Engine.t;
  servers : int;
  mutable busy : int;
  waiting : job Queue.t;
  mutable completed : int;
  free_slots : int Queue.t; (* which server indices are idle *)
}

let create engine ~servers =
  if servers < 1 then invalid_arg "Resource.create: need at least one server";
  let free_slots = Queue.create () in
  for i = 0 to servers - 1 do
    Queue.push i free_slots
  done;
  { engine; servers; busy = 0; waiting = Queue.create (); completed = 0; free_slots }

(* With a tracer installed, each completion lays the job's life on
   its server's sim track: the FIFO wait (if any) then the service
   span — together they cover [arrival, finished). *)
let trace_job ~slot ~arrival ~started ~service_ns =
  let module Trace = Hypertee_obs.Trace in
  let track = Trace.track_sim slot in
  if started > arrival then
    ignore
      (Trace.emit ~track ~cat:Trace.Queue ~name:"sim:queued" ~start_ns:arrival
         ~dur_ns:(started -. arrival) ());
  ignore
    (Trace.emit ~track ~cat:Trace.Sim ~name:"sim:service" ~start_ns:started
       ~dur_ns:service_ns ())

let rec start t job =
  t.busy <- t.busy + 1;
  let slot = Queue.pop t.free_slots in
  let started = Engine.now t.engine in
  Engine.after t.engine ~delay:job.service_ns (fun _ ->
      t.busy <- t.busy - 1;
      t.completed <- t.completed + 1;
      Queue.push slot t.free_slots;
      let finished = Engine.now t.engine in
      if Hypertee_obs.Trace.enabled () then
        trace_job ~slot ~arrival:job.arrival ~started ~service_ns:job.service_ns;
      job.on_done ~queued_ns:(started -. job.arrival) ~total_ns:(finished -. job.arrival);
      dispatch t)

and dispatch t =
  if t.busy < t.servers && not (Queue.is_empty t.waiting) then start t (Queue.pop t.waiting)

let submit t ~service_ns ~on_done =
  let job = { arrival = Engine.now t.engine; service_ns; on_done } in
  if t.busy < t.servers then start t job else Queue.push job t.waiting

let queue_length t = Queue.length t.waiting
let busy t = t.busy
let completed t = t.completed
