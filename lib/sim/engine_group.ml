(* Conservative windowed parallel discrete-event execution.

   One [Engine.t] per member (an EMS shard, a queueing-model server
   bank, ...) advances through virtual time in bounded windows of
   [window_ns]. Within a window the members are independent — a
   member's handlers touch only that member's state — so the windows
   can run on worker domains. Interaction crosses the fabric as
   [send] messages into per-member inboxes; the barrier at the end of
   each window drains the inboxes in a canonical order and schedules
   the deliveries no earlier than the window boundary.

   The boundary flooring is what makes the protocol deterministic:
   delivery times and delivery order depend only on (window index,
   sender index, sender sequence number), never on how the OS
   interleaved the worker domains. Deterministic mode runs the exact
   same protocol with the member windows executed sequentially in
   member order — producing identical clocks, identical delivery
   times and identical per-member event orders, which is how the
   equivalence tests compare the two modes.

   The flooring is also the physical story: a cross-member message
   models a fabric hop, and [window_ns] is chosen at or below the
   fabric latency (the model's lookahead), so "delivered at the next
   window boundary" adds no latency a real interconnect would not. *)

type message = {
  src : int;  (* sender member, -1 for external *)
  seq : int;  (* sender-local sequence number *)
  time : float;  (* requested delivery time *)
  deliver : Engine.t -> unit;
}

type member = {
  index : int;
  engine : Engine.t;
  inbox_lock : Mutex.t;
  mutable inbox : message list;  (* reversed arrival order *)
  mutable send_seq : int;  (* owned by the member's domain *)
}

type t = {
  mode : Exec.mode;
  window_ns : float;
  members : member array;
  pool : Hypertee_util.Domain_pool.t option;
  owns_pool : bool;
  mutable external_seq : int;
  mutable windows : int;
  mutable delivered : int;
}

let default_window_ns = 200.0

let create ?pool ?(window_ns = default_window_ns) ~mode ~members () =
  if members < 1 then invalid_arg "Engine_group.create: need at least one member";
  if window_ns <= 0.0 then invalid_arg "Engine_group.create: window_ns must be > 0";
  let pool, owns_pool =
    match (pool, Exec.domains mode) with
    | Some p, _ -> (Some p, false)
    | None, n when n > 1 -> (Some (Hypertee_util.Domain_pool.create ~domains:n), true)
    | None, _ -> (None, false)
  in
  {
    mode;
    window_ns;
    members =
      Array.init members (fun index ->
          {
            index;
            engine = Engine.create ();
            inbox_lock = Mutex.create ();
            inbox = [];
            send_seq = 0;
          });
    pool;
    owns_pool;
    external_seq = 0;
    windows = 0;
    delivered = 0;
  }

let mode t = t.mode
let window_ns t = t.window_ns
let member_count t = Array.length t.members
let engine t i = t.members.(i).engine
let windows t = t.windows
let delivered t = t.delivered
let processed t = Array.fold_left (fun acc m -> acc + Engine.processed m.engine) 0 t.members

(* Schedule [f] on member [i]'s own timeline — no fabric crossing,
   no flooring. Call only from that member's handlers (or before
   [run] starts). *)
let at t ~member ~time f = Engine.at t.members.(member).engine ~time f

let send t ?(src = -1) ~dst ~time deliver =
  let m = t.members.(dst) in
  let seq =
    if src >= 0 then begin
      let s = t.members.(src) in
      let q = s.send_seq in
      s.send_seq <- q + 1;
      q
    end
    else begin
      let q = t.external_seq in
      t.external_seq <- q + 1;
      q
    end
  in
  let msg = { src; seq; time; deliver } in
  Mutex.protect m.inbox_lock (fun () -> m.inbox <- msg :: m.inbox)

(* Barrier delivery: every member's inbox, in member order, each
   sorted by (sender, sender seq) — a canonical order no domain
   interleaving can perturb. Delivery never lands before [floor]
   (the window boundary) or before the target's clock. *)
let drain_inboxes t ~floor =
  Array.iter
    (fun m ->
      let msgs = Mutex.protect m.inbox_lock (fun () ->
          let x = m.inbox in
          m.inbox <- [];
          x)
      in
      List.stable_sort (fun a b -> compare (a.src, a.seq) (b.src, b.seq)) (List.rev msgs)
      |> List.iter (fun msg ->
             let time = Float.max msg.time (Float.max floor (Engine.now m.engine)) in
             Engine.at m.engine ~time (fun e -> msg.deliver e);
             t.delivered <- t.delivered + 1))
    t.members

let next_event_time t =
  Array.fold_left
    (fun acc m ->
      match Engine.next_time m.engine with
      | None -> acc
      | Some tm -> ( match acc with None -> Some tm | Some a -> Some (Float.min a tm)))
    None t.members

let inboxes_pending t =
  Array.exists
    (fun m -> Mutex.protect m.inbox_lock (fun () -> m.inbox <> []))
    t.members

let run ?until t =
  let limit = Option.value until ~default:Float.infinity in
  (* Messages queued before the run deliver at their requested time. *)
  drain_inboxes t ~floor:0.0;
  let rec loop () =
    match next_event_time t with
    | None -> ()
    | Some start when start > limit -> ()
    | Some start ->
      let window_end = Float.min (start +. t.window_ns) limit in
      t.windows <- t.windows + 1;
      let jobs =
        Array.map (fun m () -> ignore (Engine.run ~until:window_end m.engine)) t.members
      in
      (match t.pool with
      | Some pool when Hypertee_util.Domain_pool.size pool > 1 ->
        Hypertee_util.Domain_pool.run_all pool jobs
      | _ -> Array.iter (fun job -> job ()) jobs);
      drain_inboxes t ~floor:window_end;
      if window_end < limit then loop ()
  in
  loop ();
  let clock =
    Array.fold_left (fun acc m -> Float.max acc (Engine.now m.engine)) 0.0 t.members
  in
  clock

let shutdown t =
  if t.owns_pool then Option.iter Hypertee_util.Domain_pool.shutdown t.pool
