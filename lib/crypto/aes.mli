(** AES-128 block cipher (FIPS 197) and counter/XTS-like modes.

    This is the cipher behind the multi-key memory-encryption engine
    (Sec. IV-C), page swapping (EWB), shared-memory encryption
    (Sec. V-A), data sealing, and the conventional software-crypto
    communication baseline of Fig. 12.

    Encryption runs on a fused 32-bit T-table path. The [_into]
    variants write into caller-supplied buffers and perform no
    allocation; they share module-level scratch, which is safe because
    the simulator is single-threaded, but means results must be
    consumed (copied or XORed onward) before the next call. *)

type key

val block_size : int

(** Expand a 16-byte key. Raises [Invalid_argument] otherwise. *)
val expand : bytes -> key

(** [encrypt_block key src] / [decrypt_block key src] on exactly one
    16-byte block. *)
val encrypt_block : key -> bytes -> bytes

val decrypt_block : key -> bytes -> bytes

(** [encrypt_block_into key src ~src_off dst ~dst_off] encrypts the 16
    bytes at [src+src_off] into [dst+dst_off] without allocating.
    [src] and [dst] may alias (the source block is read in full before
    the destination is written). *)
val encrypt_block_into : key -> bytes -> src_off:int -> bytes -> dst_off:int -> unit

(** CTR mode: encryption and decryption are the same operation. The
    16-byte [nonce] seeds the counter; data of any length. *)
val ctr : key -> nonce:bytes -> bytes -> bytes

(** [ctr_into key ~nonce ?stream_off ~src ~src_off ~dst ~dst_off len]
    XORs the CTR keystream over [len] bytes of [src] into [dst]
    without allocating. [stream_off] is the byte position within the
    keystream at which this slice starts, so a sub-range of a larger
    message can be processed alone: encrypting bytes [off, off+len) of
    a buffer uses [~stream_off:off]. [src] and [dst] may be the same
    buffer (in-place). Applying the same call twice is the identity. *)
val ctr_into :
  key ->
  nonce:bytes ->
  ?stream_off:int ->
  src:bytes ->
  src_off:int ->
  dst:bytes ->
  dst_off:int ->
  int ->
  unit

(** The pre-T-table byte-array CTR implementation, retained verbatim
    as the baseline for equivalence tests and the [perf] harness's
    speedup measurement. Bit-identical output to [ctr]. *)
val ctr_reference : key -> nonce:bytes -> bytes -> bytes

(** Tweaked page encryption used by the memory engine: the physical
    page number acts as the tweak so that identical plaintext at
    different addresses yields different ciphertext. *)
val encrypt_page : key -> page_number:int -> bytes -> bytes

val decrypt_page : key -> page_number:int -> bytes -> bytes

(** [encrypt_page_into key ~page_number ?page_off ~src ~src_off ~dst
    ~dst_off len] is the allocation-free page path: [page_off] is the
    byte offset within the page where this slice lives, so a sub-range
    of a page can be processed without touching the rest.
    Decryption is the same operation ([decrypt_page_into] aliases). *)
val encrypt_page_into :
  key ->
  page_number:int ->
  ?page_off:int ->
  src:bytes ->
  src_off:int ->
  dst:bytes ->
  dst_off:int ->
  int ->
  unit

val decrypt_page_into :
  key ->
  page_number:int ->
  ?page_off:int ->
  src:bytes ->
  src_off:int ->
  dst:bytes ->
  dst_off:int ->
  int ->
  unit

(** CBC-MAC style tag (not for new protocol designs; used only as the
    legacy software baseline's authentication). 16 bytes. *)
val cbc_mac : key -> bytes -> bytes
