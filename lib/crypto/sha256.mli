(** SHA-256 (FIPS 180-4).

    Used for enclave measurement (EMEAS), HMAC/HKDF key derivation,
    and signature digests. Incremental interface so measurement can
    be extended page by page as EADD loads an enclave. *)

type ctx

val digest_size : int

(** Fresh hashing context. *)
val init : unit -> ctx

(** [reset ctx] rewinds a context to the freshly-initialised state so
    hot callers can reuse one allocation across digests. *)
val reset : ctx -> unit

(** [update ctx b] absorbs all of [b]. *)
val update : ctx -> bytes -> unit

(** [update_sub ctx b ~off ~len] absorbs a slice. *)
val update_sub : ctx -> bytes -> off:int -> len:int -> unit

(** [feed_sub ctx b ~off ~len] absorbs a slice without copying it
    first — the data-plane name for [update_sub]. *)
val feed_sub : ctx -> bytes -> off:int -> len:int -> unit

(** [finalize ctx] pads and produces the 32-byte digest. The context
    must not be used afterwards (or must be [reset] first). *)
val finalize : ctx -> bytes

(** [finalize_into ctx dst ~off] writes the 32-byte digest at
    [dst+off] without allocating. *)
val finalize_into : ctx -> bytes -> off:int -> unit

(** One-shot digest. *)
val digest : bytes -> bytes

(** One-shot digest of a string. *)
val digest_string : string -> bytes
