(* Labelled key schedule for the secure-channel layer: a thin
   HKDF-expand wrapper that namespaces every derivation under the
   protocol tag, so channel keys can never collide with SHM, seal or
   MEE keys derived elsewhere from the same root material. The label
   set is fixed by docs/PROTOCOL.md §4 and checked by the conformance
   tester. *)

let protocol_tag = "htch1 "

let expand_label ~secret ~label ~context len =
  let tag = protocol_tag ^ label in
  let tag_len = String.length tag in
  let info = Bytes.create (tag_len + Bytes.length context) in
  Bytes.blit_string tag 0 info 0 tag_len;
  Bytes.blit context 0 info tag_len (Bytes.length context);
  Hmac.expand ~prk:secret ~info len

let derive_secret ~secret ~label ~transcript len =
  expand_label ~secret ~label ~context:transcript len
