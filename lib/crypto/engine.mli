(** Crypto-engine timing model.

    Table III gives the EMS crypto engine's throughput: AES 1.24 Gbps,
    SHA-256 16.1 Gbps, RSA sign 123 ops/s, verify 10K ops/s. Without
    the engine, the same operations run in software on the EMS core;
    Table IV's comparison (primitive time 10.4% -> 2.5% of workload
    time, EMEAS 7.8% -> 0.1%) comes from exactly this difference, so
    the model exposes both modes. All results are in nanoseconds. *)

type mode =
  | Software of { core_ghz : float; cycles_per_byte_aes : float; cycles_per_byte_sha : float }
      (** Software crypto on the EMS core at the given clock. *)
  | Hardware  (** Dedicated engine at the Table III rates. *)

type t

val create : mode -> t
val mode : t -> mode

(** Private copy (for installing a fault injector without touching
    the shared [default_*] instances). *)
val copy : t -> t

(** Install a fault injector: each priced operation may then suffer a
    transient engine error, retried transparently by the driver at
    the cost of [intensity] extra runs. *)
val set_fault_injector : t -> Hypertee_faults.Fault.t -> unit

(** Transient errors injected (and absorbed) so far. *)
val transient_errors : t -> int

(** Defaults: EMS core at 750 MHz (Table V timing analysis), software
    AES ~ 40 cycles/B and SHA-256 ~ 28 cycles/B (table-based software
    implementations without ISA extensions). *)
val default_software : t

val default_hardware : t

(** Time to AES-encrypt/decrypt [bytes] bytes. *)
val aes_ns : t -> bytes:int -> float

(** Time to hash [bytes] bytes with SHA-256. *)
val sha256_ns : t -> bytes:int -> float

(** One RSA signature / verification. *)
val rsa_sign_ns : t -> float

val rsa_verify_ns : t -> float

(** Time for one DH modular exponentiation (used by attestation). *)
val modexp_ns : t -> float
