let block = 64 (* SHA-256 block size *)

(* Reused pad buffer and contexts, one set per domain: the padded key
   is XORed to the ipad in place, then flipped to the opad by XORing
   with 0x36 lxor 0x5c. Only the inner digest and the result
   allocate. Domain-local storage keeps the reuse while letting
   parallel shard drains derive keys concurrently. *)
type scratch = { pad : bytes; inner : Sha256.ctx; outer : Sha256.ctx; inner_digest : bytes }

let scratch : scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        pad = Bytes.create block;
        inner = Sha256.init ();
        outer = Sha256.init ();
        inner_digest = Bytes.create 32;
      })

let hmac ~key msg =
  let { pad; inner; outer; inner_digest } = Domain.DLS.get scratch in
  let key =
    if Bytes.length key > block then Sha256.digest key else key
  in
  Bytes.fill pad 0 block '\000';
  Bytes.blit key 0 pad 0 (Bytes.length key);
  for i = 0 to block - 1 do
    Bytes.set pad i (Char.chr (Char.code (Bytes.get pad i) lxor 0x36))
  done;
  Sha256.reset inner;
  Sha256.update inner pad;
  Sha256.update inner msg;
  Sha256.finalize_into inner inner_digest ~off:0;
  for i = 0 to block - 1 do
    Bytes.set pad i (Char.chr (Char.code (Bytes.get pad i) lxor (0x36 lxor 0x5c)))
  done;
  Sha256.reset outer;
  Sha256.update outer pad;
  Sha256.update outer inner_digest;
  Sha256.finalize outer

let extract ~salt ikm =
  let salt = if Bytes.length salt = 0 then Bytes.make 32 '\000' else salt in
  hmac ~key:salt ikm

let expand ~prk ~info len =
  if len > 255 * 32 then invalid_arg "Hmac.expand: length too large";
  let out = Buffer.create len in
  let prev = ref Bytes.empty in
  let counter = ref 1 in
  while Buffer.length out < len do
    let msg = Bytes.create (Bytes.length !prev + Bytes.length info + 1) in
    Bytes.blit !prev 0 msg 0 (Bytes.length !prev);
    Bytes.blit info 0 msg (Bytes.length !prev) (Bytes.length info);
    Bytes.set msg (Bytes.length msg - 1) (Char.chr !counter);
    let t = hmac ~key:prk msg in
    prev := t;
    incr counter;
    Buffer.add_bytes out t
  done;
  Bytes.sub (Buffer.to_bytes out) 0 len

let derive ~ikm ~salt ~info len = expand ~prk:(extract ~salt ikm) ~info:(Bytes.of_string info) len
