type mode =
  | Software of { core_ghz : float; cycles_per_byte_aes : float; cycles_per_byte_sha : float }
  | Hardware

type t = {
  mode : mode;
  mutable faults : Hypertee_faults.Fault.t option;
  mutable transients : int;
}

let create mode = { mode; faults = None; transients = 0 }
let mode t = t.mode

(* [default_software]/[default_hardware] are shared constants, so a
   fault injector is never installed on them directly — callers that
   want faults make a private copy first. *)
let copy t = { mode = t.mode; faults = t.faults; transients = 0 }
let set_fault_injector t inj = t.faults <- Some inj
let transient_errors t = t.transients

let default_software =
  create (Software { core_ghz = 0.75; cycles_per_byte_aes = 40.0; cycles_per_byte_sha = 28.0 })

let default_hardware = create Hardware

(* Table III engine rates. *)
let hw_aes_gbps = 1.24
let hw_sha_gbps = 16.1
let hw_rsa_sign_ops = 123.0
let hw_rsa_verify_ops = 10_000.0

(* A fixed per-operation setup cost (descriptor write, DMA kick). *)
let hw_setup_ns = 200.0

(* Transient engine errors (a flipped descriptor bit, a DMA CRC
   miss): the driver retries transparently, so a fault never
   surfaces functionally — the operation just pays [intensity]
   extra runs of itself. *)
let transient_factor t =
  match t.faults with
  | None -> 1.0
  | Some inj ->
    let module F = Hypertee_faults.Fault in
    if F.fire inj F.Crypto_transient then begin
      t.transients <- t.transients + 1;
      1.0 +. F.intensity inj F.Crypto_transient
    end
    else 1.0

let aes_ns t ~bytes =
  let bytes = float_of_int bytes in
  transient_factor t
  *.
  match t.mode with
  | Hardware -> hw_setup_ns +. (bytes *. 8.0 /. hw_aes_gbps)
  | Software s -> bytes *. s.cycles_per_byte_aes /. s.core_ghz

let sha256_ns t ~bytes =
  let bytes = float_of_int bytes in
  transient_factor t
  *.
  match t.mode with
  | Hardware -> hw_setup_ns +. (bytes *. 8.0 /. hw_sha_gbps)
  | Software s -> bytes *. s.cycles_per_byte_sha /. s.core_ghz

let rsa_sign_ns t =
  transient_factor t
  *.
  match t.mode with
  | Hardware -> 1e9 /. hw_rsa_sign_ops
  | Software s ->
    (* ~ 60x slower in software than the dedicated multiplier. *)
    1e9 /. hw_rsa_sign_ops *. 60.0 *. (0.75 /. s.core_ghz)

let rsa_verify_ns t =
  transient_factor t
  *.
  match t.mode with
  | Hardware -> 1e9 /. hw_rsa_verify_ops
  | Software s -> 1e9 /. hw_rsa_verify_ops *. 60.0 *. (0.75 /. s.core_ghz)

let modexp_ns t =
  (* A DH exponentiation costs about the same as an RSA signature of
     comparable operand width. *)
  rsa_sign_ns t
