(** Labelled key schedule of the secure-channel layer
    (docs/PROTOCOL.md §4).

    Every channel secret — master, per-direction traffic secrets,
    per-generation record keys, rekey chaining — comes out of
    [expand_label], an HKDF-expand whose info string is the fixed
    protocol tag ["htch1 "] followed by a role label and a binding
    context. The tag namespaces channel derivations away from every
    other consumer of the platform's root key material ({!Hmac},
    [Keymgmt]); the labels are part of the wire specification, so
    changing one is a protocol break the conformance tester catches. *)

(** The derivation namespace prefix, ["htch1 "] (§4.1). *)
val protocol_tag : string

(** [expand_label ~secret ~label ~context len] is
    [HKDF-Expand(secret, protocol_tag ‖ label ‖ context, len)].
    [secret] may be any length (it is the HMAC key). *)
val expand_label : secret:bytes -> label:string -> context:bytes -> int -> bytes

(** [derive_secret ~secret ~label ~transcript len] — [expand_label]
    with the handshake transcript hash as context, the form §4.2 uses
    for the master and traffic secrets. *)
val derive_secret : secret:bytes -> label:string -> transcript:bytes -> int -> bytes
