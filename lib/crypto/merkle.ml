(* Levels bottom-up: levels.(0) is the leaf-hash array, the last
   level holds exactly the root. Leaf and interior hashing are
   domain-separated to block leaf/interior confusion attacks. *)

type t = { levels : bytes array array }

(* Domain tags and a reused per-domain context: feeding tag and
   operands through one streaming context hashes the same byte
   sequence as the old concat-then-digest, without building the
   concatenation. Domain-local so parallel leaf hashing gets a
   private context per worker. *)
let leaf_tag = Bytes.of_string "\x00leaf"
let node_tag = Bytes.of_string "\x01node"
let hctx : Sha256.ctx Domain.DLS.key = Domain.DLS.new_key (fun () -> Sha256.init ())

let leaf_hash block =
  let hctx = Domain.DLS.get hctx in
  Sha256.reset hctx;
  Sha256.update hctx leaf_tag;
  Sha256.update hctx block;
  Sha256.finalize hctx

let node_hash left right =
  let hctx = Domain.DLS.get hctx in
  Sha256.reset hctx;
  Sha256.update hctx node_tag;
  Sha256.update hctx left;
  Sha256.update hctx right;
  Sha256.finalize hctx

let parent_level level =
  let n = Array.length level in
  let parents = (n + 1) / 2 in
  Array.init parents (fun i ->
      let left = level.(2 * i) in
      if (2 * i) + 1 < n then node_hash left level.((2 * i) + 1)
      else node_hash left left (* odd promotion: duplicate *))

let build ?pool blocks =
  if blocks = [] then invalid_arg "Merkle.build: no blocks";
  (* Leaf hashing dominates build cost (every data byte flows through
     it; interior levels only hash 64-byte digests), and each leaf is
     independent — exactly the shape the worker pool parallelizes.
     Inline when no pool is given, so output bytes are identical
     either way. *)
  let leaves =
    match pool with
    | None -> Array.of_list (List.map leaf_hash blocks)
    | Some pool -> Hypertee_util.Domain_pool.map pool leaf_hash (Array.of_list blocks)
  in
  let rec grow acc level =
    if Array.length level = 1 then List.rev (level :: acc)
    else grow (level :: acc) (parent_level level)
  in
  { levels = Array.of_list (grow [] leaves) }

let root t =
  let top = t.levels.(Array.length t.levels - 1) in
  Bytes.copy top.(0)

let leaf_count t = Array.length t.levels.(0)

let proof t ~index =
  if index < 0 || index >= leaf_count t then invalid_arg "Merkle.proof: index out of range";
  let path = ref [] in
  let i = ref index in
  for lvl = 0 to Array.length t.levels - 2 do
    let level = t.levels.(lvl) in
    let sibling = if !i land 1 = 0 then !i + 1 else !i - 1 in
    let sib_hash =
      if sibling < Array.length level then level.(sibling) else level.(!i) (* odd promotion *)
    in
    (* true = the sibling is on the left of the combining order *)
    path := (!i land 1 = 1, sib_hash) :: !path;
    i := !i / 2
  done;
  List.rev !path

let verify ~root:expected ~index ~leaf_count proof block =
  if index < 0 || index >= leaf_count then false
  else begin
    let acc = ref (leaf_hash block) in
    List.iter
      (fun (sibling_left, sib) ->
        acc := if sibling_left then node_hash sib !acc else node_hash !acc sib)
      proof;
    Hypertee_util.Bytes_ext.equal_ct !acc expected
  end

let update t ~index block =
  if index < 0 || index >= leaf_count t then invalid_arg "Merkle.update: index out of range";
  let levels = Array.map Array.copy t.levels in
  levels.(0).(index) <- leaf_hash block;
  let i = ref index in
  for lvl = 0 to Array.length levels - 2 do
    let level = levels.(lvl) in
    let parent = !i / 2 in
    let left = level.(2 * parent) in
    let right =
      if (2 * parent) + 1 < Array.length level then level.((2 * parent) + 1) else left
    in
    levels.(lvl + 1).(parent) <- node_hash left right;
    i := parent
  done;
  { levels }
