(* SHA-256 per FIPS 180-4. 32-bit words are carried in native ints and
   masked to 32 bits after every additive step. *)

let digest_size = 32

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

type ctx = {
  h : int array; (* 8 state words *)
  buf : bytes; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int; (* total bytes absorbed *)
  w : int array; (* message schedule scratch *)
}

let iv =
  [|
    0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
    0x1f83d9ab; 0x5be0cd19;
  |]

let init () =
  { h = Array.copy iv; buf = Bytes.create 64; buf_len = 0; total = 0; w = Array.make 64 0 }

(* Rewind a context to the freshly-initialised state so hot callers
   (HMAC, Merkle) can reuse one allocation. *)
let reset ctx =
  Array.blit iv 0 ctx.h 0 8;
  ctx.buf_len <- 0;
  ctx.total <- 0

let mask32 = 0xFFFFFFFF
let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

let compress ctx block off =
  let w = ctx.w in
  (* Whole-word loads; the mask brings the (possibly negative) int32
     into the 0..2^32-1 range the additive steps expect. *)
  for i = 0 to 15 do
    w.(i) <- Int32.to_int (Bytes.get_int32_be block (off + (4 * i))) land 0xFFFFFFFF
  done;
  for i = 16 to 63 do
    let s0 = rotr w.(i - 15) 7 lxor rotr w.(i - 15) 18 lxor (w.(i - 15) lsr 3) in
    let s1 = rotr w.(i - 2) 17 lxor rotr w.(i - 2) 19 lxor (w.(i - 2) lsr 10) in
    w.(i) <- (w.(i - 16) + s0 + w.(i - 7) + s1) land mask32
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let temp1 = (!hh + s1 + ch + k.(i) + w.(i)) land mask32 in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let temp2 = (s0 + maj) land mask32 in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + temp1) land mask32;
    d := !c;
    c := !b;
    b := !a;
    a := (temp1 + temp2) land mask32
  done;
  h.(0) <- (h.(0) + !a) land mask32;
  h.(1) <- (h.(1) + !b) land mask32;
  h.(2) <- (h.(2) + !c) land mask32;
  h.(3) <- (h.(3) + !d) land mask32;
  h.(4) <- (h.(4) + !e) land mask32;
  h.(5) <- (h.(5) + !f) land mask32;
  h.(6) <- (h.(6) + !g) land mask32;
  h.(7) <- (h.(7) + !hh) land mask32

let update_sub ctx b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Sha256.update_sub: slice out of bounds";
  ctx.total <- ctx.total + len;
  let pos = ref off and remaining = ref len in
  (* Top up a partially filled block buffer first. *)
  if ctx.buf_len > 0 then begin
    let take = Stdlib.min !remaining (64 - ctx.buf_len) in
    Bytes.blit b !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= 64 do
    compress ctx b !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit b !pos ctx.buf 0 !remaining;
    ctx.buf_len <- !remaining
  end

let update ctx b = update_sub ctx b ~off:0 ~len:(Bytes.length b)

(* [feed_sub] is the name the data-plane callers use; identical to
   [update_sub]. *)
let feed_sub = update_sub

(* Padding scratch: at most 64 pad bytes plus the 8-byte length.
   Domain-local so concurrent finalizes (parallel Merkle leaves, MEE
   workers) each pad in their own buffer. *)
let pad_scratch : bytes Domain.DLS.key = Domain.DLS.new_key (fun () -> Bytes.create 72)

let finalize_into ctx dst ~off =
  let pad_scratch = Domain.DLS.get pad_scratch in
  if off < 0 || off + 32 > Bytes.length dst then
    invalid_arg "Sha256.finalize_into: digest out of bounds";
  let bit_len = Int64.mul (Int64.of_int ctx.total) 8L in
  (* Pad: 0x80, zeros, 8-byte big-endian bit length. *)
  let pad_len =
    let rem = (ctx.total + 1 + 8) mod 64 in
    if rem = 0 then 1 else 1 + (64 - rem)
  in
  Bytes.fill pad_scratch 0 (pad_len + 8) '\000';
  Bytes.set pad_scratch 0 '\x80';
  Hypertee_util.Bytes_ext.set_u64_be pad_scratch pad_len bit_len;
  (* Absorb padding without recounting it in [total]. *)
  let saved_total = ctx.total in
  update_sub ctx pad_scratch ~off:0 ~len:(pad_len + 8);
  ctx.total <- saved_total;
  for i = 0 to 7 do
    Hypertee_util.Bytes_ext.set_u32_be dst (off + (4 * i)) (Int32.of_int ctx.h.(i))
  done

let finalize ctx =
  let out = Bytes.create 32 in
  finalize_into ctx out ~off:0;
  out

let digest b =
  let ctx = init () in
  update ctx b;
  finalize ctx

let digest_string s = digest (Bytes.of_string s)
