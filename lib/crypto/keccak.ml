(* Keccak-f[1600] with rate 1088 / capacity 512 (SHA3-256), per FIPS
   202. State is 25 lanes of 64 bits held as an int64 array in
   column-major (x + 5*y) order. *)

let round_constants =
  [|
    0x0000000000000001L; 0x0000000000008082L; 0x800000000000808aL;
    0x8000000080008000L; 0x000000000000808bL; 0x0000000080000001L;
    0x8000000080008081L; 0x8000000000008009L; 0x000000000000008aL;
    0x0000000000000088L; 0x0000000080008009L; 0x000000008000000aL;
    0x000000008000808bL; 0x800000000000008bL; 0x8000000000008089L;
    0x8000000000008003L; 0x8000000000008002L; 0x8000000000000080L;
    0x000000000000800aL; 0x800000008000000aL; 0x8000000080008081L;
    0x8000000000008080L; 0x0000000080000001L; 0x8000000080008008L;
  |]

(* Rotation offsets, indexed x + 5*y. *)
let rho_offsets =
  [| 0; 1; 62; 28; 27; 36; 44; 6; 55; 20; 3; 10; 43; 25; 39; 41; 45; 15; 21; 8; 18; 2; 61; 56; 14 |]

let rotl64 x n =
  if n = 0 then x
  else Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

let rate_bytes = 136 (* 1088 bits *)

(* All mutable sponge state — permutation scratch, lanes, partial
   block, MAC digest buffer — lives in one record held in
   domain-local storage: hoisted out of the per-call path (keccak_f
   runs once per 136 absorbed bytes, so per-call allocation would
   dominate the page-MAC path) yet private to each domain, so the
   parallel MEE pipeline can MAC pages on every worker at once. *)
type sponge = {
  c : int64 array;
  d : int64 array;
  b : int64 array;
  st : int64 array;
  partial : bytes;
  mutable partial_len : int;
  mac_digest : bytes;
}

let sponge : sponge Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        c = Array.make 5 0L;
        d = Array.make 5 0L;
        b = Array.make 25 0L;
        st = Array.make 25 0L;
        partial = Bytes.create rate_bytes;
        partial_len = 0;
        mac_digest = Bytes.create 32;
      })

let keccak_f { c; d; b; _ } state =
  for round = 0 to 23 do
    (* theta *)
    for x = 0 to 4 do
      c.(x) <-
        Int64.logxor state.(x)
          (Int64.logxor state.(x + 5)
             (Int64.logxor state.(x + 10) (Int64.logxor state.(x + 15) state.(x + 20))))
    done;
    for x = 0 to 4 do
      d.(x) <- Int64.logxor c.((x + 4) mod 5) (rotl64 c.((x + 1) mod 5) 1)
    done;
    for i = 0 to 24 do
      state.(i) <- Int64.logxor state.(i) d.(i mod 5)
    done;
    (* rho + pi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        let src = x + (5 * y) in
        let dst = y + (5 * (((2 * x) + (3 * y)) mod 5)) in
        b.(dst) <- rotl64 state.(src) rho_offsets.(src)
      done
    done;
    (* chi *)
    for y = 0 to 4 do
      for x = 0 to 4 do
        let i = x + (5 * y) in
        state.(i) <-
          Int64.logxor b.(i)
            (Int64.logand (Int64.lognot b.(((x + 1) mod 5) + (5 * y))) b.(((x + 2) mod 5) + (5 * y)))
      done
    done;
    (* iota *)
    state.(0) <- Int64.logxor state.(0) round_constants.(round)
  done

let sponge_reset sp =
  Array.fill sp.st 0 25 0L;
  sp.partial_len <- 0

(* XOR one full rate block at [block+off] into the state and permute. *)
let absorb_block sp block off =
  for lane = 0 to (rate_bytes / 8) - 1 do
    sp.st.(lane) <- Int64.logxor sp.st.(lane) (Bytes.get_int64_le block (off + (8 * lane)))
  done;
  keccak_f sp sp.st

let absorb sp msg ~off ~len =
  let pos = ref off and remaining = ref len in
  if sp.partial_len > 0 then begin
    let take = Stdlib.min !remaining (rate_bytes - sp.partial_len) in
    Bytes.blit msg !pos sp.partial sp.partial_len take;
    sp.partial_len <- sp.partial_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if sp.partial_len = rate_bytes then begin
      absorb_block sp sp.partial 0;
      sp.partial_len <- 0
    end
  end;
  while !remaining >= rate_bytes do
    absorb_block sp msg !pos;
    pos := !pos + rate_bytes;
    remaining := !remaining - rate_bytes
  done;
  if !remaining > 0 then begin
    Bytes.blit msg !pos sp.partial 0 !remaining;
    sp.partial_len <- sp.partial_len + !remaining
  end

(* pad10*1 with SHA-3 domain bits 0b01 -> 0x06, then squeeze 32 bytes
   (< rate, single squeeze) into [out+off]. *)
let finalize_into sp out ~off =
  Bytes.fill sp.partial sp.partial_len (rate_bytes - sp.partial_len) '\000';
  Bytes.set sp.partial sp.partial_len '\x06';
  Bytes.set sp.partial (rate_bytes - 1)
    (Char.chr (Char.code (Bytes.get sp.partial (rate_bytes - 1)) lor 0x80));
  absorb_block sp sp.partial 0;
  for lane = 0 to 3 do
    Hypertee_util.Bytes_ext.set_u64_le out (off + (8 * lane)) sp.st.(lane)
  done

let sha3_256 msg =
  let sp = Domain.DLS.get sponge in
  sponge_reset sp;
  absorb sp msg ~off:0 ~len:(Bytes.length msg);
  let out = Bytes.create 32 in
  finalize_into sp out ~off:0;
  out

let sha3_256_string s = sha3_256 (Bytes.of_string s)

let mac_28bit ~key data =
  (* Streaming key || data through the sponge is byte-identical to
     hashing their concatenation, minus the concat buffer. The digest
     lands in the domain-local scratch: the tag is an int, so nothing
     the caller sees aliases that buffer. *)
  let sp = Domain.DLS.get sponge in
  sponge_reset sp;
  absorb sp key ~off:0 ~len:(Bytes.length key);
  absorb sp data ~off:0 ~len:(Bytes.length data);
  finalize_into sp sp.mac_digest ~off:0;
  (* Truncate to 28 bits, matching the engine's per-line tag width. *)
  let v =
    (Char.code (Bytes.get sp.mac_digest 0) lsl 24)
    lor (Char.code (Bytes.get sp.mac_digest 1) lsl 16)
    lor (Char.code (Bytes.get sp.mac_digest 2) lsl 8)
    lor Char.code (Bytes.get sp.mac_digest 3)
  in
  v land 0xFFFFFFF
