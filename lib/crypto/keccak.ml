(* Keccak-f[1600] with rate 1088 / capacity 512 (SHA3-256), per FIPS
   202.

   Two permutations coexist, mirroring [Aes]:

   - the *fast* path: each 64-bit lane is split into two 32-bit halves
     held as immediate native ints (an [int64 array] stores a pointer
     per element, so every lane store on the old path allocated a
     boxed int64 — that boxing was the 10 MB/s integrity floor). The
     round function is fully unrolled over all 25 lanes with constant
     indices, so the permutation performs no allocation, no bounds
     check and no [mod] indexing. This is the data plane behind the
     memory-integrity engine's per-line MAC.
   - the original int64-array implementation, retained verbatim as
     [Reference]: the qcheck oracle and the perf-harness baseline
     (the analogue of [Aes.ctr_reference]).

   Sponge scratch lives in domain-local storage, one private set per
   domain, so parallel MEE workers MAC pages concurrently without
   sharing state. *)

let rate_bytes = 136 (* 1088 bits *)

(* Truncate a 32-byte digest to the engine's 28-bit per-line tag. *)
let tag_of_digest digest =
  let v =
    (Char.code (Bytes.get digest 0) lsl 24)
    lor (Char.code (Bytes.get digest 1) lsl 16)
    lor (Char.code (Bytes.get digest 2) lsl 8)
    lor Char.code (Bytes.get digest 3)
  in
  v land 0xFFFFFFF

(* ===== Reference implementation (PR 3's incremental sponge) =====

   Kept byte-for-byte: [mac_28bit] tags recorded in sealed HTSNAP1
   snapshots and journals predate the unrolled path, so the fast path
   must stay bit-identical to this one — asserted by the qcheck
   equivalence property and the FIPS 202 vectors over both. *)

module Reference = struct
  let round_constants =
    [|
      0x0000000000000001L; 0x0000000000008082L; 0x800000000000808aL;
      0x8000000080008000L; 0x000000000000808bL; 0x0000000080000001L;
      0x8000000080008081L; 0x8000000000008009L; 0x000000000000008aL;
      0x0000000000000088L; 0x0000000080008009L; 0x000000008000000aL;
      0x000000008000808bL; 0x800000000000008bL; 0x8000000000008089L;
      0x8000000000008003L; 0x8000000000008002L; 0x8000000000000080L;
      0x000000000000800aL; 0x800000008000000aL; 0x8000000080008081L;
      0x8000000000008080L; 0x0000000080000001L; 0x8000000080008008L;
    |]

  (* Rotation offsets, indexed x + 5*y. *)
  let rho_offsets =
    [| 0; 1; 62; 28; 27; 36; 44; 6; 55; 20; 3; 10; 43; 25; 39; 41; 45; 15; 21; 8; 18; 2; 61; 56; 14 |]

  let rotl64 x n =
    if n = 0 then x
    else Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

  (* All mutable sponge state — permutation scratch, lanes, partial
     block, MAC digest buffer — lives in one record held in
     domain-local storage. *)
  type sponge = {
    c : int64 array;
    d : int64 array;
    b : int64 array;
    st : int64 array;
    partial : bytes;
    mutable partial_len : int;
    mac_digest : bytes;
  }

  let sponge : sponge Domain.DLS.key =
    Domain.DLS.new_key (fun () ->
        {
          c = Array.make 5 0L;
          d = Array.make 5 0L;
          b = Array.make 25 0L;
          st = Array.make 25 0L;
          partial = Bytes.create rate_bytes;
          partial_len = 0;
          mac_digest = Bytes.create 32;
        })

  let keccak_f { c; d; b; _ } state =
    for round = 0 to 23 do
      (* theta *)
      for x = 0 to 4 do
        c.(x) <-
          Int64.logxor state.(x)
            (Int64.logxor state.(x + 5)
               (Int64.logxor state.(x + 10) (Int64.logxor state.(x + 15) state.(x + 20))))
      done;
      for x = 0 to 4 do
        d.(x) <- Int64.logxor c.((x + 4) mod 5) (rotl64 c.((x + 1) mod 5) 1)
      done;
      for i = 0 to 24 do
        state.(i) <- Int64.logxor state.(i) d.(i mod 5)
      done;
      (* rho + pi *)
      for x = 0 to 4 do
        for y = 0 to 4 do
          let src = x + (5 * y) in
          let dst = y + (5 * (((2 * x) + (3 * y)) mod 5)) in
          b.(dst) <- rotl64 state.(src) rho_offsets.(src)
        done
      done;
      (* chi *)
      for y = 0 to 4 do
        for x = 0 to 4 do
          let i = x + (5 * y) in
          state.(i) <-
            Int64.logxor b.(i)
              (Int64.logand (Int64.lognot b.(((x + 1) mod 5) + (5 * y))) b.(((x + 2) mod 5) + (5 * y)))
        done
      done;
      (* iota *)
      state.(0) <- Int64.logxor state.(0) round_constants.(round)
    done

  let sponge_reset sp =
    Array.fill sp.st 0 25 0L;
    sp.partial_len <- 0

  (* XOR one full rate block at [block+off] into the state and permute. *)
  let absorb_block sp block off =
    for lane = 0 to (rate_bytes / 8) - 1 do
      sp.st.(lane) <- Int64.logxor sp.st.(lane) (Bytes.get_int64_le block (off + (8 * lane)))
    done;
    keccak_f sp sp.st

  let absorb sp msg ~off ~len =
    let pos = ref off and remaining = ref len in
    if sp.partial_len > 0 then begin
      let take = Stdlib.min !remaining (rate_bytes - sp.partial_len) in
      Bytes.blit msg !pos sp.partial sp.partial_len take;
      sp.partial_len <- sp.partial_len + take;
      pos := !pos + take;
      remaining := !remaining - take;
      if sp.partial_len = rate_bytes then begin
        absorb_block sp sp.partial 0;
        sp.partial_len <- 0
      end
    end;
    while !remaining >= rate_bytes do
      absorb_block sp msg !pos;
      pos := !pos + rate_bytes;
      remaining := !remaining - rate_bytes
    done;
    if !remaining > 0 then begin
      Bytes.blit msg !pos sp.partial 0 !remaining;
      sp.partial_len <- sp.partial_len + !remaining
    end

  (* pad10*1 with SHA-3 domain bits 0b01 -> 0x06, then squeeze 32 bytes
     (< rate, single squeeze) into [out+off]. *)
  let finalize_into sp out ~off =
    Bytes.fill sp.partial sp.partial_len (rate_bytes - sp.partial_len) '\000';
    Bytes.set sp.partial sp.partial_len '\x06';
    Bytes.set sp.partial (rate_bytes - 1)
      (Char.chr (Char.code (Bytes.get sp.partial (rate_bytes - 1)) lor 0x80));
    absorb_block sp sp.partial 0;
    for lane = 0 to 3 do
      Hypertee_util.Bytes_ext.set_u64_le out (off + (8 * lane)) sp.st.(lane)
    done

  let sha3_256 msg =
    let sp = Domain.DLS.get sponge in
    sponge_reset sp;
    absorb sp msg ~off:0 ~len:(Bytes.length msg);
    let out = Bytes.create 32 in
    finalize_into sp out ~off:0;
    out

  let mac_28bit ~key data =
    let sp = Domain.DLS.get sponge in
    sponge_reset sp;
    absorb sp key ~off:0 ~len:(Bytes.length key);
    absorb sp data ~off:0 ~len:(Bytes.length data);
    finalize_into sp sp.mac_digest ~off:0;
    tag_of_digest sp.mac_digest
end

(* ===== Fast path ===== *)

let rc_lo = [| 0x00000001; 0x00008082; 0x0000808a; 0x80008000; 0x0000808b; 0x80000001; 0x80008081; 0x00008009; 0x0000008a; 0x00000088; 0x80008009; 0x8000000a; 0x8000808b; 0x0000008b; 0x00008089; 0x00008003; 0x00008002; 0x00000080; 0x0000800a; 0x8000000a; 0x80008081; 0x00008080; 0x80000001; 0x80008008 |]

let rc_hi = [| 0x00000000; 0x00000000; 0x80000000; 0x80000000; 0x00000000; 0x00000000; 0x80000000; 0x80000000; 0x00000000; 0x00000000; 0x00000000; 0x00000000; 0x00000000; 0x80000000; 0x80000000; 0x80000000; 0x80000000; 0x80000000; 0x00000000; 0x80000000; 0x80000000; 0x80000000; 0x00000000; 0x80000000 |]

let[@inline always] ( .%() ) st i = Array.unsafe_get (st : int array) i
let[@inline always] ( .%()<- ) st i v = Array.unsafe_set (st : int array) i v

(* One Keccak-f[1600] permutation over 25 lanes split into 32-bit
   halves (st.(2i) = low, st.(2i+1) = high). Fully unrolled
   theta/rho/pi/chi/iota per round: every intermediate is an
   immediate native int, so the permutation allocates nothing and
   indexes nothing modulo 5. Generated mechanically from the
   (x + 5y) lane layout and the FIPS 202 rotation table; the qcheck
   equivalence property in test_dataplane pins it to [Reference]. *)
let keccak_p (st : int array) =
  for round = 0 to 23 do
    let a0l = st.%(0) and a0h = st.%(1) in
    let a1l = st.%(2) and a1h = st.%(3) in
    let a2l = st.%(4) and a2h = st.%(5) in
    let a3l = st.%(6) and a3h = st.%(7) in
    let a4l = st.%(8) and a4h = st.%(9) in
    let a5l = st.%(10) and a5h = st.%(11) in
    let a6l = st.%(12) and a6h = st.%(13) in
    let a7l = st.%(14) and a7h = st.%(15) in
    let a8l = st.%(16) and a8h = st.%(17) in
    let a9l = st.%(18) and a9h = st.%(19) in
    let a10l = st.%(20) and a10h = st.%(21) in
    let a11l = st.%(22) and a11h = st.%(23) in
    let a12l = st.%(24) and a12h = st.%(25) in
    let a13l = st.%(26) and a13h = st.%(27) in
    let a14l = st.%(28) and a14h = st.%(29) in
    let a15l = st.%(30) and a15h = st.%(31) in
    let a16l = st.%(32) and a16h = st.%(33) in
    let a17l = st.%(34) and a17h = st.%(35) in
    let a18l = st.%(36) and a18h = st.%(37) in
    let a19l = st.%(38) and a19h = st.%(39) in
    let a20l = st.%(40) and a20h = st.%(41) in
    let a21l = st.%(42) and a21h = st.%(43) in
    let a22l = st.%(44) and a22h = st.%(45) in
    let a23l = st.%(46) and a23h = st.%(47) in
    let a24l = st.%(48) and a24h = st.%(49) in
    let c0l = a0l lxor a5l lxor a10l lxor a15l lxor a20l
    and c0h = a0h lxor a5h lxor a10h lxor a15h lxor a20h in
    let c1l = a1l lxor a6l lxor a11l lxor a16l lxor a21l
    and c1h = a1h lxor a6h lxor a11h lxor a16h lxor a21h in
    let c2l = a2l lxor a7l lxor a12l lxor a17l lxor a22l
    and c2h = a2h lxor a7h lxor a12h lxor a17h lxor a22h in
    let c3l = a3l lxor a8l lxor a13l lxor a18l lxor a23l
    and c3h = a3h lxor a8h lxor a13h lxor a18h lxor a23h in
    let c4l = a4l lxor a9l lxor a14l lxor a19l lxor a24l
    and c4h = a4h lxor a9h lxor a14h lxor a19h lxor a24h in
    let d0l = c4l lxor (((c1l lsl 1) lor (c1h lsr 31)) land 0xFFFFFFFF)
    and d0h = c4h lxor (((c1h lsl 1) lor (c1l lsr 31)) land 0xFFFFFFFF) in
    let d1l = c0l lxor (((c2l lsl 1) lor (c2h lsr 31)) land 0xFFFFFFFF)
    and d1h = c0h lxor (((c2h lsl 1) lor (c2l lsr 31)) land 0xFFFFFFFF) in
    let d2l = c1l lxor (((c3l lsl 1) lor (c3h lsr 31)) land 0xFFFFFFFF)
    and d2h = c1h lxor (((c3h lsl 1) lor (c3l lsr 31)) land 0xFFFFFFFF) in
    let d3l = c2l lxor (((c4l lsl 1) lor (c4h lsr 31)) land 0xFFFFFFFF)
    and d3h = c2h lxor (((c4h lsl 1) lor (c4l lsr 31)) land 0xFFFFFFFF) in
    let d4l = c3l lxor (((c0l lsl 1) lor (c0h lsr 31)) land 0xFFFFFFFF)
    and d4h = c3h lxor (((c0h lsl 1) lor (c0l lsr 31)) land 0xFFFFFFFF) in
    let t0l = a0l lxor d0l and t0h = a0h lxor d0h in
    let b0l = t0l and b0h = t0h in
    let t5l = a5l lxor d0l and t5h = a5h lxor d0h in
    let b16l = (((t5h lsl 4) lor (t5l lsr 28)) land 0xFFFFFFFF) and b16h = (((t5l lsl 4) lor (t5h lsr 28)) land 0xFFFFFFFF) in
    let t10l = a10l lxor d0l and t10h = a10h lxor d0h in
    let b7l = (((t10l lsl 3) lor (t10h lsr 29)) land 0xFFFFFFFF) and b7h = (((t10h lsl 3) lor (t10l lsr 29)) land 0xFFFFFFFF) in
    let t15l = a15l lxor d0l and t15h = a15h lxor d0h in
    let b23l = (((t15h lsl 9) lor (t15l lsr 23)) land 0xFFFFFFFF) and b23h = (((t15l lsl 9) lor (t15h lsr 23)) land 0xFFFFFFFF) in
    let t20l = a20l lxor d0l and t20h = a20h lxor d0h in
    let b14l = (((t20l lsl 18) lor (t20h lsr 14)) land 0xFFFFFFFF) and b14h = (((t20h lsl 18) lor (t20l lsr 14)) land 0xFFFFFFFF) in
    let t1l = a1l lxor d1l and t1h = a1h lxor d1h in
    let b10l = (((t1l lsl 1) lor (t1h lsr 31)) land 0xFFFFFFFF) and b10h = (((t1h lsl 1) lor (t1l lsr 31)) land 0xFFFFFFFF) in
    let t6l = a6l lxor d1l and t6h = a6h lxor d1h in
    let b1l = (((t6h lsl 12) lor (t6l lsr 20)) land 0xFFFFFFFF) and b1h = (((t6l lsl 12) lor (t6h lsr 20)) land 0xFFFFFFFF) in
    let t11l = a11l lxor d1l and t11h = a11h lxor d1h in
    let b17l = (((t11l lsl 10) lor (t11h lsr 22)) land 0xFFFFFFFF) and b17h = (((t11h lsl 10) lor (t11l lsr 22)) land 0xFFFFFFFF) in
    let t16l = a16l lxor d1l and t16h = a16h lxor d1h in
    let b8l = (((t16h lsl 13) lor (t16l lsr 19)) land 0xFFFFFFFF) and b8h = (((t16l lsl 13) lor (t16h lsr 19)) land 0xFFFFFFFF) in
    let t21l = a21l lxor d1l and t21h = a21h lxor d1h in
    let b24l = (((t21l lsl 2) lor (t21h lsr 30)) land 0xFFFFFFFF) and b24h = (((t21h lsl 2) lor (t21l lsr 30)) land 0xFFFFFFFF) in
    let t2l = a2l lxor d2l and t2h = a2h lxor d2h in
    let b20l = (((t2h lsl 30) lor (t2l lsr 2)) land 0xFFFFFFFF) and b20h = (((t2l lsl 30) lor (t2h lsr 2)) land 0xFFFFFFFF) in
    let t7l = a7l lxor d2l and t7h = a7h lxor d2h in
    let b11l = (((t7l lsl 6) lor (t7h lsr 26)) land 0xFFFFFFFF) and b11h = (((t7h lsl 6) lor (t7l lsr 26)) land 0xFFFFFFFF) in
    let t12l = a12l lxor d2l and t12h = a12h lxor d2h in
    let b2l = (((t12h lsl 11) lor (t12l lsr 21)) land 0xFFFFFFFF) and b2h = (((t12l lsl 11) lor (t12h lsr 21)) land 0xFFFFFFFF) in
    let t17l = a17l lxor d2l and t17h = a17h lxor d2h in
    let b18l = (((t17l lsl 15) lor (t17h lsr 17)) land 0xFFFFFFFF) and b18h = (((t17h lsl 15) lor (t17l lsr 17)) land 0xFFFFFFFF) in
    let t22l = a22l lxor d2l and t22h = a22h lxor d2h in
    let b9l = (((t22h lsl 29) lor (t22l lsr 3)) land 0xFFFFFFFF) and b9h = (((t22l lsl 29) lor (t22h lsr 3)) land 0xFFFFFFFF) in
    let t3l = a3l lxor d3l and t3h = a3h lxor d3h in
    let b5l = (((t3l lsl 28) lor (t3h lsr 4)) land 0xFFFFFFFF) and b5h = (((t3h lsl 28) lor (t3l lsr 4)) land 0xFFFFFFFF) in
    let t8l = a8l lxor d3l and t8h = a8h lxor d3h in
    let b21l = (((t8h lsl 23) lor (t8l lsr 9)) land 0xFFFFFFFF) and b21h = (((t8l lsl 23) lor (t8h lsr 9)) land 0xFFFFFFFF) in
    let t13l = a13l lxor d3l and t13h = a13h lxor d3h in
    let b12l = (((t13l lsl 25) lor (t13h lsr 7)) land 0xFFFFFFFF) and b12h = (((t13h lsl 25) lor (t13l lsr 7)) land 0xFFFFFFFF) in
    let t18l = a18l lxor d3l and t18h = a18h lxor d3h in
    let b3l = (((t18l lsl 21) lor (t18h lsr 11)) land 0xFFFFFFFF) and b3h = (((t18h lsl 21) lor (t18l lsr 11)) land 0xFFFFFFFF) in
    let t23l = a23l lxor d3l and t23h = a23h lxor d3h in
    let b19l = (((t23h lsl 24) lor (t23l lsr 8)) land 0xFFFFFFFF) and b19h = (((t23l lsl 24) lor (t23h lsr 8)) land 0xFFFFFFFF) in
    let t4l = a4l lxor d4l and t4h = a4h lxor d4h in
    let b15l = (((t4l lsl 27) lor (t4h lsr 5)) land 0xFFFFFFFF) and b15h = (((t4h lsl 27) lor (t4l lsr 5)) land 0xFFFFFFFF) in
    let t9l = a9l lxor d4l and t9h = a9h lxor d4h in
    let b6l = (((t9l lsl 20) lor (t9h lsr 12)) land 0xFFFFFFFF) and b6h = (((t9h lsl 20) lor (t9l lsr 12)) land 0xFFFFFFFF) in
    let t14l = a14l lxor d4l and t14h = a14h lxor d4h in
    let b22l = (((t14h lsl 7) lor (t14l lsr 25)) land 0xFFFFFFFF) and b22h = (((t14l lsl 7) lor (t14h lsr 25)) land 0xFFFFFFFF) in
    let t19l = a19l lxor d4l and t19h = a19h lxor d4h in
    let b13l = (((t19l lsl 8) lor (t19h lsr 24)) land 0xFFFFFFFF) and b13h = (((t19h lsl 8) lor (t19l lsr 24)) land 0xFFFFFFFF) in
    let t24l = a24l lxor d4l and t24h = a24h lxor d4h in
    let b4l = (((t24l lsl 14) lor (t24h lsr 18)) land 0xFFFFFFFF) and b4h = (((t24h lsl 14) lor (t24l lsr 18)) land 0xFFFFFFFF) in
    st.%(0) <- b0l lxor ((lnot b1l) land b2l) lxor Array.unsafe_get rc_lo round;
    st.%(1) <- b0h lxor ((lnot b1h) land b2h) lxor Array.unsafe_get rc_hi round;
    st.%(2) <- b1l lxor ((lnot b2l) land b3l);
    st.%(3) <- b1h lxor ((lnot b2h) land b3h);
    st.%(4) <- b2l lxor ((lnot b3l) land b4l);
    st.%(5) <- b2h lxor ((lnot b3h) land b4h);
    st.%(6) <- b3l lxor ((lnot b4l) land b0l);
    st.%(7) <- b3h lxor ((lnot b4h) land b0h);
    st.%(8) <- b4l lxor ((lnot b0l) land b1l);
    st.%(9) <- b4h lxor ((lnot b0h) land b1h);
    st.%(10) <- b5l lxor ((lnot b6l) land b7l);
    st.%(11) <- b5h lxor ((lnot b6h) land b7h);
    st.%(12) <- b6l lxor ((lnot b7l) land b8l);
    st.%(13) <- b6h lxor ((lnot b7h) land b8h);
    st.%(14) <- b7l lxor ((lnot b8l) land b9l);
    st.%(15) <- b7h lxor ((lnot b8h) land b9h);
    st.%(16) <- b8l lxor ((lnot b9l) land b5l);
    st.%(17) <- b8h lxor ((lnot b9h) land b5h);
    st.%(18) <- b9l lxor ((lnot b5l) land b6l);
    st.%(19) <- b9h lxor ((lnot b5h) land b6h);
    st.%(20) <- b10l lxor ((lnot b11l) land b12l);
    st.%(21) <- b10h lxor ((lnot b11h) land b12h);
    st.%(22) <- b11l lxor ((lnot b12l) land b13l);
    st.%(23) <- b11h lxor ((lnot b12h) land b13h);
    st.%(24) <- b12l lxor ((lnot b13l) land b14l);
    st.%(25) <- b12h lxor ((lnot b13h) land b14h);
    st.%(26) <- b13l lxor ((lnot b14l) land b10l);
    st.%(27) <- b13h lxor ((lnot b14h) land b10h);
    st.%(28) <- b14l lxor ((lnot b10l) land b11l);
    st.%(29) <- b14h lxor ((lnot b10h) land b11h);
    st.%(30) <- b15l lxor ((lnot b16l) land b17l);
    st.%(31) <- b15h lxor ((lnot b16h) land b17h);
    st.%(32) <- b16l lxor ((lnot b17l) land b18l);
    st.%(33) <- b16h lxor ((lnot b17h) land b18h);
    st.%(34) <- b17l lxor ((lnot b18l) land b19l);
    st.%(35) <- b17h lxor ((lnot b18h) land b19h);
    st.%(36) <- b18l lxor ((lnot b19l) land b15l);
    st.%(37) <- b18h lxor ((lnot b19h) land b15h);
    st.%(38) <- b19l lxor ((lnot b15l) land b16l);
    st.%(39) <- b19h lxor ((lnot b15h) land b16h);
    st.%(40) <- b20l lxor ((lnot b21l) land b22l);
    st.%(41) <- b20h lxor ((lnot b21h) land b22h);
    st.%(42) <- b21l lxor ((lnot b22l) land b23l);
    st.%(43) <- b21h lxor ((lnot b22h) land b23h);
    st.%(44) <- b22l lxor ((lnot b23l) land b24l);
    st.%(45) <- b22h lxor ((lnot b23h) land b24h);
    st.%(46) <- b23l lxor ((lnot b24l) land b20l);
    st.%(47) <- b23h lxor ((lnot b24h) land b20h);
    st.%(48) <- b24l lxor ((lnot b20l) land b21l);
    st.%(49) <- b24h lxor ((lnot b20h) land b21h);
    ()
  done

(* Fast sponge: 50 immediate-int lane halves plus the partial-block
   and digest scratch, one private record per domain (hoisted out of
   the per-call path — [keccak_p] runs once per 136 absorbed bytes,
   so per-call allocation would dominate the page-MAC path). *)
type sponge = {
  st : int array; (* 25 lanes x (low, high) 32-bit halves *)
  partial : bytes;
  mutable partial_len : int;
  mac_digest : bytes;
}

let sponge : sponge Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        st = Array.make 50 0;
        partial = Bytes.create rate_bytes;
        partial_len = 0;
        mac_digest = Bytes.create 32;
      })

let sponge_reset sp =
  Array.fill sp.st 0 50 0;
  sp.partial_len <- 0

(* Little-endian 32-bit load assembled from unsafe char reads: the
   callers below only pass [off] with a full rate block in range, and
   chars are immediates, so the absorb loop never allocates. *)
let[@inline] word32 b off =
  Char.code (Bytes.unsafe_get b off)
  lor (Char.code (Bytes.unsafe_get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (off + 3)) lsl 24)

(* XOR one full rate block at [block+off] into the state and permute. *)
let absorb_block sp block off =
  let st = sp.st in
  for lane = 0 to (rate_bytes / 8) - 1 do
    let base = off + (8 * lane) in
    st.%(2 * lane) <- st.%(2 * lane) lxor word32 block base;
    st.%((2 * lane) + 1) <- st.%((2 * lane) + 1) lxor word32 block (base + 4)
  done;
  keccak_p st

let absorb sp msg ~off ~len =
  let pos = ref off and remaining = ref len in
  if sp.partial_len > 0 then begin
    let take = Stdlib.min !remaining (rate_bytes - sp.partial_len) in
    Bytes.blit msg !pos sp.partial sp.partial_len take;
    sp.partial_len <- sp.partial_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if sp.partial_len = rate_bytes then begin
      absorb_block sp sp.partial 0;
      sp.partial_len <- 0
    end
  end;
  while !remaining >= rate_bytes do
    absorb_block sp msg !pos;
    pos := !pos + rate_bytes;
    remaining := !remaining - rate_bytes
  done;
  if !remaining > 0 then begin
    Bytes.blit msg !pos sp.partial 0 !remaining;
    sp.partial_len <- sp.partial_len + !remaining
  end

(* pad10*1 with SHA-3 domain bits 0b01 -> 0x06, then squeeze 32 bytes
   (< rate, single squeeze) into [out+off]. *)
let finalize_into sp out ~off =
  Bytes.fill sp.partial sp.partial_len (rate_bytes - sp.partial_len) '\000';
  Bytes.set sp.partial sp.partial_len '\x06';
  Bytes.set sp.partial (rate_bytes - 1)
    (Char.chr (Char.code (Bytes.get sp.partial (rate_bytes - 1)) lor 0x80));
  absorb_block sp sp.partial 0;
  for lane = 0 to 3 do
    let lo = sp.st.(2 * lane) and hi = sp.st.((2 * lane) + 1) in
    for i = 0 to 3 do
      Bytes.set out (off + (8 * lane) + i) (Char.chr ((lo lsr (8 * i)) land 0xFF));
      Bytes.set out (off + (8 * lane) + 4 + i) (Char.chr ((hi lsr (8 * i)) land 0xFF))
    done
  done

let sha3_256 msg =
  let sp = Domain.DLS.get sponge in
  sponge_reset sp;
  absorb sp msg ~off:0 ~len:(Bytes.length msg);
  let out = Bytes.create 32 in
  finalize_into sp out ~off:0;
  out

let sha3_256_string s = sha3_256 (Bytes.of_string s)

let mac_28bit ~key data =
  (* Streaming key || data through the sponge is byte-identical to
     hashing their concatenation, minus the concat buffer. The digest
     lands in the domain-local scratch: the tag is an int, so nothing
     the caller sees aliases that buffer. *)
  let sp = Domain.DLS.get sponge in
  sponge_reset sp;
  absorb sp key ~off:0 ~len:(Bytes.length key);
  absorb sp data ~off:0 ~len:(Bytes.length data);
  finalize_into sp sp.mac_digest ~off:0;
  tag_of_digest sp.mac_digest

(* --- Keyed-MAC snapshots. The MEE MACs every line under one engine
   key, so instead of re-absorbing the key per call it captures the
   sponge state right after the key once and replays that snapshot:
   [mac_28bit_keyed] then only touches the data bytes. Tags are
   byte-identical to [mac_28bit] because the snapshot *is* the
   post-key sponge. --- *)

type keyed = {
  kst : int array;
  kpartial : bytes;
  kpartial_len : int;
}

let keyed_init ~key =
  let sp = Domain.DLS.get sponge in
  sponge_reset sp;
  absorb sp key ~off:0 ~len:(Bytes.length key);
  { kst = Array.copy sp.st; kpartial = Bytes.copy sp.partial; kpartial_len = sp.partial_len }

let mac_28bit_keyed keyed data =
  let sp = Domain.DLS.get sponge in
  Array.blit keyed.kst 0 sp.st 0 50;
  if keyed.kpartial_len > 0 then Bytes.blit keyed.kpartial 0 sp.partial 0 keyed.kpartial_len;
  sp.partial_len <- keyed.kpartial_len;
  absorb sp data ~off:0 ~len:(Bytes.length data);
  finalize_into sp sp.mac_digest ~off:0;
  tag_of_digest sp.mac_digest

let mac16_keyed_into keyed data ~off ~len tag ~tag_off =
  let sp = Domain.DLS.get sponge in
  Array.blit keyed.kst 0 sp.st 0 50;
  if keyed.kpartial_len > 0 then Bytes.blit keyed.kpartial 0 sp.partial 0 keyed.kpartial_len;
  sp.partial_len <- keyed.kpartial_len;
  absorb sp data ~off ~len;
  finalize_into sp sp.mac_digest ~off:0;
  Bytes.blit sp.mac_digest 0 tag tag_off 16
