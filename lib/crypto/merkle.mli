(** Merkle hash tree over fixed-size data blocks.

    Used by the VM-level TEE extension (paper Sec. IX): a CVM
    snapshot encrypts guest memory and roots its integrity in a
    Merkle tree whose root hash lives in EMS private memory; restore
    and migration verify each block against the root. SHA-256
    throughout; an odd node at any level is promoted (duplicated
    hashing is a known second-preimage hazard). *)

type t

(** [build blocks] hashes each block as a leaf and folds the tree.
    With [?pool], leaf hashing (the data-proportional part) fans out
    over the worker domains; the resulting tree is byte-identical
    either way. Raises [Invalid_argument] on an empty list. *)
val build : ?pool:Hypertee_util.Domain_pool.t -> bytes list -> t

val root : t -> bytes
val leaf_count : t -> int

(** [proof t ~index] is the authentication path for leaf [index]:
    sibling hashes bottom-up, each tagged with whether the sibling
    sits on the left. *)
val proof : t -> index:int -> (bool * bytes) list

(** [verify ~root ~index ~leaf_count proof block] recomputes the path
    for [block] at [index] and compares against [root]. Stateless:
    the verifier needs only the root (which is what EMS keeps). *)
val verify : root:bytes -> index:int -> leaf_count:int -> (bool * bytes) list -> bytes -> bool

(** [update t ~index block] replaces a leaf and recomputes the spine
    to the root (dirty-page tracking during snapshots). *)
val update : t -> index:int -> bytes -> t
