(* AES-128 per FIPS 197. The S-box is computed at load time from the
   GF(2^8) inverse plus the affine transform rather than pasted as a
   table, which also documents where the constants come from.

   Two encryption paths coexist:

   - the *T-table* path: SubBytes/ShiftRows/MixColumns fused into four
     256-entry 32-bit tables, one lookup per state byte per round, with
     [_into] variants that write into caller (or module) scratch. This
     is the data plane behind the memory-encryption engine.
   - the original byte-array *reference* path, retained for decryption
     (which is cold) and as [ctr_reference] so tests and the perf
     harness can assert the fast path is bit-identical and measure the
     speedup.

   The reused scratch buffers follow the same convention as [Keccak]:
   one private set per domain in domain-local storage, so hot paths
   stay allocation-free and parallel MEE workers never share them. *)

let block_size = 16

(* --- GF(2^8) arithmetic, modulus x^8 + x^4 + x^3 + x + 1 (0x11B) --- *)

let xtime a = if a land 0x80 <> 0 then ((a lsl 1) lxor 0x11B) land 0xFF else (a lsl 1) land 0xFF

let gmul a b =
  let acc = ref 0 and a = ref a and b = ref b in
  while !b <> 0 do
    if !b land 1 <> 0 then acc := !acc lxor !a;
    a := xtime !a;
    b := !b lsr 1
  done;
  !acc land 0xFF

let sbox, inv_sbox =
  let s = Array.make 256 0 and inv = Array.make 256 0 in
  (* Build the multiplicative inverse table via generator 3 (log/alog). *)
  let alog = Array.make 256 0 and log = Array.make 256 0 in
  let x = ref 1 in
  for i = 0 to 254 do
    alog.(i) <- !x;
    log.(!x) <- i;
    x := gmul !x 3
  done;
  let inverse a = if a = 0 then 0 else alog.((255 - log.(a)) mod 255) in
  let affine a =
    let rot v n = ((v lsl n) lor (v lsr (8 - n))) land 0xFF in
    a lxor rot a 1 lxor rot a 2 lxor rot a 3 lxor rot a 4 lxor 0x63
  in
  for a = 0 to 255 do
    s.(a) <- affine (inverse a)
  done;
  for a = 0 to 255 do
    inv.(s.(a)) <- a
  done;
  (s, inv)

(* --- Fused T-tables. te0.(x) packs the MixColumns column produced by
   the substituted byte [sbox.(x)] landing in row 0 after ShiftRows;
   te1..te3 are the same column rotated for rows 1..3. One round of
   SubBytes+ShiftRows+MixColumns for an output column is then four
   table lookups XORed together. Words are big-endian packed (row 0 in
   the top byte), matching [Bytes.get_int32_be] on the input block. *)

let te0, te1, te2, te3 =
  let t0 = Array.make 256 0 and t1 = Array.make 256 0 in
  let t2 = Array.make 256 0 and t3 = Array.make 256 0 in
  for x = 0 to 255 do
    let s = sbox.(x) in
    let s2 = gmul s 2 and s3 = gmul s 3 in
    t0.(x) <- (s2 lsl 24) lor (s lsl 16) lor (s lsl 8) lor s3;
    t1.(x) <- (s3 lsl 24) lor (s2 lsl 16) lor (s lsl 8) lor s;
    t2.(x) <- (s lsl 24) lor (s3 lsl 16) lor (s2 lsl 8) lor s;
    t3.(x) <- (s lsl 24) lor (s lsl 16) lor (s3 lsl 8) lor s2
  done;
  (t0, t1, t2, t3)

(* --- Key schedule --- *)

type key = {
  enc : int array array; (* 11 round keys of 16 bytes (reference/decrypt path) *)
  rk : int array; (* the same schedule as 44 big-endian-packed 32-bit words *)
}

let expand key_bytes =
  if Bytes.length key_bytes <> 16 then invalid_arg "Aes.expand: key must be 16 bytes";
  (* Words as 4-byte arrays. *)
  let w = Array.make 44 [||] in
  for i = 0 to 3 do
    w.(i) <- Array.init 4 (fun j -> Char.code (Bytes.get key_bytes ((4 * i) + j)))
  done;
  let rcon = ref 1 in
  for i = 4 to 43 do
    let temp = Array.copy w.(i - 1) in
    if i mod 4 = 0 then begin
      (* RotWord + SubWord + Rcon *)
      let t0 = temp.(0) in
      temp.(0) <- sbox.(temp.(1)) lxor !rcon;
      temp.(1) <- sbox.(temp.(2));
      temp.(2) <- sbox.(temp.(3));
      temp.(3) <- sbox.(t0);
      rcon := xtime !rcon
    end;
    w.(i) <- Array.init 4 (fun j -> w.(i - 4).(j) lxor temp.(j))
  done;
  let enc =
    Array.init 11 (fun r -> Array.init 16 (fun j -> w.((4 * r) + (j / 4)).(j mod 4)))
  in
  let rk =
    Array.init 44 (fun i ->
        (w.(i).(0) lsl 24) lor (w.(i).(1) lsl 16) lor (w.(i).(2) lsl 8) lor w.(i).(3))
  in
  { enc; rk }

(* --- Reference rounds. State is a 16-byte int array in column-major
   order, matching the round-key layout above. Kept for decryption and
   as the baseline the T-table path is checked against. --- *)

let mul_table k = Array.init 256 (fun a -> gmul a k)
let m2 = mul_table 2
let m3 = mul_table 3
let m9 = mul_table 9
let m11 = mul_table 11
let m13 = mul_table 13
let m14 = mul_table 14

let add_round_key state rk =
  for i = 0 to 15 do
    state.(i) <- state.(i) lxor rk.(i)
  done

let sub_bytes state =
  for i = 0 to 15 do
    state.(i) <- sbox.(state.(i))
  done

let inv_sub_bytes state =
  for i = 0 to 15 do
    state.(i) <- inv_sbox.(state.(i))
  done

(* Row r of the state lives at indices r, r+4, r+8, r+12; row r
   rotates left by r positions. *)
let shift_rows state =
  let t = state.(1) in
  state.(1) <- state.(5); state.(5) <- state.(9); state.(9) <- state.(13); state.(13) <- t;
  let t0 = state.(2) and t1 = state.(6) in
  state.(2) <- state.(10); state.(6) <- state.(14); state.(10) <- t0; state.(14) <- t1;
  let t = state.(15) in
  state.(15) <- state.(11); state.(11) <- state.(7); state.(7) <- state.(3); state.(3) <- t

let inv_shift_rows state =
  let t = state.(13) in
  state.(13) <- state.(9); state.(9) <- state.(5); state.(5) <- state.(1); state.(1) <- t;
  let t0 = state.(2) and t1 = state.(6) in
  state.(2) <- state.(10); state.(6) <- state.(14); state.(10) <- t0; state.(14) <- t1;
  let t = state.(3) in
  state.(3) <- state.(7); state.(7) <- state.(11); state.(11) <- state.(15); state.(15) <- t

let mix_columns state =
  for c = 0 to 3 do
    let a0 = state.(4 * c) and a1 = state.((4 * c) + 1) in
    let a2 = state.((4 * c) + 2) and a3 = state.((4 * c) + 3) in
    state.(4 * c) <- m2.(a0) lxor m3.(a1) lxor a2 lxor a3;
    state.((4 * c) + 1) <- a0 lxor m2.(a1) lxor m3.(a2) lxor a3;
    state.((4 * c) + 2) <- a0 lxor a1 lxor m2.(a2) lxor m3.(a3);
    state.((4 * c) + 3) <- m3.(a0) lxor a1 lxor a2 lxor m2.(a3)
  done

let inv_mix_columns state =
  for c = 0 to 3 do
    let a0 = state.(4 * c) and a1 = state.((4 * c) + 1) in
    let a2 = state.((4 * c) + 2) and a3 = state.((4 * c) + 3) in
    state.(4 * c) <- m14.(a0) lxor m11.(a1) lxor m13.(a2) lxor m9.(a3);
    state.((4 * c) + 1) <- m9.(a0) lxor m14.(a1) lxor m11.(a2) lxor m13.(a3);
    state.((4 * c) + 2) <- m13.(a0) lxor m9.(a1) lxor m14.(a2) lxor m11.(a3);
    state.((4 * c) + 3) <- m11.(a0) lxor m13.(a1) lxor m9.(a2) lxor m14.(a3)
  done

let state_of_bytes b =
  if Bytes.length b <> 16 then invalid_arg "Aes: block must be 16 bytes";
  Array.init 16 (fun i -> Char.code (Bytes.get b i))

let bytes_of_state state =
  let out = Bytes.create 16 in
  Array.iteri (fun i v -> Bytes.set out i (Char.chr v)) state;
  out

let encrypt_block_ref key src =
  let state = state_of_bytes src in
  add_round_key state key.enc.(0);
  for round = 1 to 9 do
    sub_bytes state;
    shift_rows state;
    mix_columns state;
    add_round_key state key.enc.(round)
  done;
  sub_bytes state;
  shift_rows state;
  add_round_key state key.enc.(10);
  bytes_of_state state

let decrypt_block key src =
  let state = state_of_bytes src in
  add_round_key state key.enc.(10);
  for round = 9 downto 1 do
    inv_shift_rows state;
    inv_sub_bytes state;
    add_round_key state key.enc.(round);
    inv_mix_columns state
  done;
  inv_shift_rows state;
  inv_sub_bytes state;
  add_round_key state key.enc.(0);
  bytes_of_state state

(* --- T-table encryption. The state is four 32-bit column words; the
   ShiftRows rotation shows up as each output column sampling a byte
   from columns c, c+1, c+2, c+3 (mod 4). Written as a tail-recursive
   round function over native ints so a block encryption performs no
   allocation at all; the four output words land in [out]. *)

let rec rounds rk r s0 s1 s2 s3 (out : int array) =
  if r = 10 then begin
    out.(0) <-
      ((sbox.((s0 lsr 24) land 0xFF) lsl 24)
      lor (sbox.((s1 lsr 16) land 0xFF) lsl 16)
      lor (sbox.((s2 lsr 8) land 0xFF) lsl 8)
      lor sbox.(s3 land 0xFF))
      lxor rk.(40);
    out.(1) <-
      ((sbox.((s1 lsr 24) land 0xFF) lsl 24)
      lor (sbox.((s2 lsr 16) land 0xFF) lsl 16)
      lor (sbox.((s3 lsr 8) land 0xFF) lsl 8)
      lor sbox.(s0 land 0xFF))
      lxor rk.(41);
    out.(2) <-
      ((sbox.((s2 lsr 24) land 0xFF) lsl 24)
      lor (sbox.((s3 lsr 16) land 0xFF) lsl 16)
      lor (sbox.((s0 lsr 8) land 0xFF) lsl 8)
      lor sbox.(s1 land 0xFF))
      lxor rk.(42);
    out.(3) <-
      ((sbox.((s3 lsr 24) land 0xFF) lsl 24)
      lor (sbox.((s0 lsr 16) land 0xFF) lsl 16)
      lor (sbox.((s1 lsr 8) land 0xFF) lsl 8)
      lor sbox.(s2 land 0xFF))
      lxor rk.(43)
  end
  else begin
    let base = 4 * r in
    let t0 =
      te0.((s0 lsr 24) land 0xFF) lxor te1.((s1 lsr 16) land 0xFF)
      lxor te2.((s2 lsr 8) land 0xFF) lxor te3.(s3 land 0xFF) lxor rk.(base)
    in
    let t1 =
      te0.((s1 lsr 24) land 0xFF) lxor te1.((s2 lsr 16) land 0xFF)
      lxor te2.((s3 lsr 8) land 0xFF) lxor te3.(s0 land 0xFF) lxor rk.(base + 1)
    in
    let t2 =
      te0.((s2 lsr 24) land 0xFF) lxor te1.((s3 lsr 16) land 0xFF)
      lxor te2.((s0 lsr 8) land 0xFF) lxor te3.(s1 land 0xFF) lxor rk.(base + 2)
    in
    let t3 =
      te0.((s3 lsr 24) land 0xFF) lxor te1.((s0 lsr 16) land 0xFF)
      lxor te2.((s1 lsr 8) land 0xFF) lxor te3.(s2 land 0xFF) lxor rk.(base + 3)
    in
    rounds rk (r + 1) t0 t1 t2 t3 out
  end

let get_word b off = Int32.to_int (Bytes.get_int32_be b off) land 0xFFFFFFFF

(* Encrypt the block at [src+src_off], leaving the four ciphertext
   words in [out]. *)
let encrypt_words key src ~src_off (out : int array) =
  let rk = key.rk in
  rounds rk 1
    (get_word src src_off lxor rk.(0))
    (get_word src (src_off + 4) lxor rk.(1))
    (get_word src (src_off + 8) lxor rk.(2))
    (get_word src (src_off + 12) lxor rk.(3))
    out

(* Reused scratch for the block/CTR/CBC paths, one set per domain:
   keeps these paths allocation-free while letting the parallel MEE
   pipeline encrypt pages on every worker domain at once. *)
type scratch = {
  block_words : int array;
  ctr_counter : bytes;
  ctr_words : int array;
  page_nonce : bytes;
  cbc_block : bytes;
}

let scratch : scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        block_words = Array.make 4 0;
        ctr_counter = Bytes.create 16;
        ctr_words = Array.make 4 0;
        page_nonce = Bytes.make 16 '\000';
        cbc_block = Bytes.create 16;
      })

let encrypt_block_into key src ~src_off dst ~dst_off =
  if src_off < 0 || src_off + 16 > Bytes.length src
     || dst_off < 0 || dst_off + 16 > Bytes.length dst
  then invalid_arg "Aes.encrypt_block_into: block out of bounds";
  let block_words = (Domain.DLS.get scratch).block_words in
  encrypt_words key src ~src_off block_words;
  Bytes.set_int32_be dst dst_off (Int32.of_int block_words.(0));
  Bytes.set_int32_be dst (dst_off + 4) (Int32.of_int block_words.(1));
  Bytes.set_int32_be dst (dst_off + 8) (Int32.of_int block_words.(2));
  Bytes.set_int32_be dst (dst_off + 12) (Int32.of_int block_words.(3))

let encrypt_block key src =
  if Bytes.length src <> 16 then invalid_arg "Aes: block must be 16 bytes";
  let out = Bytes.create 16 in
  encrypt_block_into key src ~src_off:0 out ~dst_off:0;
  out

(* --- CTR mode. The nonce seeds a 16-byte counter whose low 64 bits
   increment big-endian per block. The counter and keystream words are
   module-level scratch; [ctr_into] streams src -> dst (aliasing
   allowed) without allocating. --- *)

(* Increment the low 64 bits of [counter] big-endian (one shared copy
   of the bump logic; [ctr_reference] keeps its own verbatim). *)
let bump counter =
  let rec go i =
    if i >= 8 then ()
    else begin
      let v = (Char.code (Bytes.get counter (15 - i)) + 1) land 0xFF in
      Bytes.set counter (15 - i) (Char.chr v);
      if v = 0 then go (i + 1)
    end
  in
  go 0

(* Advance the low 64 bits by [n] blocks at once: identical to [n]
   bumps since both wrap modulo 2^64. *)
let advance counter n =
  if n <> 0 then begin
    let lo = Hypertee_util.Bytes_ext.get_u64_be counter 8 in
    Hypertee_util.Bytes_ext.set_u64_be counter 8 (Int64.add lo (Int64.of_int n))
  end

(* XOR one keystream byte (big-endian position [i] within the block)
   into a single src byte. Used only for ragged head/tail bytes. *)
let xor_byte ctr_words src src_i dst dst_i i =
  let ks = (ctr_words.(i / 4) lsr (8 * (3 - (i mod 4)))) land 0xFF in
  Bytes.set dst dst_i (Char.chr (Char.code (Bytes.get src src_i) lxor ks))

let ctr_into key ~nonce ?(stream_off = 0) ~src ~src_off ~dst ~dst_off len =
  if Bytes.length nonce <> 16 then invalid_arg "Aes.ctr: nonce must be 16 bytes";
  if len < 0 || src_off < 0 || dst_off < 0 || stream_off < 0
     || src_off + len > Bytes.length src
     || dst_off + len > Bytes.length dst
  then invalid_arg "Aes.ctr_into: slice out of bounds";
  let { ctr_counter; ctr_words; _ } = Domain.DLS.get scratch in
  Bytes.blit nonce 0 ctr_counter 0 16;
  advance ctr_counter (stream_off / 16);
  let lead = stream_off mod 16 in
  let pos = ref 0 in
  (* Ragged head: keystream offset [lead] within the first block. *)
  if lead <> 0 && len > 0 then begin
    encrypt_words key ctr_counter ~src_off:0 ctr_words;
    bump ctr_counter;
    let n = Stdlib.min (16 - lead) len in
    for i = 0 to n - 1 do
      xor_byte ctr_words src (src_off + i) dst (dst_off + i) (lead + i)
    done;
    pos := n
  end;
  (* Full blocks: word-wise XOR. *)
  while len - !pos >= 16 do
    encrypt_words key ctr_counter ~src_off:0 ctr_words;
    bump ctr_counter;
    let s = src_off + !pos and d = dst_off + !pos in
    Bytes.set_int32_be dst d
      (Int32.logxor (Bytes.get_int32_be src s) (Int32.of_int ctr_words.(0)));
    Bytes.set_int32_be dst (d + 4)
      (Int32.logxor (Bytes.get_int32_be src (s + 4)) (Int32.of_int ctr_words.(1)));
    Bytes.set_int32_be dst (d + 8)
      (Int32.logxor (Bytes.get_int32_be src (s + 8)) (Int32.of_int ctr_words.(2)));
    Bytes.set_int32_be dst (d + 12)
      (Int32.logxor (Bytes.get_int32_be src (s + 12)) (Int32.of_int ctr_words.(3)));
    pos := !pos + 16
  done;
  (* Ragged tail. *)
  let rem = len - !pos in
  if rem > 0 then begin
    encrypt_words key ctr_counter ~src_off:0 ctr_words;
    for i = 0 to rem - 1 do
      xor_byte ctr_words src (src_off + !pos + i) dst (dst_off + !pos + i) i
    done
  end

let ctr key ~nonce data =
  let len = Bytes.length data in
  let out = Bytes.create len in
  ctr_into key ~nonce ~src:data ~src_off:0 ~dst:out ~dst_off:0 len;
  out

(* The pre-T-table CTR implementation, verbatim (including its
   per-block allocations). The perf harness measures the fast path
   against this, and tests assert bit-identical output. *)
let ctr_reference key ~nonce data =
  if Bytes.length nonce <> 16 then invalid_arg "Aes.ctr: nonce must be 16 bytes";
  let len = Bytes.length data in
  let out = Bytes.copy data in
  let counter = Bytes.copy nonce in
  let blocks = (len + 15) / 16 in
  for b = 0 to blocks - 1 do
    let ks = encrypt_block_ref key counter in
    let off = 16 * b in
    let n = Stdlib.min 16 (len - off) in
    for i = 0 to n - 1 do
      Bytes.set out (off + i)
        (Char.chr (Char.code (Bytes.get out (off + i)) lxor Char.code (Bytes.get ks i)))
    done;
    bump counter
  done;
  out

(* --- Tweaked page encryption. The page number lands big-endian in
   the low 8 bytes of a reusable nonce buffer. --- *)

let set_page_nonce ~page_number =
  let page_nonce = (Domain.DLS.get scratch).page_nonce in
  Hypertee_util.Bytes_ext.set_u64_be page_nonce 8 (Int64.of_int page_number);
  page_nonce

let encrypt_page_into key ~page_number ?(page_off = 0) ~src ~src_off ~dst ~dst_off len =
  let nonce = set_page_nonce ~page_number in
  ctr_into key ~nonce ~stream_off:page_off ~src ~src_off ~dst ~dst_off len

let decrypt_page_into = encrypt_page_into

let encrypt_page key ~page_number data =
  let nonce = set_page_nonce ~page_number in
  ctr key ~nonce data

let decrypt_page = encrypt_page

(* --- CBC-MAC. One block of domain-local scratch; the accumulator
   doubles as the output, so the whole MAC performs a single
   allocation. --- *)

let cbc_mac key data =
  let cbc_block = (Domain.DLS.get scratch).cbc_block in
  let len = Bytes.length data in
  let blocks = (len + 15) / 16 in
  let acc = Bytes.make 16 '\000' in
  for b = 0 to blocks - 1 do
    let off = 16 * b in
    Bytes.fill cbc_block 0 16 '\000';
    Bytes.blit data off cbc_block 0 (Stdlib.min 16 (len - off));
    Hypertee_util.Bytes_ext.xor_into ~src:acc ~dst:cbc_block;
    encrypt_block_into key cbc_block ~src_off:0 acc ~dst_off:0
  done;
  if blocks = 0 then encrypt_block_into key acc ~src_off:0 acc ~dst_off:0;
  acc
