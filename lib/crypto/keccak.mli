(** Keccak-f[1600] sponge and SHA3-256 (FIPS 202).

    The paper's memory-integrity engine uses a SHA-3-based MAC
    (Sec. IV-C); [mac_28bit] produces the truncated 28-bit tag that
    engine stores per cache line.

    The default entry points run the unrolled lane-level permutation
    (32-bit lane halves in immediate native ints, allocation-free);
    {!Reference} retains the original int64-array implementation as
    the qcheck oracle and perf baseline, mirroring
    [Aes.ctr_reference]. Both produce bit-identical digests and
    tags. *)

(** SHA3-256 one-shot digest (32 bytes). *)
val sha3_256 : bytes -> bytes

(** SHA3-256 of a string. *)
val sha3_256_string : string -> bytes

(** [mac_28bit ~key data] is the 28-bit truncated SHA3 MAC used by
    the memory-integrity engine, returned as a non-negative int. The
    key is absorbed before the data (KMAC-style prefix keying is fine
    for a sponge). *)
val mac_28bit : key:bytes -> bytes -> int

(** A sponge snapshot taken right after absorbing a MAC key:
    replaying it skips the per-call key absorption, so a caller that
    MACs many lines under one key (the memory-integrity engine) pays
    for the key exactly once. Immutable once built; safe to share
    across domains (each call replays into domain-local scratch). *)
type keyed

(** [keyed_init ~key] captures the post-key sponge state. *)
val keyed_init : key:bytes -> keyed

(** [mac_28bit_keyed keyed data] is byte-identical to
    [mac_28bit ~key data] for the [key] captured in [keyed]. *)
val mac_28bit_keyed : keyed -> bytes -> int

(** [mac16_keyed_into keyed data ~off ~len tag ~tag_off] writes the
    16-byte keyed-sponge tag of [data.[off..off+len-1]] — the first
    half of [SHA3-256(key ‖ data)] — into [tag] at [tag_off], with no
    allocation. This is the record tag of the secure-channel layer
    (docs/PROTOCOL.md §3.3): the record header and ciphertext sit
    contiguously in one buffer, so the MAC input is a single slice. *)
val mac16_keyed_into : keyed -> bytes -> off:int -> len:int -> bytes -> tag_off:int -> unit

(** The original incremental-sponge implementation on int64 arrays,
    retained verbatim: the equivalence oracle for the unrolled path
    and the baseline the perf harness measures speedup against. *)
module Reference : sig
  val sha3_256 : bytes -> bytes
  val mac_28bit : key:bytes -> bytes -> int
end
