module Types = Hypertee_ems.Types
module Emcall = Hypertee_cs.Emcall
module Fault = Hypertee_faults.Fault
module Platform = Hypertee.Platform
module Xrng = Hypertee_util.Xrng
module Stats = Hypertee_util.Stats

type point = {
  fault_rate : float;
  ops : int;
  ok : int;
  degraded : int;
  timeouts : int;
  success_rate : float;
  p50_ns : float;
  p99_ns : float;
  injected : int;
  recovered : int;
  enclaves_killed : int;
  retries : int;
  invariant_violations : int;
}

let default_rates = [ 0.0; 0.01; 0.02; 0.05; 0.1; 0.2 ]

(* Workload state per live enclave: the launch pipeline (EADD pages,
   then EMEAS) followed by steady-state management traffic. *)
type enclave_state = {
  id : Types.enclave_id;
  mutable added : int;
  mutable measured : bool;
  mutable regions : (int * int) list; (* (base_vpn, pages) from EALLOC *)
}

let launch_adds = 2
let fleet_target = 3

let page_data i = Bytes.make 64 (Char.chr (Char.code 'a' + (i mod 26)))

(* One iteration = exactly one EMCall. Picks the next sensible
   primitive for the current fleet state; the point of the sweep is
   that the *platform* keeps its promises, so the workload itself is
   always semantically valid against the state the workload believes
   in — divergence (a fault killed an enclave under us) lands in the
   [degraded] bucket and the bookkeeping resyncs. *)
let next_request rng fleet =
  match List.find_opt (fun e -> not e.measured) !fleet with
  | Some e when e.added < launch_adds ->
    ( Emcall.Os_kernel,
      Types.Add
        { enclave = e.id; vpn = 0x100 + e.added; data = page_data e.added; executable = true },
      `Added e )
  | Some e -> (Emcall.Os_kernel, Types.Measure { enclave = e.id }, `Measured e)
  | None ->
    if List.length !fleet < fleet_target then
      (Emcall.Os_kernel, Types.Create { config = Types.default_config }, `Created)
    else begin
      let arr = Array.of_list !fleet in
      let e = arr.(Xrng.int rng (Array.length arr)) in
      match Xrng.int rng 10 with
      | 0 | 1 | 2 -> (Emcall.User_enclave e.id, Types.Alloc { enclave = e.id; pages = 2 }, `Alloced e)
      | 3 | 4 -> (
        match e.regions with
        | (base_vpn, pages) :: _ ->
          (Emcall.User_enclave e.id, Types.Free { enclave = e.id; vpn = base_vpn; pages }, `Freed e)
        | [] -> (Emcall.User_enclave e.id, Types.Alloc { enclave = e.id; pages = 2 }, `Alloced e))
      | 5 | 6 ->
        ( Emcall.User_enclave e.id,
          Types.Attest { enclave = e.id; user_data = Bytes.of_string "chaos" },
          `Noop )
      | 7 ->
        (* Big enough to drain the EMS pool and force eviction of
           enclave heap pages — the path that decrypts lines through
           the encryption engine, where injected bit flips land.
           Evicted pages are unmapped until faulted back in, so stop
           trusting earlier EALLOC regions for the Free arm. *)
        List.iter (fun e -> e.regions <- []) !fleet;
        (Emcall.Os_kernel, Types.Writeback { pages_hint = 48 }, `Noop)
      | 8 -> (Emcall.Os_kernel, Types.Destroy { enclave = e.id }, `Destroyed e)
      | _ ->
        List.iter (fun e -> e.regions <- []) !fleet;
        (Emcall.Os_kernel, Types.Writeback { pages_hint = 8 }, `Noop)
    end

let drop fleet id = fleet := List.filter (fun e -> e.id <> id) !fleet

let run_point ~seed ~fault_rate ~ops =
  let faults = Fault.uniform ~seed:(Int64.add seed 0x5EEDL) ~rate:fault_rate () in
  let platform = Platform.create ~seed ~faults () in
  let rng = Xrng.create (Int64.add seed 17L) in
  let fleet = ref [] in
  let ok = ref 0 and degraded = ref 0 and timeouts = ref 0 in
  let latencies = Stats.create () in
  for _ = 1 to ops do
    let caller, request, effect = next_request rng fleet in
    match Platform.invoke_timed platform ~caller request with
    | Ok (Types.Err err, _) ->
      incr degraded;
      (* Resync the workload's view: an enclave the platform no
         longer serves (integrity-terminated, or its state diverged
         after a lost/killed operation) leaves the fleet. *)
      (match (err, effect) with
      | (Types.No_such_enclave | Types.Integrity_failure _), (`Added e | `Measured e | `Alloced e | `Freed e | `Destroyed e)
        ->
        drop fleet e.id
      | _ -> ())
    | Ok (response, latency_ns) -> (
      incr ok;
      Stats.add latencies latency_ns;
      match (effect, response) with
      | `Created, Types.Ok_created { enclave } ->
        fleet := { id = enclave; added = 0; measured = false; regions = [] } :: !fleet
      | `Added e, _ -> e.added <- e.added + 1
      | `Measured e, _ -> e.measured <- true
      | `Alloced e, Types.Ok_alloc { base_vpn; pages } -> e.regions <- (base_vpn, pages) :: e.regions
      | `Freed e, _ -> e.regions <- (match e.regions with [] -> [] | _ :: tl -> tl)
      | `Destroyed e, _ -> drop fleet e.id
      | _ -> ())
    | Error Emcall.Timeout -> (
      incr timeouts;
      (* The outcome of a timed-out primitive is unknown; drop the
         target so later ops do not cascade on stale bookkeeping. *)
      match effect with
      | `Added e | `Measured e | `Alloced e | `Freed e | `Destroyed e -> drop fleet e.id
      | `Created | `Noop -> ())
    | Error (Emcall.Cross_privilege | Emcall.Mailbox_full) -> incr degraded
  done;
  let audit = Hypertee_ems.Runtime.audit (Platform.Internals.runtime platform) in
  let events = Hypertee_ems.Audit.fault_events audit in
  let recovered = List.length (List.filter (fun e -> e.Hypertee_ems.Audit.recovered) events) in
  let enclaves_killed =
    List.length
      (List.filter (fun e -> e.Hypertee_ems.Audit.site = "memory-integrity") events)
  in
  let injected =
    match Platform.Internals.faults platform with Some inj -> Fault.total_fired inj | None -> 0
  in
  let pct p = if Stats.count latencies = 0 then 0.0 else Stats.percentile latencies p in
  {
    fault_rate;
    ops;
    ok = !ok;
    degraded = !degraded;
    timeouts = !timeouts;
    success_rate = float_of_int !ok /. float_of_int (Stdlib.max 1 ops);
    p50_ns = pct 50.0;
    p99_ns = pct 99.0;
    injected;
    recovered;
    enclaves_killed;
    retries = Emcall.retries (Platform.Internals.emcall platform);
    (* Availability is not enough: the survived platform must also
       still be *consistent*. *)
    invariant_violations =
      List.length (Platform.check platform).Hypertee_check.Invariant.violations;
  }

let run ~seed ~ops = List.map (fun fault_rate -> run_point ~seed ~fault_rate ~ops) default_rates

(* The one rendering of a sweep, shared by the CLI and the benchmark
   harness — callers that capture output pass their own channel. *)
let print ?(out = stdout) points =
  Hypertee_util.Table.print ~out
    ~headers:
      [ "fault rate"; "ops"; "success"; "degraded"; "timeouts"; "killed"; "p50 (us)";
        "p99 (us)"; "injected"; "recovered"; "retries"; "inv" ]
    ~aligns:
      Hypertee_util.Table.
        [ Right; Right; Right; Right; Right; Right; Right; Right; Right; Right; Right; Right ]
    (List.map
       (fun p ->
         [
           Printf.sprintf "%.2f" p.fault_rate;
           string_of_int p.ops;
           Hypertee_util.Table.pct (p.success_rate *. 100.0);
           string_of_int p.degraded;
           string_of_int p.timeouts;
           string_of_int p.enclaves_killed;
           Hypertee_util.Table.fmt_f ~digits:1 (p.p50_ns /. 1e3);
           Hypertee_util.Table.fmt_f ~digits:1 (p.p99_ns /. 1e3);
           string_of_int p.injected;
           string_of_int p.recovered;
           string_of_int p.retries;
           string_of_int p.invariant_violations;
         ])
       points)
