module Types = Hypertee_ems.Types
module Emcall = Hypertee_cs.Emcall
module Fault = Hypertee_faults.Fault
module Platform = Hypertee.Platform
module Xrng = Hypertee_util.Xrng
module Stats = Hypertee_util.Stats
module Oracle = Hypertee_check.Oracle

type point = {
  fault_rate : float;
  ops : int;
  ok : int;
  degraded : int;
  timeouts : int;
  success_rate : float;
  p50_ns : float;
  p99_ns : float;
  injected : int;
  recovered : int;
  enclaves_killed : int;
  retries : int;
  invariant_violations : int;
}

let default_rates = [ 0.0; 0.01; 0.02; 0.05; 0.1; 0.2 ]

(* Workload state per live enclave: the launch pipeline (EADD pages,
   then EMEAS) followed by steady-state management traffic. *)
type enclave_state = {
  id : Types.enclave_id;
  mutable added : int;
  mutable measured : bool;
  mutable regions : (int * int) list; (* (base_vpn, pages) from EALLOC *)
}

let launch_adds = 2
let fleet_target = 3

let page_data i = Bytes.make 64 (Char.chr (Char.code 'a' + (i mod 26)))

(* One iteration = exactly one EMCall. Picks the next sensible
   primitive for the current fleet state; the point of the sweep is
   that the *platform* keeps its promises, so the workload itself is
   always semantically valid against the state the workload believes
   in — divergence (a fault killed an enclave under us) lands in the
   [degraded] bucket and the bookkeeping resyncs. *)
let next_request rng fleet =
  match List.find_opt (fun e -> not e.measured) !fleet with
  | Some e when e.added < launch_adds ->
    ( Emcall.Os_kernel,
      Types.Add
        { enclave = e.id; vpn = 0x100 + e.added; data = page_data e.added; executable = true },
      `Added e )
  | Some e -> (Emcall.Os_kernel, Types.Measure { enclave = e.id }, `Measured e)
  | None ->
    if List.length !fleet < fleet_target then
      (Emcall.Os_kernel, Types.Create { config = Types.default_config }, `Created)
    else begin
      let arr = Array.of_list !fleet in
      let e = arr.(Xrng.int rng (Array.length arr)) in
      match Xrng.int rng 10 with
      | 0 | 1 | 2 -> (Emcall.User_enclave e.id, Types.Alloc { enclave = e.id; pages = 2 }, `Alloced e)
      | 3 | 4 -> (
        match e.regions with
        | (base_vpn, pages) :: _ ->
          (Emcall.User_enclave e.id, Types.Free { enclave = e.id; vpn = base_vpn; pages }, `Freed e)
        | [] -> (Emcall.User_enclave e.id, Types.Alloc { enclave = e.id; pages = 2 }, `Alloced e))
      | 5 | 6 ->
        ( Emcall.User_enclave e.id,
          Types.Attest { enclave = e.id; user_data = Bytes.of_string "chaos" },
          `Noop )
      | 7 ->
        (* Big enough to drain the EMS pool and force eviction of
           enclave heap pages — the path that decrypts lines through
           the encryption engine, where injected bit flips land.
           Evicted pages are unmapped until faulted back in, so stop
           trusting earlier EALLOC regions for the Free arm. *)
        List.iter (fun e -> e.regions <- []) !fleet;
        (Emcall.Os_kernel, Types.Writeback { pages_hint = 48 }, `Noop)
      | 8 -> (Emcall.Os_kernel, Types.Destroy { enclave = e.id }, `Destroyed e)
      | _ ->
        List.iter (fun e -> e.regions <- []) !fleet;
        (Emcall.Os_kernel, Types.Writeback { pages_hint = 8 }, `Noop)
    end

let drop fleet id = fleet := List.filter (fun e -> e.id <> id) !fleet

let run_point ~seed ~fault_rate ~ops =
  let faults = Fault.uniform ~seed:(Int64.add seed 0x5EEDL) ~rate:fault_rate () in
  let platform = Platform.create ~seed ~faults () in
  let rng = Xrng.create (Int64.add seed 17L) in
  let fleet = ref [] in
  let ok = ref 0 and degraded = ref 0 and timeouts = ref 0 in
  let latencies = Stats.create () in
  for _ = 1 to ops do
    let caller, request, effect = next_request rng fleet in
    match Platform.invoke_timed platform ~caller request with
    | Ok (Types.Err err, _) ->
      incr degraded;
      (* Resync the workload's view: an enclave the platform no
         longer serves (integrity-terminated, or its state diverged
         after a lost/killed operation) leaves the fleet. *)
      (match (err, effect) with
      | (Types.No_such_enclave | Types.Integrity_failure _), (`Added e | `Measured e | `Alloced e | `Freed e | `Destroyed e)
        ->
        drop fleet e.id
      | _ -> ())
    | Ok (response, latency_ns) -> (
      incr ok;
      Stats.add latencies latency_ns;
      match (effect, response) with
      | `Created, Types.Ok_created { enclave } ->
        fleet := { id = enclave; added = 0; measured = false; regions = [] } :: !fleet
      | `Added e, _ -> e.added <- e.added + 1
      | `Measured e, _ -> e.measured <- true
      | `Alloced e, Types.Ok_alloc { base_vpn; pages } -> e.regions <- (base_vpn, pages) :: e.regions
      | `Freed e, _ -> e.regions <- (match e.regions with [] -> [] | _ :: tl -> tl)
      | `Destroyed e, _ -> drop fleet e.id
      | _ -> ())
    | Error Emcall.Timeout -> (
      incr timeouts;
      (* The outcome of a timed-out primitive is unknown; drop the
         target so later ops do not cascade on stale bookkeeping. *)
      match effect with
      | `Added e | `Measured e | `Alloced e | `Freed e | `Destroyed e -> drop fleet e.id
      | `Created | `Noop -> ())
    | Error (Emcall.Cross_privilege | Emcall.Mailbox_full | Emcall.Busy) -> incr degraded
  done;
  let audit = Hypertee_ems.Runtime.audit (Platform.Internals.runtime platform) in
  let events = Hypertee_ems.Audit.fault_events audit in
  let recovered = List.length (List.filter (fun e -> e.Hypertee_ems.Audit.recovered) events) in
  let enclaves_killed =
    List.length
      (List.filter (fun e -> e.Hypertee_ems.Audit.site = "memory-integrity") events)
  in
  let injected =
    match Platform.Internals.faults platform with Some inj -> Fault.total_fired inj | None -> 0
  in
  let pct p = if Stats.count latencies = 0 then 0.0 else Stats.percentile latencies p in
  {
    fault_rate;
    ops;
    ok = !ok;
    degraded = !degraded;
    timeouts = !timeouts;
    success_rate = float_of_int !ok /. float_of_int (Stdlib.max 1 ops);
    p50_ns = pct 50.0;
    p99_ns = pct 99.0;
    injected;
    recovered;
    enclaves_killed;
    retries = Emcall.retries (Platform.Internals.emcall platform);
    (* Availability is not enough: the survived platform must also
       still be *consistent*. *)
    invariant_violations =
      List.length (Platform.check platform).Hypertee_check.Invariant.violations;
  }

let run ~seed ~ops = List.map (fun fault_rate -> run_point ~seed ~fault_rate ~ops) default_rates

(* --- Rolling restart: kill and recover every EMS shard ------------- *)

type restart_round = {
  shard_killed : int;
  outage_ops : int;
  outage_timeouts : int;  (** requests that hit the dead shard *)
  outage_errors : int;
  replayed : int;
  replay_mismatches : int;
  lost_enclaves : int;
  migration : string option;  (** post-recovery live-migration outcome *)
  round_violations : int;
  round_divergences : int;  (** oracle divergences accrued this round *)
}

type restart_report = {
  shards : int;
  total_ops : int;
  rounds : restart_round list;
  total_lost : int;
  recovered_events : int;  (** recovered fault events across every shard's audit *)
  recovery_sites : (string * int) list;  (** recovered events by audit site *)
  oracle_observed : int;
  oracle_divergences : int;
  final_violations : int;
}

let restart_default_ops = 400

let live_ids platform =
  Array.fold_left
    (fun acc rt -> Hypertee_ems.Runtime.live_enclaves rt @ acc)
    []
    (Platform.Internals.runtimes platform)
  |> List.sort_uniq compare

let rolling_restart ?(seed = 0xC4A05CADEL) ?(ops = restart_default_ops) ?(shards = 3)
    ?(domains = 1) () =
  if shards < 2 then invalid_arg "Chaos.rolling_restart: need at least 2 shards";
  let config =
    { Hypertee_arch.Config.default with Hypertee_arch.Config.ems_shards = shards; domains }
  in
  (* No fault plan: the only "fault" is the shard crash itself, so
     every timeout and recovery event in the report is attributable
     to the restart. *)
  let platform = Platform.create ~seed ~config () in
  let oracle = Platform.attach_oracle platform in
  let rng = Xrng.create (Int64.add seed 29L) in
  let fleet = ref [] in
  let timeouts = ref 0 and errors = ref 0 in
  (* Enclaves for which we issued EDESTROY, successfully or with an
     unknown (timed-out) outcome — excused from the lost-enclave
     accounting, because the destroy may legitimately land when the
     recovered shard drains its backlog. *)
  let destroy_issued : (Types.enclave_id, unit) Hashtbl.t = Hashtbl.create 16 in
  let step () =
    let caller, request, effect = next_request rng fleet in
    (match effect with
    | `Destroyed e -> Hashtbl.replace destroy_issued e.id ()
    | _ -> ());
    match Platform.invoke_timed platform ~caller request with
    | Ok (Types.Err err, _) -> (
      incr errors;
      match (err, effect) with
      | ( (Types.No_such_enclave | Types.Integrity_failure _),
          (`Added e | `Measured e | `Alloced e | `Freed e | `Destroyed e) ) ->
        drop fleet e.id
      | _ -> ())
    | Ok (response, _) -> (
      match (effect, response) with
      | `Created, Types.Ok_created { enclave } ->
        fleet := { id = enclave; added = 0; measured = false; regions = [] } :: !fleet
      | `Added e, _ -> e.added <- e.added + 1
      | `Measured e, _ -> e.measured <- true
      | `Alloced e, Types.Ok_alloc { base_vpn; pages } ->
        e.regions <- (base_vpn, pages) :: e.regions
      | `Freed e, _ -> e.regions <- (match e.regions with [] -> [] | _ :: tl -> tl)
      | `Destroyed e, _ -> drop fleet e.id
      | _ -> ())
    | Error Emcall.Timeout -> (
      incr timeouts;
      match effect with
      | `Added e | `Measured e | `Alloced e | `Freed e | `Destroyed e -> drop fleet e.id
      | `Created | `Noop -> ())
    | Error (Emcall.Cross_privilege | Emcall.Mailbox_full | Emcall.Busy) -> incr errors
  in
  let run_phase n =
    for _ = 1 to n do
      step ()
    done
  in
  let steady = Stdlib.max 20 (ops / (shards + 1)) in
  let outage_ops = Stdlib.max 10 (ops / (5 * shards)) in
  let issued = ref 0 in
  let divergences_seen = ref 0 in
  let total_lost = ref 0 in
  let rounds =
    List.init shards (fun s ->
        (* Steady traffic, then the crash. *)
        run_phase steady;
        issued := !issued + steady;
        let pre = live_ids platform in
        Platform.kill_shard platform s;
        let t0 = !timeouts and e0 = !errors in
        run_phase outage_ops;
        issued := !issued + outage_ops;
        let recovery = Platform.recover_shard platform s in
        (* Every enclave alive before the crash must still be alive —
           reconstructed by journal replay if it lived on the dead
           shard — unless we ourselves asked for its destruction. *)
        let survivors = live_ids platform in
        let lost =
          List.filter
            (fun id ->
              (not (Hashtbl.mem destroy_issued id)) && not (List.mem id survivors))
            pre
        in
        total_lost := !total_lost + List.length lost;
        (* Post-recovery rebalance: live-migrate one idle enclave off
           the recovered shard's successor ring. *)
        let migration =
          let candidate =
            List.find_opt
              (fun e ->
                e.measured
                &&
                let s = Platform.shard_of_enclave platform e.id in
                match
                  Hypertee_ems.Runtime.find_enclave
                    (Platform.Internals.runtime_of_shard platform s)
                    e.id
                with
                | Some enc ->
                  enc.Hypertee_ems.Enclave.state = Hypertee_ems.Enclave.Measured
                  && enc.Hypertee_ems.Enclave.attached_shms = []
                | None -> false)
              !fleet
          in
          Option.map
            (fun e ->
              let target = (Platform.shard_of_enclave platform e.id + 1) mod shards in
              match Platform.migrate platform ~enclave:e.id ~target with
              | Platform.Migrated -> Printf.sprintf "enclave %d -> shard %d" e.id target
              | Platform.Migration_aborted reason -> "aborted: " ^ reason
              | Platform.Migration_crashed { after; _ } ->
                "crashed after " ^ Platform.migration_phase_name after)
            candidate
        in
        let report = Platform.check platform in
        let diverged_now = Oracle.divergence_count oracle in
        let round_divergences = diverged_now - !divergences_seen in
        divergences_seen := diverged_now;
        {
          shard_killed = s;
          outage_ops;
          outage_timeouts = !timeouts - t0;
          outage_errors = !errors - e0;
          replayed = recovery.Platform.replayed;
          replay_mismatches = recovery.Platform.mismatches;
          lost_enclaves = List.length lost;
          migration;
          round_violations = List.length report.Hypertee_check.Invariant.violations;
          round_divergences;
        })
  in
  (* Tail traffic over the fully recovered platform, then the
     end-of-run sweeps. *)
  run_phase steady;
  issued := !issued + steady;
  let final = Platform.check ~deep:true platform in
  Platform.detach_oracle platform;
  let events =
    Array.fold_left
      (fun acc rt ->
        List.filter
          (fun ev -> ev.Hypertee_ems.Audit.recovered)
          (Hypertee_ems.Audit.fault_events (Hypertee_ems.Runtime.audit rt))
        @ acc)
      []
      (Platform.Internals.runtimes platform)
  in
  let recovery_sites =
    List.sort_uniq compare (List.map (fun ev -> ev.Hypertee_ems.Audit.site) events)
    |> List.map (fun site ->
           (site, List.length (List.filter (fun ev -> ev.Hypertee_ems.Audit.site = site) events)))
  in
  Platform.shutdown platform;
  {
    shards;
    total_ops = !issued;
    rounds;
    total_lost = !total_lost;
    recovered_events = List.length events;
    recovery_sites;
    oracle_observed = Oracle.observed oracle;
    oracle_divergences = Oracle.divergence_count oracle;
    final_violations = List.length final.Hypertee_check.Invariant.violations;
  }

let restart_clean r =
  r.total_lost = 0 && r.oracle_divergences = 0 && r.final_violations = 0
  && List.for_all (fun round -> round.round_violations = 0 && round.replay_mismatches = 0) r.rounds

let print_restart ?(out = stdout) r =
  Printf.fprintf out
    "rolling restart: %d shard(s) killed and recovered in turn, %d ops (no fault plan)\n"
    r.shards r.total_ops;
  Hypertee_util.Table.print ~out
    ~headers:
      [ "killed"; "outage ops"; "timeouts"; "errors"; "replayed"; "mismatch"; "lost";
        "inv"; "oracle div"; "post-recovery migration" ]
    ~aligns:
      Hypertee_util.Table.
        [ Right; Right; Right; Right; Right; Right; Right; Right; Right; Left ]
    (List.map
       (fun round ->
         [
           Printf.sprintf "shard %d" round.shard_killed;
           string_of_int round.outage_ops;
           string_of_int round.outage_timeouts;
           string_of_int round.outage_errors;
           string_of_int round.replayed;
           string_of_int round.replay_mismatches;
           string_of_int round.lost_enclaves;
           string_of_int round.round_violations;
           string_of_int round.round_divergences;
           (match round.migration with Some m -> m | None -> "-");
         ])
       r.rounds);
  Printf.fprintf out "recovered fault events: %d (%s)\n" r.recovered_events
    (String.concat ", "
       (List.map (fun (site, n) -> Printf.sprintf "%s: %d" site n) r.recovery_sites));
  Printf.fprintf out "oracle: %d observed, %d divergence(s); lost enclaves: %d\n"
    r.oracle_observed r.oracle_divergences r.total_lost;
  Printf.fprintf out "end-of-run deep invariant sweep: %d violation(s)\n" r.final_violations;
  Printf.fprintf out "rolling restart %s\n" (if restart_clean r then "PASSED" else "FAILED")

(* The one rendering of a sweep, shared by the CLI and the benchmark
   harness — callers that capture output pass their own channel. *)
let print ?(out = stdout) points =
  Hypertee_util.Table.print ~out
    ~headers:
      [ "fault rate"; "ops"; "success"; "degraded"; "timeouts"; "killed"; "p50 (us)";
        "p99 (us)"; "injected"; "recovered"; "retries"; "inv" ]
    ~aligns:
      Hypertee_util.Table.
        [ Right; Right; Right; Right; Right; Right; Right; Right; Right; Right; Right; Right ]
    (List.map
       (fun p ->
         [
           Printf.sprintf "%.2f" p.fault_rate;
           string_of_int p.ops;
           Hypertee_util.Table.pct (p.success_rate *. 100.0);
           string_of_int p.degraded;
           string_of_int p.timeouts;
           string_of_int p.enclaves_killed;
           Hypertee_util.Table.fmt_f ~digits:1 (p.p50_ns /. 1e3);
           Hypertee_util.Table.fmt_f ~digits:1 (p.p99_ns /. 1e3);
           string_of_int p.injected;
           string_of_int p.recovered;
           string_of_int p.retries;
           string_of_int p.invariant_violations;
         ])
       points)
