(** Scalability sweep: CS cores × EMS shards × doorbell batch size.

    The paper's scalability argument (Sec. VII, Fig. 11) rests on
    the EMS side keeping up as CS core count grows. This sweep
    exercises the two mechanisms the platform has for that:

    - {b batching}: one doorbell drains a batch of pending requests
      through the EMS scheduler, so the shared transport round
      (fabric hops + doorbell interrupt + watchdog sweep) amortizes
      — modelled per-EMCall overhead strictly decreases with batch
      size;
    - {b sharding}: N independent EMS instances serve disjoint
      enclave id classes behind the same gate, so aggregate
      primitive throughput scales with shard count.

    Deterministic given [seed]: every platform, workload decision
    and timing draw derives from it. *)

type point = {
  cs_cores : int;
  shards : int;
  batch : int;
  ops : int;  (** EALLOC primitives issued *)
  ok : int;  (** served successfully *)
  overhead_ns : float;
      (** modelled per-EMCall gate + transport overhead at this
          batch size (analytic, jitter-free) *)
  mean_latency_ns : float;  (** measured mean round trip *)
  ems_busy_ns : float;  (** summed EMS-side makespan of all rounds *)
  throughput_mops : float;  (** ok / ems_busy, in primitives/us *)
  invariant_violations : int;
      (** broken platform invariants at the end of the point
          ({!Hypertee.Platform.check}); 0 is the claim under test *)
}

val default_batches : int list
val default_shards : int list
val default_ops : int

(** One grid point on a fresh platform. [domains] (default 1) sets
    [Config.domains]: with more than one, the platform fans each
    doorbell round's per-shard drains over worker domains (modelled
    time is identical; only wall-clock changes). The platform —
    including any worker pool — is torn down before returning. *)
val run_point :
  seed:int64 -> ?domains:int -> cs_cores:int -> shards:int -> batch:int -> ops:int ->
  unit -> point

(** Batching amortization at one shard (over [default_batches]). *)
val batch_sweep :
  seed:int64 -> ?domains:int -> ?cs_cores:int -> ?ops:int -> unit -> point list

(** Shard scaling at a fixed batch (over [default_shards]). *)
val shard_sweep :
  seed:int64 -> ?domains:int -> ?cs_cores:int -> ?batch:int -> ?ops:int -> unit -> point list

(** Both sweeps: [(batch_points, shard_points)]. *)
val run : seed:int64 -> ?domains:int -> ?ops:int -> unit -> point list * point list

(** Render both sweeps as tables to [out] (default stdout). *)
val print : ?out:out_channel -> seed:int64 -> ?domains:int -> ?ops:int -> unit -> unit

(** {2 Hot-shard rebalancing}

    The elasticity payoff measurement: a 4-shard platform whose whole
    enclave population is homed on shard 0 (the hot shard), measured
    under the batched-doorbell makespan model, then rebalanced by
    {!Hypertee.Platform.migrate} — three quarters of the fleet
    live-migrated to the idle shards, keeping their ids — and
    measured again. The per-shard busy attribution follows the gate's
    migration route overrides, so the "after" makespan reflects real
    post-migration routing, not the residue classes. *)

type rebalance_report = {
  shards : int;
  fleet : int;  (** hot-shard enclave count before rebalancing *)
  migrated : int;
  migration_failures : int;
  rebalance_ops : int;  (** EALLOC primitives per measurement pass *)
  busy_before_ns : float;  (** summed round makespans, skewed placement *)
  busy_after_ns : float;  (** same workload after rebalancing *)
  speedup : float;  (** busy_before / busy_after *)
  hot_share_before : float;  (** shard 0's fraction of total busy time *)
  hot_share_after : float;
  rebalance_violations : int;  (** {!Hypertee.Platform.check} at the end *)
}

(** [rebalance ()] runs the scenario; deterministic given [seed]. *)
val rebalance : ?seed:int64 -> ?batch:int -> ?ops:int -> unit -> rebalance_report

(** Render the before/after table to [out] (default stdout). *)
val print_rebalance : ?out:out_channel -> rebalance_report -> unit
