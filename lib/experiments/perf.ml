(* Wall-clock microbenchmarks of the crypto data plane.

   Unlike every other experiment (which reports *modelled* time from
   the cost model), this harness measures real elapsed time of the
   simulator's own hot paths, so the BENCH_perf.json trajectory shows
   whether the implementation is getting faster or slower across PRs.
   Numbers are machine-dependent by design; the speedup-vs-reference
   ratio is the portable signal. *)

module Aes = Hypertee_crypto.Aes
module Sha256 = Hypertee_crypto.Sha256
module Keccak = Hypertee_crypto.Keccak
module Hmac = Hypertee_crypto.Hmac
module Phys_mem = Hypertee_arch.Phys_mem
module Mem_encryption = Hypertee_arch.Mem_encryption
module Table = Hypertee_util.Table
module Record = Hypertee_channel.Record
module Wire = Hypertee_channel.Wire

let page_size = Hypertee_util.Units.page_size

type sample = {
  target : string;
  metric : string;
  value : float;
  unit_ : string;
  runs : int;
}

(* Host provenance recorded alongside the samples: raw MB/s numbers
   are machine-dependent by design, so a reader (or the regression
   guard) needs to know what machine produced a file. *)
type host = {
  hardware_threads : int;
  recommended_domains : int;
  ocaml_version : string;
  word_size : int;
  os_type : string;
}

let host_info () =
  {
    hardware_threads = Domain.recommended_domain_count ();
    recommended_domains = Hypertee_util.Domain_pool.recommended_domains ();
    ocaml_version = Sys.ocaml_version;
    word_size = Sys.word_size;
    os_type = Sys.os_type;
  }

(* Repeat [f] until at least [min_time] seconds elapse, growing the
   repetition count geometrically; returns (ns per call, calls). *)
let time_ns ~min_time f =
  f () (* warmup, also JIT-free but faults in lazy pages/tables *);
  let rec go reps =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt >= min_time then (dt *. 1e9 /. float_of_int reps, reps)
    else
      let guess =
        if dt <= 0. then reps * 10
        else int_of_float (ceil (float_of_int reps *. min_time *. 1.3 /. dt))
      in
      go (Stdlib.max (reps * 2) guess)
  in
  go 1

let mb_per_s ~bytes ns = float_of_int bytes /. (ns /. 1e9) /. 1e6

let throughput ~target ~min_time ~bytes f =
  let ns, runs = time_ns ~min_time f in
  { target; metric = "throughput"; value = mb_per_s ~bytes ns; unit_ = "MB/s"; runs }

let latency ~target ~min_time f =
  let ns, runs = time_ns ~min_time f in
  { target; metric = "latency"; value = ns; unit_ = "ns/op"; runs }

let run ?(quick = false) ?min_time_s () =
  let min_time =
    match min_time_s with Some s -> s | None -> if quick then 0.05 else 0.25
  in
  let key = Aes.expand (Bytes.init 16 (fun i -> Char.chr (0x40 + i))) in
  let page = Bytes.init page_size (fun i -> Char.chr ((i * 31) land 0xFF)) in
  let dst = Bytes.create page_size in
  let tweak = Bytes.make 16 '\000' in
  Hypertee_util.Bytes_ext.set_u64_be tweak 8 7L;
  let samples = ref [] in
  let push s = samples := s :: !samples in
  (* Each optimised primitive is measured next to its retained
     reference implementation; the ratio is the portable signal the
     regression guard gates on (raw MB/s moves with the machine). *)
  let push_speedup ~target ~fast ~reference =
    push fast;
    push reference;
    push
      {
        target;
        metric = "speedup-vs-reference";
        value = fast.value /. reference.value;
        unit_ = "x";
        runs = fast.runs;
      }
  in
  (* AES-CTR page encryption: the T-table data plane vs the retained
     pre-T-table reference, on the same 4 KiB page and tweak. *)
  push_speedup ~target:"aes-ctr-page"
    ~fast:
      (throughput ~target:"aes-ctr-page" ~min_time ~bytes:page_size (fun () ->
           Aes.encrypt_page_into key ~page_number:7 ~src:page ~src_off:0 ~dst ~dst_off:0
             page_size))
    ~reference:
      (throughput ~target:"aes-ctr-page-reference" ~min_time ~bytes:page_size (fun () ->
           ignore (Aes.ctr_reference key ~nonce:tweak page)));
  (* SHA-256: one-shot page digest and a 64 KiB streaming feed, the
     shape of enclave measurement during Create_Enclave. *)
  push
    (throughput ~target:"sha256-page" ~min_time ~bytes:page_size (fun () ->
         ignore (Sha256.digest page)));
  let stream_pages = 16 in
  let stream_ctx = Sha256.init () in
  push
    (throughput ~target:"sha256-stream-64k" ~min_time ~bytes:(stream_pages * page_size)
       (fun () ->
         Sha256.reset stream_ctx;
         for _ = 1 to stream_pages do
           Sha256.feed_sub stream_ctx page ~off:0 ~len:page_size
         done;
         Sha256.finalize_into stream_ctx dst ~off:0));
  (* HMAC and the SHA-3 paths behind sealing and the MEE MAC. *)
  let mac_key = Bytes.make 32 'K' in
  push
    (throughput ~target:"hmac-sha256-page" ~min_time ~bytes:page_size (fun () ->
         ignore (Hmac.hmac ~key:mac_key page)));
  (* SHA-3 / the MEE MAC: the unrolled lane-level permutation vs the
     retained int64-sponge reference (bit-identical digests/tags). *)
  push_speedup ~target:"sha3-256-page"
    ~fast:
      (throughput ~target:"sha3-256-page" ~min_time ~bytes:page_size (fun () ->
           ignore (Keccak.sha3_256 page)))
    ~reference:
      (throughput ~target:"sha3-256-page-reference" ~min_time ~bytes:page_size (fun () ->
           ignore (Keccak.Reference.sha3_256 page)));
  push_speedup ~target:"keccak-mac28-page"
    ~fast:
      (throughput ~target:"keccak-mac28-page" ~min_time ~bytes:page_size (fun () ->
           ignore (Keccak.mac_28bit ~key:mac_key page)))
    ~reference:
      (throughput ~target:"keccak-mac28-page-reference" ~min_time ~bytes:page_size (fun () ->
           ignore (Keccak.Reference.mac_28bit ~key:mac_key page)));
  (* MEE round trip: encrypt+MAC into DRAM, then verify+decrypt back —
     what every enclave page touch pays. The reference engine runs the
     reference sponge with the verified-line cache disabled: the
     pre-optimisation integrity path, kept honest in the same build. *)
  let mee = Mem_encryption.create ~slots:4 () in
  Mem_encryption.program mee ~key_id:1 (Bytes.make 16 'm');
  let mem = Phys_mem.create ~frames:8 in
  let mee_ref = Mem_encryption.create ~reference_mac:true ~slots:4 () in
  Mem_encryption.program mee_ref ~key_id:1 (Bytes.make 16 'm');
  let mem_ref = Phys_mem.create ~frames:8 in
  let store_load mee mem () =
    Mem_encryption.write_page mee mem ~key_id:1 ~frame:3 page;
    Mem_encryption.read_range_into mee mem ~key_id:1 ~frame:3 ~off:0 ~len:page_size dst
      ~dst_off:0
  in
  push_speedup ~target:"mee-store-load-page"
    ~fast:
      (throughput ~target:"mee-store-load-page" ~min_time ~bytes:(2 * page_size)
         (store_load mee mem))
    ~reference:
      (throughput ~target:"mee-store-load-page-reference" ~min_time ~bytes:(2 * page_size)
         (store_load mee_ref mem_ref));
  (* Read paths of an unmodified frame: hot rides the verified-line
     cache (AES only); cold flushes it first, so every read re-runs
     the sponge — the spread between the two is what the cache buys. *)
  Mem_encryption.write_page mee mem ~key_id:1 ~frame:5 page;
  push
    (throughput ~target:"mee-read-page-hot" ~min_time ~bytes:page_size (fun () ->
         Mem_encryption.read_range_into mee mem ~key_id:1 ~frame:5 ~off:0 ~len:page_size dst
           ~dst_off:0));
  push
    (throughput ~target:"mee-read-page-cold" ~min_time ~bytes:page_size (fun () ->
         Mem_encryption.flush_mac_cache mee;
         Mem_encryption.read_range_into mee mem ~key_id:1 ~frame:5 ~off:0 ~len:page_size dst
           ~dst_off:0));
  (* End-to-end Create_Enclave: ECREATE + EADD of the image + EMEAS,
     measurement-dominated. *)
  let platform = Hypertee.Platform.create ~seed:0x9E2FL () in
  let image =
    Hypertee.Sdk.image_of_code
      ~code:(Bytes.make (4 * page_size) 'c')
      ~data:(Bytes.make (2 * page_size) 'd')
      ()
  in
  push
    (latency ~target:"create-enclave" ~min_time (fun () ->
         match Hypertee.Sdk.launch platform image with
         | Ok enclave -> (
           match Hypertee.Sdk.destroy platform ~enclave with
           | Ok () -> ()
           | Error m -> failwith m)
         | Error m -> failwith m));
  (* Warm-pool fast path: client-perceived create latency. Each side
     times only the acquisition call (EWARM pop of a parked enclave
     vs the full cold ECREATE/EADD/EMEAS launch); the teardown that
     recycles state for the next iteration — ERETIRE's security
     rehash, the cold destroy's scrub — runs *between* timed
     sections on both sides, mirroring the cloud driver where retire
     happens at session end, off the create path. Both sides are
     latency samples, so the speedup ratio is reference/fast. *)
  let timed_section ~target step =
    let _ : float = step () (* warmup *) in
    let acc = ref 0.0 in
    let n = ref 0 in
    while (!acc < min_time && !n < 256) || !n < 3 do
      acc := !acc +. step ();
      incr n
    done;
    {
      target;
      metric = "latency";
      value = !acc *. 1e9 /. float_of_int !n;
      unit_ = "ns/op";
      runs = !n;
    }
  in
  (match Hypertee.Sdk.launch platform image with
  | Ok e -> (
    match Hypertee.Sdk.retire platform ~enclave:e with
    | Ok () -> ()
    | Error m -> failwith m)
  | Error m -> failwith m);
  let warm_create =
    timed_section ~target:"cloud-warm-create" (fun () ->
        let t0 = Unix.gettimeofday () in
        let r = Hypertee.Sdk.warm_launch platform image in
        let dt = Unix.gettimeofday () -. t0 in
        (match r with
        | Ok (e, `Warm) -> (
          match Hypertee.Sdk.retire platform ~enclave:e with
          | Ok () -> ()
          | Error m -> failwith m)
        | Ok (_, `Cold) -> failwith "warm pool missed during benchmark"
        | Error m -> failwith m);
        dt)
  in
  let cold_create =
    timed_section ~target:"cloud-warm-create-reference" (fun () ->
        let t0 = Unix.gettimeofday () in
        let r = Hypertee.Sdk.launch platform image in
        let dt = Unix.gettimeofday () -. t0 in
        (match r with
        | Ok enclave -> (
          match Hypertee.Sdk.destroy platform ~enclave with
          | Ok () -> ()
          | Error m -> failwith m)
        | Error m -> failwith m);
        dt)
  in
  push warm_create;
  push cold_create;
  push
    {
      target = "cloud-warm-create";
      metric = "speedup-vs-reference";
      value = cold_create.value /. warm_create.value;
      unit_ = "x";
      runs = warm_create.runs;
    };
  (* Secure-channel data plane (docs/PROTOCOL.md). chan-handshake is
     the full three-flight attested establishment through the gate —
     EATTEST/RSA-dominated. The record pair measures what the reused
     keyed-sponge state buys per record MAC: hot keeps the post-key
     state, cold re-absorbs the key every record (§3.3). *)
  let listener =
    match Hypertee.Sdk.launch platform image with
    | Ok e -> e
    | Error m -> failwith m
  in
  push
    (latency ~target:"chan-handshake" ~min_time (fun () ->
         match Hypertee.Secure_channel.establish platform ~listener () with
         | Ok (client, server) ->
           (match Hypertee.Secure_channel.close client with
           | Ok () -> ()
           | Error m -> failwith m);
           (match Hypertee.Secure_channel.close server with
           | Ok () -> ()
           | Error m -> failwith m)
         | Error m -> failwith m));
  let rec_key = Bytes.init 16 (fun i -> Char.chr (0x60 + i)) in
  let rec_len = Wire.header_len + Wire.max_plaintext in
  let rec_buf = Bytes.init rec_len (fun i -> Char.chr ((i * 17) land 0xFF)) in
  let rec_tag = Bytes.create Wire.tag_len in
  let rec_keyed = Keccak.keyed_init ~key:rec_key in
  push
    (throughput ~target:"chan-record-mac-hot" ~min_time ~bytes:rec_len (fun () ->
         Keccak.mac16_keyed_into rec_keyed rec_buf ~off:0 ~len:rec_len rec_tag ~tag_off:0));
  push
    (throughput ~target:"chan-record-mac-cold" ~min_time ~bytes:rec_len (fun () ->
         let k = Keccak.keyed_init ~key:rec_key in
         Keccak.mac16_keyed_into k rec_buf ~off:0 ~len:rec_len rec_tag ~tag_off:0));
  (* One 4 KiB message sealed, transported and opened by the record
     layer vs the retained reference seal path doing the *same unit of
     work* per chunk: reference AES-CTR plus the reference sponge MAC
     on seal, tag recheck plus reference AES-CTR again on open. (An
     earlier revision compared against bare chunk copies — a near-no-op
     whose "ratio" only measured memcpy bandwidth.) Rekeys are pushed
     out of reach so the ratio measures the steady state. *)
  let master = Bytes.init 32 (fun i -> Char.chr ((i * 7) land 0xFF)) in
  let th = Bytes.init 32 (fun i -> Char.chr ((i * 13) land 0xFF)) in
  let writer = Record.create ~role:Record.Client ~master ~transcript:th ~rekey_after:max_int () in
  let reader = Record.create ~role:Record.Server ~master ~transcript:th ~rekey_after:max_int () in
  let ref_seal_key = Aes.expand (Bytes.sub master 0 16) in
  let ref_mac_key = Bytes.sub master 16 16 in
  let ref_nonce = Bytes.make 16 '\000' in
  let ref_out = Bytes.create page_size in
  push_speedup ~target:"chan-record-seal"
    ~fast:
      (throughput ~target:"chan-record-seal" ~min_time ~bytes:page_size (fun () ->
           match Record.seal_message writer page with
           | Error e -> failwith (Record.error_message e)
           | Ok segs ->
             List.iter
               (fun seg ->
                 match Record.deliver reader seg with
                 | Ok _ -> ()
                 | Error e -> failwith (Record.error_message e))
               segs))
    ~reference:
      (throughput ~target:"chan-record-seal-reference" ~min_time ~bytes:page_size (fun () ->
           let off = ref 0 in
           while !off < page_size do
             let n = Stdlib.min Wire.max_plaintext (page_size - !off) in
             Hypertee_util.Bytes_ext.set_u64_be ref_nonce 8 (Int64.of_int !off);
             (* seal: encrypt the chunk, MAC the ciphertext *)
             let ct = Aes.ctr_reference ref_seal_key ~nonce:ref_nonce (Bytes.sub page !off n) in
             let tag = Keccak.Reference.mac_28bit ~key:ref_mac_key ct in
             (* open: recheck the tag, decrypt back *)
             if Keccak.Reference.mac_28bit ~key:ref_mac_key ct <> tag then
               failwith "reference seal path: tag mismatch";
             let pt = Aes.ctr_reference ref_seal_key ~nonce:ref_nonce ct in
             Bytes.blit pt 0 ref_out !off n;
             off := !off + n
           done));
  (* A fig6-style sweep end to end: wall-clock of the discrete-event
     simulation the paper figures are built from. *)
  let requests = if quick then 512 else 4096 in
  let t0 = Unix.gettimeofday () in
  ignore
    (Fig6.run ~seed:0x516L ~cs_cores:4 ~ems_cores:2 ~ems_kind:Hypertee_arch.Config.Medium
       ~requests);
  push
    {
      target = "fig6-sweep";
      metric = "wall-clock";
      value = Unix.gettimeofday () -. t0;
      unit_ = "s";
      runs = requests;
    };
  (* p99 session latency at the saturation knee of a one-shard cloud
     sweep. Unlike the MB/s samples this is *modelled* virtual time —
     deterministic for the seed and machine-independent — so the
     baseline comparator gates it as an upper bound. *)
  let cloud = Cloud.run ~seed:0xC10D5L ~quick:true ~shard_counts:[ 1 ] () in
  (match cloud.Cloud.curves with
  | { Cloud.points; knee_mult; _ } :: _ -> (
    let at_knee =
      match knee_mult with
      | Some m -> List.find_opt (fun (p : Cloud.point) -> p.Cloud.offered_mult = m) points
      | None -> None
    in
    match at_knee with
    | Some p ->
      push
        {
          target = "cloud-p99-at-knee";
          metric = "p99-latency";
          value = p.Cloud.p99_ms;
          unit_ = "ms";
          runs = p.Cloud.completed;
        }
    | None -> ())
  | [] -> ());
  List.rev !samples

let find samples ~target ~metric =
  List.find_opt (fun s -> s.target = target && s.metric = metric) samples

let print ?(out = stdout) samples =
  Table.print ~out
    ~headers:[ "target"; "metric"; "value"; "unit"; "runs" ]
    ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Left; Table.Right ]
    (List.map
       (fun s ->
         [ s.target; s.metric; Table.fmt_f ~digits:2 s.value; s.unit_; string_of_int s.runs ])
       samples);
  match find samples ~target:"aes-ctr-page" ~metric:"speedup-vs-reference" with
  | Some s ->
    Printf.fprintf out "AES-CTR 4 KiB page: %s over the pre-T-table reference\n"
      (Table.speedup s.value)
  | None -> ()

let write_json ~path samples =
  let h = host_info () in
  let oc = open_out path in
  output_string oc "{\n";
  Printf.fprintf oc
    "  \"host\": {\"hardware_threads\": %d, \"recommended_domains\": %d, \"ocaml_version\": \
     %S, \"word_size\": %d, \"os_type\": %S},\n"
    h.hardware_threads h.recommended_domains h.ocaml_version h.word_size h.os_type;
  output_string oc "  \"samples\": [\n";
  let n = List.length samples in
  List.iteri
    (fun i s ->
      Printf.fprintf oc
        "    {\"target\": %S, \"metric\": %S, \"value\": %.6f, \"unit\": %S, \"runs\": %d}%s\n"
        s.target s.metric s.value s.unit_ s.runs
        (if i = n - 1 then "" else ","))
    samples;
  output_string oc "  ]\n}\n";
  close_out oc

(* --- Regression guard against a committed baseline. --- *)

type regression = {
  r_target : string;
  r_metric : string;
  r_baseline : float;
  r_current : float;
}

(* Line-based scan of our own emitter's output (both the current
   {host, samples} object and the older flat-array format): one
   sample object per line, keys in fixed order. No JSON library in
   the tree, and none needed to re-read what [write_json] wrote. *)
let load_baseline ~path =
  let ic = open_in path in
  let entries = ref [] in
  (try
     while true do
       let line = input_line ic in
       match
         Scanf.sscanf line " {%S: %S, %S: %S, %S: %f" (fun k1 t k2 m k3 v ->
             if k1 = "target" && k2 = "metric" && k3 = "value" then Some (t, m, v) else None)
       with
       | Some e -> entries := e :: !entries
       | None -> ()
       | exception Scanf.Scan_failure _ -> ()
       | exception End_of_file -> () (* short line, not a sample *)
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !entries

(* Gate the speedup-vs-reference ratios (as a floor: both sides of
   each ratio run on the same machine in the same process, so the
   ratio is stable across hosts, whereas raw MB/s gated against a
   baseline file produced elsewhere would flap on every hardware
   difference) and the modelled p99-latency samples (as a ceiling:
   virtual time is deterministic for the seed, so any growth is a
   genuine cost-model or scheduling regression). A real data-plane
   regression shows up in the ratio — the reference implementations
   don't get faster by accident. *)
let compare_to_baseline ~baseline ~tolerance_pct samples =
  List.filter_map
    (fun s ->
      let direction =
        match s.metric with
        | "speedup-vs-reference" -> Some `Floor
        | "p99-latency" -> Some `Ceiling
        | _ -> None
      in
      match direction with
      | None -> None
      | Some dir -> (
        match
          List.find_opt (fun (t, m, (_ : float)) -> t = s.target && m = s.metric) baseline
        with
        | None -> None
        | Some (_, _, bv) ->
          let tol = tolerance_pct /. 100. in
          let regressed =
            match dir with
            | `Floor -> bv > 0. && s.value < bv *. (1. -. tol)
            | `Ceiling -> bv > 0. && s.value > bv *. (1. +. tol)
          in
          if regressed then
            Some { r_target = s.target; r_metric = s.metric; r_baseline = bv; r_current = s.value }
          else None))
    samples
