module Platform = Hypertee.Platform
module Sdk = Hypertee.Sdk
module Emcall = Hypertee_cs.Emcall
module Types = Hypertee_ems.Types
module Config = Hypertee_arch.Config
module Engine = Hypertee_sim.Engine
module Resource = Hypertee_sim.Resource
module Xrng = Hypertee_util.Xrng
module Stats = Hypertee_util.Stats
module Table = Hypertee_util.Table
module Tenants = Hypertee_workloads.Tenants
module Oracle = Hypertee_check.Oracle
module Invariant = Hypertee_check.Invariant

(* Enclave-as-a-service load driver (the cloud experiment).

   A tenant fleet (Tenants) offers sessions to the platform; each
   session is the full service lifecycle issued as real EMCalls:

     EWARM (warm-pool hit) | ECREATE + EADD* + EMEAS + EATTEST (miss)
     -> ECHOPEN + ECHACC + ops x (ECHSEND + ECHRECV) + ECHCLOSE
     -> ERETIRE

   Timing is a per-shard FCFS single-server queue in virtual time: a
   discrete-event engine orders every call across overlapping
   sessions, [Platform.invoke_timed]'s modelled round trip is the
   service time, and session latency is completion minus arrival.
   Admission control (the gate's token bucket) runs on the same
   virtual clock, so the whole sweep is deterministic given the seed.

   Every point ends with a deep invariant sweep and the differential
   oracle's verdict — the churn the sweep generates (thousands of
   create/park/revive/destroy cycles) is exactly the load the warm
   pool and teardown paths must survive leak-free. *)

let session_config =
  {
    Types.code_pages = 1;
    data_pages = 1;
    heap_pages = 4;
    stack_pages = 1;
    shared_pages = 1;
  }

let catalog spec =
  Array.init spec.Tenants.images (fun k ->
      let code, data = Tenants.image_bytes ~image:k in
      let image = Sdk.image_of_code ~config:session_config ~code ~data () in
      (image, Sdk.expected_measurement image))

(* --- one simulated platform under one offered load ----------------- *)

type sim = {
  platform : Platform.t;
  engine : Engine.t;
  resources : Resource.t array;
  shards : int;
  images : (Sdk.image * bytes) array;
  admission_rate : float option;  (* requests/s, for retry pacing *)
  mutable last_adm_ns : float;
  mutable rr : int;  (* queue-model shard guess for enclave-less calls *)
  latencies : Stats.t;
  cold_latencies : Stats.t;
  warm_latencies : Stats.t;
  mutable calls : int;
  mutable completed : int;
  mutable shed_sessions : int;
  mutable degraded : int;
  mutable warm_hits : int;
  mutable cold_launches : int;
}

let make_sim ~seed ~shards ~domains ~admission ~spec () =
  let config = { Config.default with Config.ems_shards = shards; domains } in
  let platform = Platform.create ~seed ~config () in
  let oracle = Platform.attach_oracle platform in
  Option.iter
    (fun rate -> Platform.set_admission platform ~rate_per_s:rate ~burst:64)
    admission;
  let engine = Engine.create () in
  ( {
      platform;
      engine;
      resources = Array.init shards (fun _ -> Resource.create engine ~servers:1);
      shards;
      images = catalog spec;
      admission_rate = admission;
      last_adm_ns = 0.0;
      rr = 0;
      latencies = Stats.create ();
      cold_latencies = Stats.create ();
      warm_latencies = Stats.create ();
      calls = 0;
      completed = 0;
      shed_sessions = 0;
      degraded = 0;
      warm_hits = 0;
      cold_launches = 0;
    },
    oracle )

(* The gate's bucket refills on this virtual clock; events fire in
   time order, so the advance is always non-negative. *)
let sync_admission sim =
  let now = Engine.now sim.engine in
  if now > sim.last_adm_ns then begin
    Platform.advance_admission_ns sim.platform (now -. sim.last_adm_ns);
    sim.last_adm_ns <- now
  end

(* Queue-model shard of a request: enclaves and channels follow the
   gate's residue routing; enclave-less calls (ECREATE, EWARM misses)
   are approximated by the driver's own round-robin. *)
let model_shard sim request =
  match request with
  | Types.Chan_send { chan; _ } | Types.Chan_recv { chan } | Types.Chan_close { chan } ->
    (chan - 1) mod sim.shards
  | Types.Warm_create { measurement } -> Types.warm_home ~shards:sim.shards measurement
  | Types.Add { enclave; _ }
  | Types.Measure { enclave }
  | Types.Attest { enclave; _ }
  | Types.Chan_open { listener = enclave }
  | Types.Chan_accept { enclave; _ }
  | Types.Retire { enclave } ->
    Platform.shard_of_enclave sim.platform enclave
  | _ ->
    sim.rr <- sim.rr + 1;
    (sim.rr - 1) mod sim.shards

(* Pacing for a mid-session EBUSY retry: roughly one token's refill
   time. Sessions that are shed on their *first* call give up
   instead (the client never got a foot in the door). *)
let retry_gap_ns sim =
  match sim.admission_rate with Some r when r > 0.0 -> 1e9 /. r | _ -> 1e6

let max_busy_retries = 64

(* Issue one EMCall through the modelled queue: execute it against
   the real platform (mutating state and learning the modelled
   service time), then occupy the serving shard's FCFS slot for that
   long; [k] continues the session at completion time. *)
let rec issue sim ?(retries = 0) ~caller ~request ~on_shed ~on_degraded k =
  sync_admission sim;
  match Platform.invoke_timed sim.platform ~caller request with
  | Error Emcall.Busy ->
    if retries >= max_busy_retries then on_degraded "admission retries exhausted"
    else if retries = 0 && on_shed () then ()
    else
      Engine.after sim.engine ~delay:(retry_gap_ns sim) (fun _ ->
          issue sim ~retries:(retries + 1) ~caller ~request ~on_shed ~on_degraded k)
  | Error (Emcall.Cross_privilege | Emcall.Mailbox_full | Emcall.Timeout) ->
    on_degraded "gate rejection"
  | Ok (response, latency_ns) ->
    sim.calls <- sim.calls + 1;
    let shard = model_shard sim request in
    Resource.submit sim.resources.(shard) ~service_ns:latency_ns
      ~on_done:(fun ~queued_ns:_ ~total_ns:_ -> k response)

(* --- the session state machine ------------------------------------- *)

let start_session sim (s : Tenants.session) ~on_finished =
  let image, measurement = sim.images.(s.Tenants.image mod Array.length sim.images) in
  let enclave = ref None in
  let finish kind =
    let latency = Engine.now sim.engine -. s.Tenants.arrival_ns in
    Stats.add sim.latencies latency;
    (match kind with
    | `Warm -> Stats.add sim.warm_latencies latency
    | `Cold -> Stats.add sim.cold_latencies latency);
    sim.completed <- sim.completed + 1;
    on_finished ()
  in
  let degraded detail =
    ignore detail;
    sim.degraded <- sim.degraded + 1;
    (* Best-effort teardown so an abandoned session cannot pin its
       enclave forever; a shed destroy just leaves it for the
       platform's own pressure paths. *)
    (match !enclave with
    | Some id ->
      ignore (Platform.invoke sim.platform ~caller:Emcall.Os_kernel (Types.Destroy { enclave = id }))
    | None -> ());
    on_finished ()
  in
  (* Only the session's opening call may shed it. *)
  let shed_opening () =
    sim.shed_sessions <- sim.shed_sessions + 1;
    on_finished ();
    true
  in
  let no_shed () = false in
  let call ?(first = false) ~caller request k =
    issue sim ~caller ~request
      ~on_shed:(if first then shed_opening else no_shed)
      ~on_degraded:degraded k
  in
  let expect_unit what k = function
    | Types.Ok_unit -> k ()
    | Types.Err e -> degraded (what ^ ": " ^ Types.error_message e)
    | _ -> degraded (what ^ ": unexpected response")
  in
  (* Compute phase: the host streams [ops] request segments to the
     enclave endpoint and drains the replies it would produce. *)
  let rec compute kind ~chan ~left =
    if left = 0 then
      call ~caller:Emcall.User_host (Types.Chan_close { chan })
        (expect_unit "ECHCLOSE" (fun () ->
             match !enclave with
             | None -> degraded "lost enclave before ERETIRE"
             | Some id ->
               call ~caller:Emcall.Os_kernel (Types.Retire { enclave = id })
                 (expect_unit "ERETIRE" (fun () -> finish kind))))
    else
      let seg = Bytes.make 64 (Char.chr (0x30 + (left land 0x3f))) in
      call ~caller:Emcall.User_host (Types.Chan_send { chan; seg })
        (expect_unit "ECHSEND" (fun () ->
             match !enclave with
             | None -> degraded "lost enclave mid-session"
             | Some id ->
               call ~caller:(Emcall.User_enclave id) (Types.Chan_recv { chan }) (function
                 | Types.Ok_seg _ -> compute kind ~chan ~left:(left - 1)
                 | Types.Err e -> degraded ("ECHRECV: " ^ Types.error_message e)
                 | _ -> degraded "ECHRECV: unexpected response")))
  in
  let open_channel kind id =
    call ~caller:Emcall.User_host (Types.Chan_open { listener = id }) (function
      | Types.Ok_chan { chan; _ } ->
        call ~caller:(Emcall.User_enclave id) (Types.Chan_accept { enclave = id; chan })
          (function
          | Types.Ok_chan _ -> compute kind ~chan ~left:(Stdlib.max 1 s.Tenants.ops)
          | Types.Err e -> degraded ("ECHACC: " ^ Types.error_message e)
          | _ -> degraded "ECHACC: unexpected response")
      | Types.Err e -> degraded ("ECHOPEN: " ^ Types.error_message e)
      | _ -> degraded "ECHOPEN: unexpected response")
  in
  (* Cold path: the SDK's exact launch sequence, re-issued through
     the timed queue, plus one attestation of the fresh identity. *)
  let cold_launch () =
    sim.cold_launches <- sim.cold_launches + 1;
    call ~caller:Emcall.Os_kernel (Types.Create { config = image.Sdk.config }) (function
      | Types.Ok_created { enclave = id } ->
        enclave := Some id;
        let rec add_all = function
          | [] ->
            call ~caller:Emcall.Os_kernel (Types.Measure { enclave = id }) (function
              | Types.Ok_measure { measurement = m } ->
                if not (Bytes.equal m measurement) then degraded "EMEAS mismatch"
                else
                  call ~caller:(Emcall.User_enclave id)
                    (Types.Attest { enclave = id; user_data = Bytes.of_string "cloud" })
                    (function
                    | Types.Ok_attest _ -> open_channel `Cold id
                    | Types.Err e -> degraded ("EATTEST: " ^ Types.error_message e)
                    | _ -> degraded "EATTEST: unexpected response")
              | Types.Err e -> degraded ("EMEAS: " ^ Types.error_message e)
              | _ -> degraded "EMEAS: unexpected response")
          | (vpn, data, executable) :: rest ->
            call ~caller:Emcall.Os_kernel (Types.Add { enclave = id; vpn; data; executable })
              (expect_unit "EADD" (fun () -> add_all rest))
        in
        add_all (Sdk.add_plan image)
      | Types.Err e -> degraded ("ECREATE: " ^ Types.error_message e)
      | _ -> degraded "ECREATE: unexpected response")
  in
  (* Opening move: try the warm pool; a miss is the signal to pay the
     full cold launch. *)
  call ~first:true ~caller:Emcall.Os_kernel (Types.Warm_create { measurement }) (function
    | Types.Ok_created { enclave = id } ->
      sim.warm_hits <- sim.warm_hits + 1;
      enclave := Some id;
      open_channel `Warm id
    | Types.Err (Types.Bad_state _) -> cold_launch ()
    | Types.Err e -> degraded ("EWARM: " ^ Types.error_message e)
    | _ -> degraded "EWARM: unexpected response")

(* --- end-of-run verdict -------------------------------------------- *)

type verdict = { violations : int; divergences : int; report : Invariant.report }

let finish_sim sim oracle =
  let report = Platform.check ~deep:true sim.platform in
  let verdict =
    {
      violations = List.length report.Invariant.violations;
      divergences = Oracle.divergence_count oracle;
      report;
    }
  in
  Platform.detach_oracle sim.platform;
  Platform.shutdown sim.platform;
  verdict

(* --- open-loop sweep ----------------------------------------------- *)

type point = {
  shards : int;
  offered_mult : float;
  offered_per_s : float;
  sessions_offered : int;
  completed : int;
  shed_sessions : int;
  degraded : int;
  warm_hits : int;
  cold_launches : int;
  calls : int;
  shed_requests : int;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  mean_ms : float;
  violations : int;
  divergences : int;
}

let pct stats p = if Stats.count stats = 0 then 0.0 else Stats.percentile stats p
let ms ns = ns /. 1e6

let run_open ~seed ~spec ~shards ~domains ~rate_per_s ~sessions ~admission () =
  let sim, oracle = make_sim ~seed ~shards ~domains ~admission ~spec () in
  let arrivals =
    Tenants.open_arrivals ~seed:(Int64.add seed 0x7EAL) ~spec ~rate_per_s ~sessions
  in
  List.iter
    (fun s ->
      Engine.at sim.engine ~time:s.Tenants.arrival_ns (fun _ ->
          start_session sim s ~on_finished:(fun () -> ())))
    arrivals;
  ignore (Engine.run sim.engine);
  let shed_requests = Platform.shed_count sim.platform in
  let verdict = finish_sim sim oracle in
  (sim, shed_requests, verdict)

let point_of_run ~offered_mult ~rate_per_s ~sessions
    ((sim : sim), shed_requests, (verdict : verdict)) =
  {
    shards = sim.shards;
    offered_mult;
    offered_per_s = rate_per_s;
    sessions_offered = sessions;
    completed = sim.completed;
    shed_sessions = sim.shed_sessions;
    degraded = sim.degraded;
    warm_hits = sim.warm_hits;
    cold_launches = sim.cold_launches;
    calls = sim.calls;
    shed_requests;
    p50_ms = ms (pct sim.latencies 50.0);
    p99_ms = ms (pct sim.latencies 99.0);
    p999_ms = ms (pct sim.latencies 99.9);
    mean_ms = ms (if Stats.count sim.latencies = 0 then 0.0 else Stats.mean sim.latencies);
    violations = verdict.violations;
    divergences = verdict.divergences;
  }

(* Calibration: a trickle of sessions on one shard, no admission —
   the cold-session latency anchors the offered-load axis, the mean
   calls-per-session sizes the request-level admission bucket. *)
type calibration = {
  base_cold_ns : float;
  base_warm_ns : float;
  ops_per_session : float;
}

let calibrate ~seed ~spec ~domains () =
  let sim, oracle = make_sim ~seed ~shards:1 ~domains ~admission:None ~spec () in
  let arrivals =
    Tenants.open_arrivals ~seed:(Int64.add seed 0xCA1L) ~spec ~rate_per_s:2.0 ~sessions:8
  in
  List.iter
    (fun s ->
      Engine.at sim.engine ~time:s.Tenants.arrival_ns (fun _ ->
          start_session sim s ~on_finished:(fun () -> ())))
    arrivals;
  ignore (Engine.run sim.engine);
  let verdict = finish_sim sim oracle in
  if verdict.violations > 0 || verdict.divergences > 0 then
    failwith "Cloud.calibrate: platform failed its own sweep on the calibration run";
  let mean_or stats fallback = if Stats.count stats = 0 then fallback else Stats.mean stats in
  let base_cold = mean_or sim.cold_latencies 8e6 in
  {
    base_cold_ns = base_cold;
    base_warm_ns = mean_or sim.warm_latencies base_cold;
    ops_per_session =
      (if sim.completed = 0 then 12.0 else float_of_int sim.calls /. float_of_int sim.completed);
  }

type curve = { curve_shards : int; points : point list; knee_mult : float option }

(* Saturation knee: the highest offered multiplier whose p99 stays
   within [slo_factor] of the lightest point's p99. *)
let slo_factor = 4.0

let knee_of points =
  match points with
  | [] -> None
  | lightest :: _ ->
    let budget = slo_factor *. Stdlib.max lightest.p99_ms 1e-6 in
    List.fold_left
      (fun acc p -> if p.p99_ms <= budget && p.completed > 0 then Some p.offered_mult else acc)
      None points

(* --- closed loop ---------------------------------------------------- *)

type closed_point = {
  cl_shards : int;
  cl_tenants : int;
  cl_sessions : int;
  cl_completed : int;
  cl_degraded : int;
  cl_warm_hits : int;
  cl_p99_ms : float;
  cl_throughput_per_s : float;
  cl_violations : int;
  cl_divergences : int;
}

let run_closed ~seed ~spec ?(domains = 1) ~shards ~tenants ~sessions_per_tenant () =
  let sim, oracle = make_sim ~seed ~shards ~domains ~admission:None ~spec () in
  let rng = Xrng.create (Int64.add seed 0xC10L) in
  let cdf = Tenants.popularity_cdf spec in
  let rec tenant_loop remaining () =
    if remaining > 0 then begin
      let s = Tenants.fresh_session rng spec cdf ~arrival_ns:(Engine.now sim.engine) in
      start_session sim s ~on_finished:(fun () ->
          Engine.after sim.engine ~delay:(Tenants.think_ns rng spec) (fun _ ->
              tenant_loop (remaining - 1) ()))
    end
  in
  for t = 0 to tenants - 1 do
    (* Staggered starts so the herd does not arrive in lockstep. *)
    Engine.after sim.engine
      ~delay:(float_of_int t *. 20_000.0)
      (fun _ -> tenant_loop sessions_per_tenant ())
  done;
  let total_ns = Engine.run sim.engine in
  let verdict = finish_sim sim oracle in
  {
    cl_shards = shards;
    cl_tenants = tenants;
    cl_sessions = tenants * sessions_per_tenant;
    cl_completed = sim.completed;
    cl_degraded = sim.degraded;
    cl_warm_hits = sim.warm_hits;
    cl_p99_ms = ms (pct sim.latencies 99.0);
    cl_throughput_per_s =
      (if total_ns <= 0.0 then 0.0 else float_of_int sim.completed /. (total_ns /. 1e9));
    cl_violations = verdict.violations;
    cl_divergences = verdict.divergences;
  }

(* --- the experiment ------------------------------------------------- *)

type outcome = {
  calibration : calibration;
  curves : curve list;
  closed : closed_point list;
}

let default_shard_counts = [ 1; 2; 4 ]
let default_mults = [ 0.2; 0.5; 0.8; 1.0; 1.3; 1.6 ]
let quick_mults = [ 0.3; 0.8; 1.5 ]

let run ~seed ?(quick = false) ?(domains = 1) ?(shard_counts = default_shard_counts) () =
  let spec = Tenants.default_spec in
  let sessions = if quick then 48 else 160 in
  let mults = if quick then quick_mults else default_mults in
  let cal = calibrate ~seed ~spec ~domains () in
  let capacity shards = float_of_int shards *. (1e9 /. cal.base_cold_ns) in
  let curves =
    List.map
      (fun shards ->
        let cap = capacity shards in
        (* Admission sized to roughly what the platform can serve:
           overload beyond it sheds as Busy instead of queueing. *)
        let admission = Some (1.3 *. cap *. cal.ops_per_session) in
        let points =
          List.map
            (fun mult ->
              let rate = mult *. cap in
              point_of_run ~offered_mult:mult ~rate_per_s:rate ~sessions
                (run_open ~seed ~spec ~shards ~domains ~rate_per_s:rate ~sessions ~admission ()))
            mults
        in
        { curve_shards = shards; points; knee_mult = knee_of points })
      shard_counts
  in
  let closed =
    List.map
      (fun shards ->
        run_closed ~seed ~spec ~domains ~shards ~tenants:(4 * shards)
          ~sessions_per_tenant:(if quick then 4 else 10) ())
      shard_counts
  in
  { calibration = cal; curves; closed }

(* --- rendering ------------------------------------------------------ *)

let headers =
  [
    "shards"; "load"; "offered/s"; "done"; "shed"; "warm"; "p50 ms"; "p99 ms"; "p99.9 ms";
    "inv"; "orc";
  ]

let point_row p =
  [
    string_of_int p.shards;
    Printf.sprintf "%.1fx" p.offered_mult;
    Table.fmt_f ~digits:1 p.offered_per_s;
    Printf.sprintf "%d/%d" p.completed p.sessions_offered;
    string_of_int p.shed_sessions;
    Printf.sprintf "%d/%d" p.warm_hits (p.warm_hits + p.cold_launches);
    Table.fmt_f ~digits:2 p.p50_ms;
    Table.fmt_f ~digits:2 p.p99_ms;
    Table.fmt_f ~digits:2 p.p999_ms;
    string_of_int p.violations;
    string_of_int p.divergences;
  ]

let print ?(out = stdout) outcome =
  Printf.fprintf out
    "cloud: cold session %.2f ms, warm session %.2f ms, %.1f EMCalls/session\n"
    (ms outcome.calibration.base_cold_ns)
    (ms outcome.calibration.base_warm_ns)
    outcome.calibration.ops_per_session;
  let rows = List.concat_map (fun c -> List.map point_row c.points) outcome.curves in
  Table.print ~out ~headers rows;
  List.iter
    (fun c ->
      Printf.fprintf out "  %d shard(s): knee at %s offered load\n" c.curve_shards
        (match c.knee_mult with Some m -> Printf.sprintf "%.1fx" m | None -> "none (saturated)"))
    outcome.curves;
  List.iter
    (fun cp ->
      Printf.fprintf out
        "  closed loop, %d shard(s) x %d tenants: %d/%d sessions, %.1f/s, p99 %.2f ms, warm %d, inv %d, orc %d\n"
        cp.cl_shards cp.cl_tenants cp.cl_completed cp.cl_sessions cp.cl_throughput_per_s
        cp.cl_p99_ms cp.cl_warm_hits cp.cl_violations cp.cl_divergences)
    outcome.closed

let json_of_outcome outcome =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"calibration\": {\"cold_ns\": %.1f, \"warm_ns\": %.1f, \"ops_per_session\": %.2f},\n"
       outcome.calibration.base_cold_ns outcome.calibration.base_warm_ns
       outcome.calibration.ops_per_session);
  Buffer.add_string b "  \"curves\": [\n";
  let curve_strings =
    List.map
      (fun c ->
        let pts =
          List.map
            (fun p ->
              Printf.sprintf
                "      {\"offered_mult\": %.3f, \"offered_per_s\": %.3f, \"sessions\": %d, \
                 \"completed\": %d, \"shed_sessions\": %d, \"shed_requests\": %d, \
                 \"degraded\": %d, \"warm_hits\": %d, \"cold_launches\": %d, \"p50_ms\": %.4f, \
                 \"p99_ms\": %.4f, \"p999_ms\": %.4f, \"violations\": %d, \"divergences\": %d}"
                p.offered_mult p.offered_per_s p.sessions_offered p.completed p.shed_sessions
                p.shed_requests p.degraded p.warm_hits p.cold_launches p.p50_ms p.p99_ms
                p.p999_ms p.violations p.divergences)
            c.points
        in
        Printf.sprintf "    {\"shards\": %d, \"knee_mult\": %s, \"points\": [\n%s\n    ]}"
          c.curve_shards
          (match c.knee_mult with Some m -> Printf.sprintf "%.3f" m | None -> "null")
          (String.concat ",\n" pts))
      outcome.curves
  in
  Buffer.add_string b (String.concat ",\n" curve_strings);
  Buffer.add_string b "\n  ],\n  \"closed\": [\n";
  let closed_strings =
    List.map
      (fun cp ->
        Printf.sprintf
          "    {\"shards\": %d, \"tenants\": %d, \"sessions\": %d, \"completed\": %d, \
           \"degraded\": %d, \"warm_hits\": %d, \"p99_ms\": %.4f, \"throughput_per_s\": %.3f, \
           \"violations\": %d, \"divergences\": %d}"
          cp.cl_shards cp.cl_tenants cp.cl_sessions cp.cl_completed cp.cl_degraded
          cp.cl_warm_hits cp.cl_p99_ms cp.cl_throughput_per_s cp.cl_violations cp.cl_divergences)
      outcome.closed
  in
  Buffer.add_string b (String.concat ",\n" closed_strings);
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* Green iff every point of every sweep ended with a clean platform. *)
let clean outcome =
  List.for_all
    (fun c -> List.for_all (fun p -> p.violations = 0 && p.divergences = 0) c.points)
    outcome.curves
  && List.for_all (fun cp -> cp.cl_violations = 0 && cp.cl_divergences = 0) outcome.closed
