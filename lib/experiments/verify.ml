module Types = Hypertee_ems.Types
module Enclave = Hypertee_ems.Enclave
module Emcall = Hypertee_cs.Emcall
module Fault = Hypertee_faults.Fault
module Platform = Hypertee.Platform
module Xrng = Hypertee_util.Xrng
module Oracle = Hypertee_check.Oracle
module Invariant = Hypertee_check.Invariant
module Explorer = Hypertee_check.Explorer

type outcome = {
  calls : int;
  agreements : int;
  divergence_count : int;
  divergences : Oracle.divergence list;
  report : Invariant.report;
}

(* --- the workload ---------------------------------------------------- *)

(* The workload keeps its own loose model of the fleet purely to keep
   issuing *plausible* traffic; correctness judgement is entirely the
   oracle's and the checker's job. On errors or timeouts it resyncs by
   dropping whatever it no longer trusts. *)

type phase = Loading | Measured | Running | Interrupted

type wenclave = {
  id : Types.enclave_id;
  mutable phase : phase;
  mutable added : int;
  mutable regions : (int * int) list;  (* EALLOC results, newest first *)
  mutable owned : int list;  (* shm ids this enclave created *)
  mutable joined : int list;  (* shm ids currently attached *)
}

type wshm = {
  sid : int;
  sowner : Types.enclave_id;
  mutable granted : Types.enclave_id list;
  mutable sattached : Types.enclave_id list;
}

type world = {
  rng : Xrng.t;
  mutable fleet : wenclave list;
  mutable shms : wshm list;
  layout : Enclave.layout;  (* of [Types.default_config], for plausible vpns *)
}

let launch_adds = 2
let fleet_target = 4
let page_data i = Bytes.make 64 (Char.chr (Char.code 'a' + (i mod 26)))
let drop w id = w.fleet <- List.filter (fun e -> e.id <> id) w.fleet

let pick_opt rng = function
  | [] -> None
  | l -> Some (List.nth l (Xrng.int rng (List.length l)))

(* One deliberately hostile or malformed request: the oracle must
   predict the exact rejection. *)
let abuse w =
  let bogus_id = 1_000_000 + Xrng.int w.rng 1000 in
  match Xrng.int w.rng 6 with
  | 0 ->
    (* privilege violation: Os-only primitive from user software *)
    (Emcall.User_host, Types.Create { config = Types.default_config })
  | 1 -> (
    (* forged sender: enclave A speaking for enclave B *)
    match w.fleet with
    | e :: _ -> (Emcall.User_enclave bogus_id, Types.Alloc { enclave = e.id; pages = 1 })
    | [] -> (Emcall.Os_kernel, Types.Destroy { enclave = bogus_id }))
  | 2 -> (Emcall.Os_kernel, Types.Destroy { enclave = bogus_id })
  | 3 ->
    ( Emcall.Os_kernel,
      Types.Create
        { config = { Types.default_config with Types.code_pages = 0 } } )
  | 4 -> (
    match pick_opt w.rng w.fleet with
    | Some e -> (Emcall.User_enclave e.id, Types.Alloc { enclave = e.id; pages = 0 })
    | None -> (Emcall.Os_kernel, Types.Destroy { enclave = bogus_id }))
  | _ -> (
    match pick_opt w.rng w.fleet with
    | Some e ->
      ( Emcall.User_enclave e.id,
        Types.Shmat { enclave = e.id; shm = bogus_id; requested_perm = Types.Read_only } )
    | None -> (Emcall.Os_kernel, Types.Destroy { enclave = bogus_id }))

let next_request w =
  match List.find_opt (fun e -> e.phase = Loading) w.fleet with
  | Some e when e.added < launch_adds ->
    ( Emcall.Os_kernel,
      Types.Add
        { enclave = e.id; vpn = 0x100 + e.added; data = page_data e.added; executable = true } )
  | Some e -> (Emcall.Os_kernel, Types.Measure { enclave = e.id })
  | None -> (
    if List.length w.fleet < fleet_target then
      (Emcall.Os_kernel, Types.Create { config = Types.default_config })
    else
      match pick_opt w.rng w.fleet with
      | None -> (Emcall.Os_kernel, Types.Create { config = Types.default_config })
      | Some e -> (
        match Xrng.int w.rng 20 with
        | 0 | 1 ->
          (Emcall.User_enclave e.id, Types.Alloc { enclave = e.id; pages = 1 + Xrng.int w.rng 4 })
        | 2 -> (
          match e.regions with
          | (base_vpn, pages) :: _ ->
            (Emcall.User_enclave e.id, Types.Free { enclave = e.id; vpn = base_vpn; pages })
          | [] -> (Emcall.User_enclave e.id, Types.Alloc { enclave = e.id; pages = 2 }))
        | 3 ->
          (* fault a page inside the growable window *)
          let vpn =
            w.layout.Enclave.heap_base
            + Types.default_config.Types.heap_pages
            + Xrng.int w.rng 8
          in
          (Emcall.Os_kernel, Types.Page_fault { enclave = e.id; vpn })
        | 4 | 5 -> (
          match e.phase with
          | Measured -> (Emcall.Os_kernel, Types.Enter { enclave = e.id })
          | Running ->
            (Emcall.Os_kernel, Types.Interrupt { enclave = e.id; pc = 0xcafe; cause = 7 })
          | Interrupted -> (Emcall.Os_kernel, Types.Resume { enclave = e.id })
          | Loading -> (Emcall.Os_kernel, Types.Measure { enclave = e.id }))
        | 6 -> (
          match e.phase with
          | Running | Interrupted -> (Emcall.User_enclave e.id, Types.Exit { enclave = e.id })
          | _ -> (Emcall.Os_kernel, Types.Enter { enclave = e.id }))
        | 7 ->
          ( Emcall.User_enclave e.id,
            Types.Attest { enclave = e.id; user_data = Bytes.of_string "verify" } )
        | 8 -> (Emcall.Os_kernel, Types.Writeback { pages_hint = 4 + Xrng.int w.rng 8 })
        | 9 ->
          ( Emcall.User_enclave e.id,
            Types.Shmget
              { owner = e.id; pages = 1 + Xrng.int w.rng 3; max_perm = Types.Read_write } )
        | 10 | 11 -> (
          match (pick_opt w.rng e.owned, pick_opt w.rng w.fleet) with
          | Some shm, Some grantee ->
            ( Emcall.User_enclave e.id,
              Types.Shmshr { owner = e.id; shm; grantee = grantee.id; perm = Types.Read_write }
            )
          | _ ->
            ( Emcall.User_enclave e.id,
              Types.Shmget { owner = e.id; pages = 2; max_perm = Types.Read_write } ))
        | 12 | 13 -> (
          let joinable =
            List.filter
              (fun s ->
                List.mem e.id s.granted && not (List.mem e.id s.sattached))
              w.shms
          in
          match pick_opt w.rng joinable with
          | Some s ->
            ( Emcall.User_enclave e.id,
              Types.Shmat { enclave = e.id; shm = s.sid; requested_perm = Types.Read_write } )
          | None ->
            ( Emcall.User_enclave e.id,
              Types.Attest { enclave = e.id; user_data = Bytes.of_string "verify" } ))
        | 14 -> (
          match pick_opt w.rng e.joined with
          | Some shm -> (Emcall.User_enclave e.id, Types.Shmdt { enclave = e.id; shm })
          | None -> (Emcall.User_enclave e.id, Types.Alloc { enclave = e.id; pages = 1 }))
        | 15 -> (
          let destroyable =
            List.filter (fun s -> s.sowner = e.id && s.sattached = []) w.shms
          in
          match pick_opt w.rng destroyable with
          | Some s -> (Emcall.User_enclave e.id, Types.Shmdes { owner = e.id; shm = s.sid })
          | None -> (Emcall.Os_kernel, Types.Writeback { pages_hint = 6 }))
        | 16 -> (Emcall.Os_kernel, Types.Destroy { enclave = e.id })
        | _ -> abuse w))

(* Fold one observed outcome back into the workload's bookkeeping. *)
let absorb w (caller, request) result =
  ignore caller;
  let find_shm sid = List.find_opt (fun s -> s.sid = sid) w.shms in
  let forget_enclave id =
    drop w id;
    List.iter
      (fun s -> s.sattached <- List.filter (fun x -> x <> id) s.sattached)
      w.shms;
    w.shms <- List.filter (fun s -> not (s.sowner = id && s.sattached = [])) w.shms
  in
  match result with
  | Error Emcall.Timeout -> (
    (* unknowable outcome: stop trusting the target *)
    match Hypertee_ems.Runtime.enclave_of_request request with
    | Some id -> forget_enclave id
    | None -> ())
  | Error (Emcall.Cross_privilege | Emcall.Mailbox_full | Emcall.Busy) -> ()
  | Ok ((Types.Err (Types.No_such_enclave | Types.Integrity_failure _)), _) -> (
    match Hypertee_ems.Runtime.enclave_of_request request with
    | Some id -> forget_enclave id
    | None -> ())
  | Ok ((Types.Err _), _) -> ()
  | Ok (response, _) -> (
    match (request, response) with
    | Types.Create _, Types.Ok_created { enclave } ->
      w.fleet <-
        { id = enclave; phase = Loading; added = 0; regions = []; owned = []; joined = [] }
        :: w.fleet
    | Types.Add { enclave; _ }, Types.Ok_unit ->
      List.iter (fun e -> if e.id = enclave then e.added <- e.added + 1) w.fleet
    | Types.Measure { enclave }, Types.Ok_measure _ ->
      List.iter (fun e -> if e.id = enclave then e.phase <- Measured) w.fleet
    | (Types.Enter { enclave } | Types.Resume { enclave }), Types.Ok_entered _ ->
      List.iter (fun e -> if e.id = enclave then e.phase <- Running) w.fleet
    | Types.Interrupt { enclave; _ }, Types.Ok_unit ->
      List.iter (fun e -> if e.id = enclave then e.phase <- Interrupted) w.fleet
    | Types.Exit { enclave }, Types.Ok_unit ->
      List.iter (fun e -> if e.id = enclave then e.phase <- Measured) w.fleet
    | Types.Destroy { enclave }, Types.Ok_unit -> forget_enclave enclave
    | Types.Alloc { enclave; _ }, Types.Ok_alloc { base_vpn; pages } ->
      List.iter
        (fun e -> if e.id = enclave then e.regions <- (base_vpn, pages) :: e.regions)
        w.fleet
    | Types.Free { enclave; _ }, Types.Ok_unit ->
      List.iter
        (fun e ->
          if e.id = enclave then
            e.regions <- (match e.regions with [] -> [] | _ :: tl -> tl))
        w.fleet
    | Types.Writeback _, Types.Ok_writeback _ ->
      (* evictions invalidate every remembered EALLOC region *)
      List.iter (fun e -> e.regions <- []) w.fleet
    | Types.Shmget { owner; _ }, Types.Ok_shm { shm } ->
      w.shms <- { sid = shm; sowner = owner; granted = [ owner ]; sattached = [] } :: w.shms;
      List.iter (fun e -> if e.id = owner then e.owned <- shm :: e.owned) w.fleet
    | Types.Shmshr { shm; grantee; _ }, Types.Ok_unit -> (
      match find_shm shm with
      | Some s -> if not (List.mem grantee s.granted) then s.granted <- grantee :: s.granted
      | None -> ())
    | Types.Shmat { enclave; shm; _ }, Types.Ok_shmat _ ->
      (match find_shm shm with
      | Some s -> s.sattached <- enclave :: s.sattached
      | None -> ());
      List.iter (fun e -> if e.id = enclave then e.joined <- shm :: e.joined) w.fleet
    | Types.Shmdt { enclave; shm }, Types.Ok_unit ->
      (match find_shm shm with
      | Some s -> s.sattached <- List.filter (fun x -> x <> enclave) s.sattached
      | None -> ());
      List.iter
        (fun e -> if e.id = enclave then e.joined <- List.filter (fun x -> x <> shm) e.joined)
        w.fleet;
      (* the EMS reaps an orphaned region on last detach; mirror it *)
      w.shms <-
        List.filter
          (fun s ->
            not
              (s.sid = shm
              && s.sattached = []
              && not (List.exists (fun e -> e.id = s.sowner) w.fleet)))
          w.shms
    | Types.Shmdes { shm; _ }, Types.Ok_unit ->
      w.shms <- List.filter (fun s -> s.sid <> shm) w.shms;
      List.iter (fun e -> e.owned <- List.filter (fun x -> x <> shm) e.owned) w.fleet
    | _ -> ())

let drive platform w ~calls ~batch =
  let issued = ref 0 in
  while !issued < calls do
    if batch > 1 && !issued mod 16 = 0 && w.fleet <> [] then begin
      (* a doorbell batch of management traffic *)
      let k = min batch (calls - !issued) in
      let reqs = List.init k (fun _ -> next_request w) in
      let results = Platform.invoke_batch platform reqs in
      List.iter2 (fun req result -> absorb w req result) reqs results;
      issued := !issued + k
    end
    else begin
      let ((caller, request) as req) = next_request w in
      let result = Platform.invoke_timed platform ~caller request in
      absorb w req result;
      incr issued
    end
  done

let make_world ~seed = {
  rng = Xrng.create (Int64.add seed 23L);
  fleet = [];
  shms = [];
  layout = Enclave.make_layout Types.default_config;
}

let oracle_replay ?(calls = 1200) ?(fault_rate = 0.0) ?(shards = 2) ?(seed = 0x76657269L)
    ?(deep = false) () =
  let faults =
    if fault_rate > 0.0 then Some (Fault.uniform ~seed:(Int64.add seed 0x5EEDL) ~rate:fault_rate ())
    else None
  in
  let config = { Hypertee_arch.Config.default with Hypertee_arch.Config.ems_shards = shards } in
  let platform = Platform.create ~seed ~config ?faults () in
  let oracle = Platform.attach_oracle platform in
  let w = make_world ~seed in
  drive platform w ~calls ~batch:4;
  Platform.detach_oracle platform;
  let report = Platform.check ~deep platform in
  {
    calls = Oracle.observed oracle;
    agreements = Oracle.agreements oracle;
    divergence_count = Oracle.divergence_count oracle;
    divergences = Oracle.divergences oracle;
    report;
  }

(* --- explorer adapter ------------------------------------------------ *)

let scenario_driver (s : Explorer.scenario) =
  let config =
    {
      Hypertee_arch.Config.default with
      Hypertee_arch.Config.ems_shards = s.Explorer.shards;
      Hypertee_arch.Config.ems_cores = s.Explorer.ems_cores;
    }
  in
  let platform = Platform.create ~seed:s.Explorer.seed ~config ?faults:(Explorer.plan_of s) () in
  let oracle = Platform.attach_oracle platform in
  let w = make_world ~seed:s.Explorer.seed in
  drive platform w ~calls:s.Explorer.ops ~batch:s.Explorer.batch;
  Platform.detach_oracle platform;
  let report = Platform.check platform in
  if Oracle.divergence_count oracle > 0 then
    Explorer.Fail
      (Format.asprintf "oracle: %d divergence(s); first: %a"
         (Oracle.divergence_count oracle) Oracle.pp_divergence
         (List.hd (Oracle.divergences oracle)))
  else if not (Invariant.ok report) then
    Explorer.Fail
      (Format.asprintf "invariants: %d violation(s); first: %a"
         (List.length report.Invariant.violations) Invariant.pp_violation
         (List.hd report.Invariant.violations))
  else Explorer.Pass

let explore ?(n = 24) () =
  Explorer.explore ~driver:scenario_driver ~seeds:(Explorer.default_seeds ~n)

(* --- CLI entry point ------------------------------------------------- *)

let run ?(deep = false) ?(calls = 1200) ?(seeds = 24) ?(out = stdout) () =
  let p fmt = Printf.fprintf out fmt in
  let show label o =
    p "%s: %d calls, %d agreed, %d diverged; invariants: %s\n" label o.calls o.agreements
      o.divergence_count
      (Invariant.report_to_string o.report);
    List.iter (fun d -> p "  %s\n" (Format.asprintf "%a" Oracle.pp_divergence d)) o.divergences;
    List.iter
      (fun v -> p "  %s\n" (Format.asprintf "%a" Invariant.pp_violation v))
      o.report.Invariant.violations;
    o.divergence_count = 0 && Invariant.ok o.report
  in
  let clean = show "clean replay" (oracle_replay ~calls ~deep ()) in
  (* The deep sweep runs under fault injection too: flips corrupt
     transient copies, and MAC failures struck by the sweep's own
     reads are excused through the injector's flip journal
     ([injected_macs]), so anything reported is the platform's
     doing. *)
  let faulty =
    show "fault-injected replay (rate 0.05)" (oracle_replay ~calls ~fault_rate:0.05 ~deep ())
  in
  let failures = explore ~n:seeds () in
  List.iter
    (fun (seed, s, reason) ->
      p "explorer seed %Ld FAILED (%s): %s\n" seed
        (Format.asprintf "%a" Explorer.pp_scenario s)
        reason)
    failures;
  p "explorer: %d/%d scenario(s) passed\n" (seeds - List.length failures) seeds;
  let ok = clean && faulty && failures = [] in
  p "verification %s\n" (if ok then "PASSED" else "FAILED");
  ok
