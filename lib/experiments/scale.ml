module Platform = Hypertee.Platform
module Emcall = Hypertee_cs.Emcall
module Types = Hypertee_ems.Types
module Config = Hypertee_arch.Config
module Cost = Hypertee_ems.Cost

type point = {
  cs_cores : int;
  shards : int;
  batch : int;
  ops : int;
  ok : int;
  overhead_ns : float;
  mean_latency_ns : float;
  ems_busy_ns : float;
  throughput_mops : float;
  invariant_violations : int;
}

let default_batches = [ 1; 2; 4; 8; 16 ]
let default_shards = [ 1; 2; 4; 8 ]
let default_ops = 256

(* One grid point: a fresh platform with [shards] EMS instances and
   one enclave per CS core; [ops] EALLOC primitives issued in groups
   of [batch], spread round-robin over the enclaves (i.e. over the
   CS cores), each group delivered through one [Platform.invoke_batch]
   doorbell round. *)
let run_point ~seed ?(domains = 1) ~cs_cores ~shards ~batch ~ops () =
  if cs_cores < 1 || shards < 1 || batch < 1 || ops < 1 then
    invalid_arg "Scale.run_point: all parameters must be >= 1";
  let config = { Config.default with Config.cs_cores; ems_shards = shards; domains } in
  let platform = Platform.create ~seed ~config () in
  (* Fleet setup: ECREATE round-robins across shards inside the gate,
     and each shard assigns ids from its own residue class, so the
     fleet lands evenly. *)
  let enclaves =
    List.filter_map
      (fun _ ->
        match
          Platform.invoke platform ~caller:Emcall.Os_kernel
            (Types.Create { config = Types.default_config })
        with
        | Ok (Types.Ok_created { enclave }) -> Some enclave
        | _ -> None)
      (List.init cs_cores Fun.id)
  in
  let fleet = Array.of_list enclaves in
  if Array.length fleet = 0 then failwith "Scale.run_point: no enclave could be created";
  let alloc_request i =
    (Emcall.User_host, Types.Alloc { enclave = fleet.(i mod Array.length fleet); pages = 1 })
  in
  (* The EMS-side makespan model: within one doorbell round each
     shard serves its slice of the batch back-to-back and pays the
     shared transport round (fabric hops + doorbell + watchdog
     sweep) once; shards run in parallel, so the round costs the
     *maximum* shard busy time. Aggregate throughput is served
     primitives over the summed round makespans. *)
  let shared_ns = Config.doorbell_shared_ns config.Config.transport in
  let service_ns request = Cost.service_ns (Platform.Internals.cost platform) request in
  let ok = ref 0 in
  let latency_sum = ref 0.0 in
  let busy_ns = ref 0.0 in
  let issued = ref 0 in
  while !issued < ops do
    let k = Stdlib.min batch (ops - !issued) in
    let requests = List.init k (fun j -> alloc_request (!issued + j)) in
    let per_shard = Array.make shards 0.0 in
    List.iter
      (fun (_, request) ->
        let s =
          match request with
          | Types.Alloc { enclave; _ } -> Platform.shard_of_enclave platform enclave
          | _ -> 0
        in
        per_shard.(s) <- per_shard.(s) +. service_ns request)
      requests;
    let round_ns =
      Array.fold_left
        (fun acc busy -> if busy > 0.0 then Stdlib.max acc (busy +. shared_ns) else acc)
        0.0 per_shard
    in
    busy_ns := !busy_ns +. round_ns;
    List.iter
      (function
        | Ok (Types.Err _, _) | Error _ -> ()
        | Ok (_, latency) ->
          incr ok;
          latency_sum := !latency_sum +. latency)
      (Platform.invoke_batch platform requests);
    issued := !issued + k
  done;
  let invariant_violations =
    List.length (Platform.check platform).Hypertee_check.Invariant.violations
  in
  let overhead_ns = Platform.batch_overhead_ns platform ~batch in
  Platform.shutdown platform;
  {
    cs_cores;
    shards;
    batch;
    ops;
    ok = !ok;
    overhead_ns;
    mean_latency_ns = (if !ok = 0 then 0.0 else !latency_sum /. float_of_int !ok);
    ems_busy_ns = !busy_ns;
    throughput_mops =
      (if !busy_ns <= 0.0 then 0.0 else float_of_int !ok /. (!busy_ns /. 1e3));
    invariant_violations;
  }

(* The two published sweeps: batching amortization at one shard, and
   shard scaling at a fixed batch size. *)
let batch_sweep ~seed ?(domains = 1) ?(cs_cores = 8) ?(ops = default_ops) () =
  List.map
    (fun batch -> run_point ~seed ~domains ~cs_cores ~shards:1 ~batch ~ops ())
    default_batches

let shard_sweep ~seed ?(domains = 1) ?(cs_cores = 8) ?(batch = 8) ?(ops = default_ops) () =
  List.map
    (fun shards -> run_point ~seed ~domains ~cs_cores ~shards ~batch ~ops ())
    default_shards

let run ~seed ?(domains = 1) ?(ops = default_ops) () =
  (batch_sweep ~seed ~domains ~ops (), shard_sweep ~seed ~domains ~ops ())

let point_row p =
  [
    string_of_int p.cs_cores;
    string_of_int p.shards;
    string_of_int p.batch;
    Printf.sprintf "%d/%d" p.ok p.ops;
    Hypertee_util.Table.fmt_f ~digits:1 p.overhead_ns;
    Hypertee_util.Table.fmt_f ~digits:2 (p.mean_latency_ns /. 1e3);
    Hypertee_util.Table.fmt_f ~digits:3 p.throughput_mops;
    string_of_int p.invariant_violations;
  ]

let headers =
  [ "CS cores"; "shards"; "batch"; "served"; "gate+transport (ns/call)"; "mean rtt (us)";
    "Mops/s"; "inv" ]

let aligns = Hypertee_util.Table.[ Right; Right; Right; Right; Right; Right; Right; Right ]

let print ?out ~seed ?(domains = 1) ?(ops = default_ops) () =
  let batch_points, shard_points = run ~seed ~domains ~ops () in
  let say fmt =
    match out with
    | None -> Printf.printf fmt
    | Some ch -> Printf.fprintf ch fmt
  in
  say "batching amortization (1 shard): shared doorbell round splits over the batch\n";
  Hypertee_util.Table.print ?out ~headers ~aligns (List.map point_row batch_points);
  say "EMS shard scaling (batch=8): affinity-routed shards serve in parallel\n";
  Hypertee_util.Table.print ?out ~headers ~aligns (List.map point_row shard_points)

(* --- hot-shard rebalancing via live migration --- *)

type rebalance_report = {
  shards : int;
  fleet : int;
  migrated : int;
  migration_failures : int;
  rebalance_ops : int;
  busy_before_ns : float;
  busy_after_ns : float;
  speedup : float;
  hot_share_before : float;
  hot_share_after : float;
  rebalance_violations : int;
}

let rebalance ?(seed = 0x5EBA1A4CEL) ?(batch = 8) ?(ops = 192) () =
  if batch < 1 || ops < 1 then invalid_arg "Scale.rebalance: batch and ops must be >= 1";
  let shards = 4 in
  let config = { Config.default with Config.cs_cores = 8; ems_shards = shards } in
  let platform = Platform.create ~seed ~config () in
  let invoke caller request = Platform.invoke platform ~caller request in
  (* Build the skew: spawn a fleet across all shards, then destroy
     everything not homed on shard 0, leaving one hot shard serving
     the whole population while three shards idle. *)
  let created =
    List.filter_map
      (fun _ ->
        match invoke Emcall.Os_kernel (Types.Create { config = Types.default_config }) with
        | Ok (Types.Ok_created { enclave }) -> Some enclave
        | _ -> None)
      (List.init (8 * shards) Fun.id)
  in
  let kept, extra =
    List.partition (fun e -> Platform.shard_of_enclave platform e = 0) created
  in
  List.iter (fun e -> ignore (invoke Emcall.Os_kernel (Types.Destroy { enclave = e }))) extra;
  (* One measured page each: migration requires a finalized identity. *)
  let page = Bytes.make Hypertee_util.Units.page_size '\x5a' in
  List.iter
    (fun e ->
      ignore
        (invoke Emcall.Os_kernel
           (Types.Add { enclave = e; vpn = 0x100; data = page; executable = false }));
      ignore (invoke Emcall.Os_kernel (Types.Measure { enclave = e })))
    kept;
  let fleet = Array.of_list kept in
  if Array.length fleet < 2 then failwith "Scale.rebalance: hot shard fleet too small";
  (* Same makespan model as [run_point]: per doorbell round each
     involved shard pays its busy slice plus the shared transport
     round, rounds cost the maximum over shards. The per-shard busy
     attribution goes through [Platform.shard_of_enclave], which
     follows migration route overrides — so the "after" pass sees the
     rebalanced placement with no further plumbing. *)
  let shared_ns = Config.doorbell_shared_ns config.Config.transport in
  let service_ns request = Cost.service_ns (Platform.Internals.cost platform) request in
  let measure_pass () =
    let per_shard_total = Array.make shards 0.0 in
    let busy = ref 0.0 in
    let issued = ref 0 in
    while !issued < ops do
      let k = Stdlib.min batch (ops - !issued) in
      let requests =
        List.init k (fun j ->
            let e = fleet.((!issued + j) mod Array.length fleet) in
            (Emcall.User_enclave e, Types.Alloc { enclave = e; pages = 1 }))
      in
      let per_shard = Array.make shards 0.0 in
      List.iter
        (fun (_, request) ->
          let s =
            match request with
            | Types.Alloc { enclave; _ } -> Platform.shard_of_enclave platform enclave
            | _ -> 0
          in
          per_shard.(s) <- per_shard.(s) +. service_ns request)
        requests;
      Array.iteri (fun s b -> per_shard_total.(s) <- per_shard_total.(s) +. b) per_shard;
      let round_ns =
        Array.fold_left
          (fun acc b -> if b > 0.0 then Stdlib.max acc (b +. shared_ns) else acc)
          0.0 per_shard
      in
      busy := !busy +. round_ns;
      List.iter (fun r -> ignore r) (Platform.invoke_batch platform requests);
      issued := !issued + k
    done;
    let total = Array.fold_left ( +. ) 0.0 per_shard_total in
    let hottest = Array.fold_left Stdlib.max 0.0 per_shard_total in
    (!busy, if total <= 0.0 then 0.0 else hottest /. total)
  in
  let busy_before_ns, hot_share_before = measure_pass () in
  (* Spread three quarters of the hot fleet over the idle shards, two
     per shard, keeping ids (live migration, not re-creation). *)
  let to_move = Array.length fleet - (Array.length fleet / 4) in
  let migrated = ref 0 in
  let failures = ref 0 in
  Array.iteri
    (fun i e ->
      if i < to_move then
        match Platform.migrate platform ~enclave:e ~target:(1 + (i mod (shards - 1))) with
        | Platform.Migrated -> incr migrated
        | Platform.Migration_aborted _ | Platform.Migration_crashed _ -> incr failures)
    fleet;
  let busy_after_ns, hot_share_after = measure_pass () in
  {
    shards;
    fleet = Array.length fleet;
    migrated = !migrated;
    migration_failures = !failures;
    rebalance_ops = ops;
    busy_before_ns;
    busy_after_ns;
    speedup = (if busy_after_ns <= 0.0 then 0.0 else busy_before_ns /. busy_after_ns);
    hot_share_before;
    hot_share_after;
    rebalance_violations =
      List.length (Platform.check platform).Hypertee_check.Invariant.violations;
  }

let print_rebalance ?out r =
  let say fmt =
    match out with
    | None -> Printf.printf fmt
    | Some ch -> Printf.fprintf ch fmt
  in
  say
    "hot-shard rebalancing: %d enclaves on shard 0 of %d, %d live-migrated out (%d failed)\n"
    r.fleet r.shards r.migrated r.migration_failures;
  let row label busy share =
    [ label;
      Hypertee_util.Table.fmt_f ~digits:1 (busy /. 1e3);
      Hypertee_util.Table.fmt_f ~digits:2 (100.0 *. share) ]
  in
  Hypertee_util.Table.print ?out
    ~headers:[ "placement"; "makespan (us)"; "hot-shard share (%)" ]
    ~aligns:Hypertee_util.Table.[ Left; Right; Right ]
    [
      row "before" r.busy_before_ns r.hot_share_before;
      row "after" r.busy_after_ns r.hot_share_after;
    ];
  say "rebalance speedup: %.2fx, invariant violations: %d\n" r.speedup
    r.rebalance_violations
