(** Wall-clock microbenchmarks of the crypto data plane.

    Every other experiment reports modelled time; this one measures
    real elapsed time of the simulator's hot paths (AES-CTR pages,
    SHA-256/SHA-3 hashing, the MEE round trip, Create_Enclave, and a
    fig6-style sweep), so [BENCH_perf.json] tracks MB/s across PRs. *)

type sample = {
  target : string;  (** what was measured, e.g. ["aes-ctr-page"] *)
  metric : string;  (** ["throughput"], ["latency"], ... *)
  value : float;
  unit_ : string;  (** ["MB/s"], ["ns/op"], ["x"], ["s"] *)
  runs : int;  (** repetitions behind the reported value *)
}

(** The machine a benchmark file was produced on; recorded in the
    JSON so raw MB/s numbers carry their provenance. *)
type host = {
  hardware_threads : int;  (** [Domain.recommended_domain_count] *)
  recommended_domains : int;  (** what the worker pool would size to *)
  ocaml_version : string;
  word_size : int;
  os_type : string;
}

val host_info : unit -> host

val run : ?quick:bool -> ?min_time_s:float -> unit -> sample list
(** Run the full suite. [quick] shortens the per-target measurement
    window and the sweep; [min_time_s] overrides the window directly
    (tests use a tiny value). *)

val find : sample list -> target:string -> metric:string -> sample option
val print : ?out:out_channel -> sample list -> unit

val write_json : path:string -> sample list -> unit
(** Write [{"host": {...}, "samples": [...]}]: the {!host_info} block
    followed by one [{"target", "metric", "value", "unit", "runs"}]
    object per sample. *)

(** A sample that fell below the committed baseline by more than the
    tolerance. *)
type regression = {
  r_target : string;
  r_metric : string;
  r_baseline : float;
  r_current : float;
}

val load_baseline : path:string -> (string * string * float) list
(** [(target, metric, value)] triples parsed from a previously
    written JSON file (current object format or the older flat
    array). *)

val compare_to_baseline :
  baseline:(string * string * float) list ->
  tolerance_pct:float ->
  sample list ->
  regression list
(** Regressions of the [speedup-vs-reference] ratios against the
    baseline. Only ratios gate: both sides of a ratio run on the same
    machine, so it is portable, while raw MB/s compared against a
    file committed from different hardware would flap. *)
