(** Wall-clock microbenchmarks of the crypto data plane.

    Every other experiment reports modelled time; this one measures
    real elapsed time of the simulator's hot paths (AES-CTR pages,
    SHA-256/SHA-3 hashing, the MEE round trip, Create_Enclave, and a
    fig6-style sweep), so [BENCH_perf.json] tracks MB/s across PRs. *)

type sample = {
  target : string;  (** what was measured, e.g. ["aes-ctr-page"] *)
  metric : string;  (** ["throughput"], ["latency"], ... *)
  value : float;
  unit_ : string;  (** ["MB/s"], ["ns/op"], ["x"], ["s"] *)
  runs : int;  (** repetitions behind the reported value *)
}

val run : ?quick:bool -> ?min_time_s:float -> unit -> sample list
(** Run the full suite. [quick] shortens the per-target measurement
    window and the sweep; [min_time_s] overrides the window directly
    (tests use a tiny value). *)

val find : sample list -> target:string -> metric:string -> sample option
val print : ?out:out_channel -> sample list -> unit

val write_json : path:string -> sample list -> unit
(** Write the samples as a JSON array of
    [{"target", "metric", "value", "unit", "runs"}] objects. *)
