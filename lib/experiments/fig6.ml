module Config = Hypertee_arch.Config
module Cost = Hypertee_ems.Cost

type curve = {
  cs_cores : int;
  ems_cores : int;
  ems_kind : Config.ems_kind;
  baseline_ns : float;
  points : (float * float) list;
  p99_multiplier : float;
}

let alloc_pages = 2 * Hypertee_util.Units.mib / Hypertee_util.Units.page_size (* 2 MiB *)

(* Non-enclave baseline: the same 2 MiB allocation as a malloc on the
   CS side — mmap syscall + VMA bookkeeping plus per-page preparation
   on the fast CS core. Jitter models scheduler noise. *)
let malloc_ns rng =
  let fixed = 25_000.0 and per_page = 700.0 in
  let jitter = 1.0 +. (0.15 *. Hypertee_util.Xrng.gaussian rng) in
  (fixed +. (float_of_int alloc_pages *. per_page)) *. Float.max 0.2 jitter

let transport_ns =
  let tr = Config.default_transport in
  tr.Config.emcall_entry_ns +. tr.Config.packet_build_ns
  +. (2.0 *. tr.Config.fabric_hop_ns)
  +. tr.Config.interrupt_ns

let run ~seed ~cs_cores ~ems_cores ~ems_kind ~requests =
  let rng = Hypertee_util.Xrng.create seed in
  (* Baseline distribution: p99 of the malloc latencies. *)
  let baseline_stats = Hypertee_util.Stats.create () in
  for _ = 1 to requests do
    Hypertee_util.Stats.add baseline_stats (malloc_ns rng)
  done;
  let baseline_ns = Hypertee_util.Stats.percentile baseline_stats 99.0 in
  (* Enclave mode: closed-loop generators against the EMS workers. *)
  let engine = Hypertee_sim.Engine.create () in
  (* With a tracer installed, stamp spans with simulated time: CS
     cores render on the gate tracks, EMS servers on the sim tracks
     (the Resource emits those). *)
  let tracer = Hypertee_obs.Trace.installed () in
  Option.iter (fun tr -> Hypertee_sim.Engine.bind_tracer engine tr) tracer;
  let resource = Hypertee_sim.Resource.create engine ~servers:ems_cores in
  let cost =
    Cost.create ~ems:(Config.ems_core ems_kind) ~engine:Hypertee_crypto.Engine.default_hardware
  in
  let latencies = Hypertee_util.Stats.create () in
  let issued = ref 0 in
  (* Enclave creation first (one per CS core), then the allocation
     stream. Service time varies a little per request (pool state). *)
  let service_of_request is_create =
    let base =
      if is_create then Cost.create_ns cost ~static_pages:64 else Cost.alloc_ns cost ~pages:alloc_pages
    in
    base *. (1.0 +. (0.1 *. Hypertee_util.Xrng.float rng))
  in
  (* Per-request trace: the EMCALL parent on the issuing core's gate
     track, decomposed into queue + service + transport children that
     sum exactly to the latency recorded in the statistics. *)
  let trace_request ~core ~first ~queued_ns ~total_ns =
    let module Trace = Hypertee_obs.Trace in
    let finish = Hypertee_sim.Engine.now engine in
    let arrival = finish -. total_ns in
    let opcode = if first then "ECREATE" else "EALLOC" in
    let track = Trace.track_gate core in
    let parent =
      Trace.emit ~track ~opcode ~cat:Trace.Emcall ~name:("EMCALL:" ^ opcode)
        ~start_ns:arrival ~dur_ns:(total_ns +. transport_ns) ()
    in
    let child cat name off dur =
      ignore (Trace.emit ~track ~parent ~opcode ~cat ~name ~start_ns:(arrival +. off) ~dur_ns:dur ())
    in
    child Trace.Queue "queue" 0.0 queued_ns;
    child Trace.Service "service" queued_ns (total_ns -. queued_ns);
    child Trace.Transport "transport" total_ns transport_ns
  in
  let rec generator ~core first () =
    if !issued < requests then begin
      incr issued;
      let service = service_of_request first in
      (* Think time between a core's consecutive primitives: the
         application computes between allocations (mean 80 ms: the
         16384 allocations are spread through a real workload, not
         issued back-to-back). *)
      let think = Hypertee_util.Xrng.exponential rng ~mean:80e6 in
      Hypertee_sim.Engine.after engine ~delay:think (fun _ ->
          Hypertee_sim.Resource.submit resource ~service_ns:service
            ~on_done:(fun ~queued_ns ~total_ns ->
              Hypertee_util.Stats.add latencies (total_ns +. transport_ns);
              if Hypertee_obs.Trace.enabled () then
                trace_request ~core ~first ~queued_ns ~total_ns;
              generator ~core false ()))
    end
  in
  for core = 0 to cs_cores - 1 do
    generator ~core true ()
  done;
  ignore (Hypertee_sim.Engine.run engine);
  (* Release the tracer's clock back to its virtual cursor. *)
  Option.iter (fun tr -> Hypertee_obs.Trace.set_clock tr None) tracer;
  let xs = List.init 60 (fun i -> 1.0 +. (float_of_int i *. 0.25)) in
  let points =
    List.map
      (fun x -> (x, Hypertee_util.Stats.fraction_below latencies (x *. baseline_ns)))
      xs
  in
  let p99_multiplier = Hypertee_util.Stats.percentile latencies 99.0 /. baseline_ns in
  { cs_cores; ems_cores; ems_kind; baseline_ns; points; p99_multiplier }

let paper_grid =
  [
    (4, [ (1, Config.Weak); (1, Config.Medium); (2, Config.Weak) ]);
    (16, [ (1, Config.Weak); (2, Config.Weak); (2, Config.Medium) ]);
    (32, [ (2, Config.Weak); (2, Config.Medium); (4, Config.Medium) ]);
    (64, [ (2, Config.Medium); (4, Config.Medium); (4, Config.Strong) ]);
  ]
