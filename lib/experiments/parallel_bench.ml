(* Wall-clock comparison of deterministic single-domain execution
   against the domain-parallel mode.

   Like Perf, this harness measures real elapsed time, not modelled
   time: the parallel mode changes no modelled number by construction
   (the equivalence tests assert bit-identical results), so wall
   clock is the only axis on which it can win. Three measurements:

   - the scale-sweep grid point makespan with the platform's doorbell
     drains fanned over worker domains vs run inline;
   - MEE bulk page encryption ([write_pages]) with and without a
     worker pool;
   - MEE bulk page decryption ([read_pages]) likewise.

   The speedup ratios are the portable signal; on a single-hardware-
   thread host they sit near (or slightly below, from barrier costs)
   1.0x, which the JSON records honestly alongside the host block
   [Perf.write_json] emits, so a reader can tell the two cases
   apart. *)

module Pool = Hypertee_util.Domain_pool
module Mee = Hypertee_arch.Mem_encryption
module Phys_mem = Hypertee_arch.Phys_mem

let page_size = Hypertee_util.Units.page_size

let wall f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* Best-of-[n] wall clock: robust against one-off scheduler noise,
   which dwarfs everything else when worker domains oversubscribe a
   small host. *)
let best_of n f =
  ignore (wall f) (* warmup: faults in lazy pages, spawns nothing *);
  let best = ref infinity in
  for _ = 1 to n do
    best := Float.min !best (wall f)
  done;
  !best

let sample ~target ~metric ~value ~unit_ ~runs =
  { Perf.target; metric; value; unit_; runs }

let speedup ~target ~baseline ~parallel ~runs =
  sample ~target ~metric:"speedup-vs-sequential" ~value:(baseline /. parallel) ~unit_:"x"
    ~runs

let run ?(quick = false) ?domains () =
  let domains =
    match domains with Some d -> Stdlib.max 1 d | None -> Pool.recommended_domains ()
  in
  let reps = if quick then 3 else 5 in
  let samples = ref [] in
  let push s = samples := s :: !samples in
  (* Scale grid point: [shards] independent EMS instances behind one
     gate, each doorbell round's per-shard drains fanned over the
     pool. The MEE pipelines of enclave setup ride the same pool. *)
  let ops = if quick then 96 else 384 in
  let seed = 0x9A4A11E1L in
  let point ~domains () =
    let p =
      Scale.run_point ~seed ~domains ~cs_cores:8 ~shards:4 ~batch:8 ~ops ()
    in
    if p.Scale.invariant_violations <> 0 then
      failwith "Parallel_bench: invariant violations in scale point";
    if p.Scale.ok <> ops then failwith "Parallel_bench: scale point dropped requests"
  in
  let seq_s = best_of reps (point ~domains:1) in
  let par_s = best_of reps (point ~domains) in
  push
    (sample ~target:"scale-point/domains=1" ~metric:"wall-clock" ~value:seq_s ~unit_:"s"
       ~runs:reps);
  push
    (sample
       ~target:(Printf.sprintf "scale-point/domains=%d" domains)
       ~metric:"wall-clock" ~value:par_s ~unit_:"s" ~runs:reps);
  push (speedup ~target:"scale-point" ~baseline:seq_s ~parallel:par_s ~runs:reps);
  (* MEE bulk pipelines: encrypt+MAC (and verify+decrypt) a batch of
     pages per call, sequentially vs fanned over a pool. *)
  let pages = if quick then 48 else 192 in
  let batch =
    Array.init pages (fun i ->
        (i, Bytes.init page_size (fun j -> Char.chr ((i + (13 * j)) land 0xff))))
  in
  let frames = Array.map fst batch in
  let bytes = pages * page_size in
  let make_engine ~pool =
    let mee = Mee.create ~slots:4 () in
    Mee.program mee ~key_id:1 (Bytes.init 16 (fun i -> Char.chr (0x60 + i)));
    Option.iter (Mee.set_pool mee) pool;
    (mee, Phys_mem.create ~frames:pages)
  in
  let pool = if domains > 1 then Some (Pool.create ~domains) else None in
  Fun.protect
    ~finally:(fun () -> Option.iter Pool.shutdown pool)
    (fun () ->
      let mee_seq, mem_seq = make_engine ~pool:None in
      let mee_par, mem_par = make_engine ~pool in
      let bench_rw name mee mem =
        let write_s = best_of reps (fun () -> Mee.write_pages mee mem ~key_id:1 batch) in
        (* Cold reads flush the verified-line cache each rep so every
           page really re-runs the MAC; hot reads ride the cache
           (AES-only) — the spread is what the cache buys in bulk. *)
        let read_s =
          best_of reps (fun () ->
              Mee.flush_mac_cache mee;
              ignore (Mee.read_pages mee mem ~key_id:1 frames))
        in
        let read_hot_s =
          best_of reps (fun () -> ignore (Mee.read_pages mee mem ~key_id:1 frames))
        in
        let mb s = float_of_int bytes /. s /. 1e6 in
        push
          (sample
             ~target:(Printf.sprintf "mee-write-pages/%s" name)
             ~metric:"throughput" ~value:(mb write_s) ~unit_:"MB/s" ~runs:reps);
        push
          (sample
             ~target:(Printf.sprintf "mee-read-pages/%s" name)
             ~metric:"throughput" ~value:(mb read_s) ~unit_:"MB/s" ~runs:reps);
        push
          (sample
             ~target:(Printf.sprintf "mee-read-pages-hot/%s" name)
             ~metric:"throughput" ~value:(mb read_hot_s) ~unit_:"MB/s" ~runs:reps);
        (write_s, read_s)
      in
      let seq_w, seq_r = bench_rw "sequential" mee_seq mem_seq in
      let par_w, par_r =
        bench_rw (Printf.sprintf "pool=%d" domains) mee_par mem_par
      in
      push (speedup ~target:"mee-write-pages" ~baseline:seq_w ~parallel:par_w ~runs:reps);
      push (speedup ~target:"mee-read-pages" ~baseline:seq_r ~parallel:par_r ~runs:reps));
  List.rev !samples

let print ?out samples = Perf.print ?out samples
