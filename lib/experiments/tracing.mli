(** Traced experiment runs and the platform metrics report — the
    backing for [hypertee trace] / [hypertee metrics] and for
    [bench/main.exe trace].

    {!run} installs a fresh {!Hypertee_obs.Trace} tracer, replays a
    scaled-down version of one of the repo's experiments under it,
    writes the resulting timeline as Chrome [trace_event] JSON
    (loadable in [chrome://tracing] / [ui.perfetto.dev]) and prints
    the ASCII span summary. The tracer is uninstalled even if the
    experiment raises, so a failed traced run never leaves global
    tracing enabled behind the caller's back.

    {!metrics} drives a mixed management workload against a sharded
    platform and renders everything {!Hypertee.Platform.publish_metrics}
    snapshots — the gate, the encryption engine, each shard's
    mailbox / scheduler / runtime — plus an EMCall latency histogram. *)

(** Which experiment to trace:
    - [Fig6] — the discrete-event queueing model (CS generator cores
      on gate tracks, EMS service slots on sim tracks);
    - [Fig7] — each rv8 profile's enclave primitive sequence (create,
      page loads, measurement, EALLOC traffic, teardown) replayed
      through the real platform;
    - [Chaos] — one fault-sweep point at rate 0.05 (EMCall spans plus
      fault / retry / watchdog instants);
    - [Scale] — a batched multi-shard point (amortized transport
      visible in the span widths);
    - [Channel] — an attested secure-channel session on a two-shard
      platform (docs/PROTOCOL.md): three-flight handshake markers,
      record traffic with rekeys, orderly close. *)
type target = Fig6 | Fig7 | Chaos | Scale | Channel

val target_names : string list
val target_of_string : string -> target option
val target_name : target -> string

(** [run ?out ?quick ?seed ?path target] — trace one experiment,
    write Chrome JSON to [path] (default ["trace.json"]), print the
    summary to [out] (default [stdout]). [quick] shrinks the workload
    (CI-sized). Returns the tracer for callers that want to inspect
    the spans (tests). *)
val run :
  ?out:out_channel ->
  ?quick:bool ->
  ?seed:int64 ->
  ?path:string ->
  target ->
  Hypertee_obs.Trace.t

(** [metrics ?out ?seed ?ops ?json ()] — run [ops] mixed primitives
    on a fresh 2-shard platform, then render the full metrics
    registry to [out]; [json] additionally writes the registry as
    JSON to that path. Returns the registry. *)
val metrics :
  ?out:out_channel ->
  ?seed:int64 ->
  ?ops:int ->
  ?json:string ->
  unit ->
  Hypertee_obs.Metrics.t
