(** Correctness-verification experiment: the differential oracle and
    the invariant checker pointed at a live platform.

    [oracle_replay] drives a seeded management workload — the full
    lifecycle (ECREATE/EADD/EMEAS/EENTER/interrupt/ERESUME/EEXIT/
    EDESTROY), dynamic memory (EALLOC/EFREE/EWB/page faults), the
    whole shared-memory cycle (ESHMGET/ESHMSHR/ESHMAT/ESHMDT/
    ESHMDES), attestation, batched doorbells, and deliberate abuse
    (cross-privilege calls, forged senders, bogus arguments, unknown
    ids) — with an oracle shadowing the gate, then sweeps the
    invariants. [scenario_driver] adapts the same workload to the
    interleaving explorer. [run] is the [hypertee check]
    entry point. *)

type outcome = {
  calls : int;  (** EMCalls the oracle observed *)
  agreements : int;
  divergence_count : int;
  divergences : Hypertee_check.Oracle.divergence list;  (** retained sample *)
  report : Hypertee_check.Invariant.report;  (** end-of-run invariant sweep *)
}

(** Drive [calls] EMCalls (default 1200) under an attached oracle.
    [fault_rate] > 0 arms a uniform fault plan (default 0.0);
    [shards] (default 2) and [seed] shape the platform. *)
val oracle_replay :
  ?calls:int -> ?fault_rate:float -> ?shards:int -> ?seed:int64 -> ?deep:bool -> unit -> outcome

(** Explorer adapter: build a platform shaped by the scenario, run
    its op budget under the oracle, sweep invariants; any divergence
    or violation is a [Fail] carrying the reason. *)
val scenario_driver :
  Hypertee_check.Explorer.scenario -> Hypertee_check.Explorer.verdict

(** Run [n] explorer seeds (default 24) through {!scenario_driver}. *)
val explore :
  ?n:int ->
  unit ->
  (int64 * Hypertee_check.Explorer.scenario * string) list

(** Full verification pass for the CLI: a clean oracle replay, a
    fault-injected replay, and an explorer sweep. Prints a summary to
    [out]; returns [true] iff everything held. *)
val run : ?deep:bool -> ?calls:int -> ?seeds:int -> ?out:out_channel -> unit -> bool
