(** Enclave-as-a-service: a multi-tenant cloud driver over the
    sharded platform.

    A tenant fleet ({!Hypertee_workloads.Tenants}) offers sessions —
    warm-pool create (EWARM, falling back to the full cold launch on
    a miss), attestation of cold identities, a secure-channel compute
    phase, ERETIRE back into the warm pool — as real EMCalls against
    a fresh platform per sweep point. A per-shard FCFS single-server
    queue in virtual time turns [invoke_timed]'s modelled round trips
    into session latencies; the gate's token-bucket admission control
    runs on the same virtual clock and sheds overload with the typed
    [Busy] rejection. The output is the SLO curve: p50/p99/p99.9
    session latency against offered load, with the saturation knee
    per shard count, plus a closed-loop throughput run.

    Every point ends with a deep invariant sweep and the differential
    oracle's verdict; {!clean} is the churn-survival bar the CI
    enforces. *)

type point = {
  shards : int;
  offered_mult : float;  (** offered load as a multiple of calibrated capacity *)
  offered_per_s : float;  (** sessions per second *)
  sessions_offered : int;
  completed : int;
  shed_sessions : int;  (** sessions rejected at their opening call *)
  degraded : int;  (** sessions abandoned mid-flight *)
  warm_hits : int;
  cold_launches : int;
  calls : int;  (** EMCalls issued *)
  shed_requests : int;  (** gate-level [Busy] rejections *)
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  mean_ms : float;
  violations : int;  (** deep invariant sweep at end of run *)
  divergences : int;  (** differential-oracle disagreements *)
}

type calibration = {
  base_cold_ns : float;  (** unloaded cold-session latency (1 shard) *)
  base_warm_ns : float;  (** unloaded warm-session latency *)
  ops_per_session : float;  (** mean EMCalls per session *)
}

type curve = {
  curve_shards : int;
  points : point list;
  knee_mult : float option;
      (** highest offered multiple whose p99 stays within 4x the
          lightest point's p99 *)
}

type closed_point = {
  cl_shards : int;
  cl_tenants : int;
  cl_sessions : int;
  cl_completed : int;
  cl_degraded : int;
  cl_warm_hits : int;
  cl_p99_ms : float;
  cl_throughput_per_s : float;
  cl_violations : int;
  cl_divergences : int;
}

type outcome = {
  calibration : calibration;
  curves : curve list;
  closed : closed_point list;
}

val default_shard_counts : int list

(** [run ~seed ()] — the full sweep: calibrate, then for each shard
    count drive the open-loop offered-load ladder and one closed-loop
    run. [quick] shrinks sessions and ladder for CI. *)
val run :
  seed:int64 -> ?quick:bool -> ?domains:int -> ?shard_counts:int list -> unit -> outcome

(** One closed-loop run, exposed for tests. *)
val run_closed :
  seed:int64 ->
  spec:Hypertee_workloads.Tenants.spec ->
  ?domains:int ->
  shards:int ->
  tenants:int ->
  sessions_per_tenant:int ->
  unit ->
  closed_point

val knee_of : point list -> float option
val print : ?out:out_channel -> outcome -> unit

(** BENCH_cloud.json payload. *)
val json_of_outcome : outcome -> string

(** Every sweep point ended with 0 invariant violations and 0 oracle
    divergences. *)
val clean : outcome -> bool
