module Trace = Hypertee_obs.Trace
module Metrics = Hypertee_obs.Metrics
module Platform = Hypertee.Platform
module Emcall = Hypertee_cs.Emcall
module Types = Hypertee_ems.Types
module Config = Hypertee_arch.Config

type target = Fig6 | Fig7 | Chaos | Scale | Channel

let target_names = [ "fig6"; "fig7"; "chaos"; "scale"; "channel" ]

let target_of_string s =
  match String.lowercase_ascii s with
  | "fig6" -> Some Fig6
  | "fig7" -> Some Fig7
  | "chaos" -> Some Chaos
  | "scale" -> Some Scale
  | "channel" -> Some Channel
  | _ -> None

let target_name = function
  | Fig6 -> "fig6"
  | Fig7 -> "fig7"
  | Chaos -> "chaos"
  | Scale -> "scale"
  | Channel -> "channel"

(* Traced workload sizes: big enough for a structured timeline, small
   enough that the JSON stays loadable in a browser tab. *)
let fig6_requests ~quick = if quick then 512 else 4096
let chaos_ops ~quick = if quick then 300 else 2000
let scale_ops ~quick = if quick then 64 else 256
let fig7_cap ~quick = if quick then 8 else 64
let channel_messages ~quick = if quick then 40 else 400

(* Fig. 7 itself is analytic (the perf model attributes overhead per
   workload); its traced counterpart replays each rv8 profile's
   enclave primitive sequence — create, page loads, measurement,
   the profile's EALLOC traffic, teardown — through the real
   platform, so the trace shows the same primitives the figure
   charges for. [cap] bounds per-profile page loads and allocs. *)
let run_fig7 ~seed ~cap =
  let module Profile = Hypertee_workloads.Profile in
  let platform = Platform.create ~seed () in
  List.iter
    (fun p ->
      match
        Platform.invoke platform ~caller:Emcall.Os_kernel
          (Types.Create { config = Profile.enclave_config p })
      with
      | Ok (Types.Ok_created { enclave }) ->
        let data = Bytes.make 64 'w' in
        for i = 0 to Stdlib.min cap (Profile.load_pages p) - 1 do
          ignore
            (Platform.invoke platform ~caller:Emcall.Os_kernel
               (Types.Add { enclave; vpn = 0x100 + i; data; executable = i < 2 }))
        done;
        ignore
          (Platform.invoke platform ~caller:Emcall.Os_kernel (Types.Measure { enclave }));
        List.iter
          (fun (pages, times) ->
            for _ = 1 to Stdlib.min cap times do
              ignore
                (Platform.invoke platform ~caller:Emcall.User_host
                   (Types.Alloc { enclave; pages }))
            done)
          p.Profile.dynamic_allocs;
        ignore
          (Platform.invoke platform ~caller:Emcall.Os_kernel (Types.Destroy { enclave }))
      | _ -> ())
    Hypertee_workloads.Rv8.suite;
  (* The traced workload must leave a consistent platform behind. *)
  let report = Platform.check platform in
  if not (Hypertee_check.Invariant.ok report) then
    failwith ("Tracing.run_fig7: " ^ Hypertee_check.Invariant.report_to_string report)

(* Traced attested-channel session (docs/PROTOCOL.md): a host client
   ECHOPENs to a measured enclave on a two-shard platform, runs the
   three-flight handshake, streams [messages] records with rekeys
   along the way, and closes. The trace shows the handshake flights
   ("chan:hs:*" markers on the channel category) interleaved with the
   gate and EMS spans serving them. *)
let run_channel ~seed ~messages =
  let module Secure_channel = Hypertee.Secure_channel in
  let config = { Config.default with Config.ems_shards = 2 } in
  let platform = Platform.create ~seed ~config () in
  let enclave =
    match
      Platform.invoke platform ~caller:Emcall.Os_kernel
        (Types.Create { config = Types.default_config })
    with
    | Ok (Types.Ok_created { enclave }) ->
      let data = Bytes.make 64 's' in
      for i = 0 to 3 do
        ignore
          (Platform.invoke platform ~caller:Emcall.Os_kernel
             (Types.Add { enclave; vpn = 0x100 + i; data; executable = i < 2 }))
      done;
      ignore (Platform.invoke platform ~caller:Emcall.Os_kernel (Types.Measure { enclave }));
      enclave
    | _ -> failwith "Tracing.run_channel: enclave setup failed"
  in
  (match Secure_channel.establish platform ~listener:enclave ~rekey_after:32 () with
  | Error e -> failwith ("Tracing.run_channel: " ^ e)
  | Ok (client, server) ->
    for i = 1 to messages do
      let payload = Bytes.make (64 + (i mod 512)) (Char.chr (0x40 + (i mod 26))) in
      (match Secure_channel.send client payload with
      | Ok () -> ()
      | Error e -> failwith ("Tracing.run_channel: send: " ^ e));
      match Secure_channel.recv server with
      | Ok _ -> ()
      | Error e -> failwith ("Tracing.run_channel: recv: " ^ e)
    done;
    (match Secure_channel.close client with
    | Ok () -> ()
    | Error e -> failwith ("Tracing.run_channel: close: " ^ e));
    ignore (Secure_channel.recv server);
    ignore (Secure_channel.close server));
  let report = Platform.check platform in
  if not (Hypertee_check.Invariant.ok report) then
    failwith ("Tracing.run_channel: " ^ Hypertee_check.Invariant.report_to_string report)

let run_target ~seed ~quick = function
  | Fig6 ->
    ignore
      (Fig6.run ~seed ~cs_cores:4 ~ems_cores:2 ~ems_kind:Config.Medium
         ~requests:(fig6_requests ~quick))
  | Fig7 -> run_fig7 ~seed ~cap:(fig7_cap ~quick)
  | Chaos ->
    ignore (Chaos.run_point ~seed ~fault_rate:0.05 ~ops:(chaos_ops ~quick))
  | Scale ->
    ignore (Scale.run_point ~seed ~cs_cores:4 ~shards:2 ~batch:4 ~ops:(scale_ops ~quick) ())
  | Channel -> run_channel ~seed ~messages:(channel_messages ~quick)

let run ?(out = stdout) ?(quick = false) ?(seed = 0x7ACEL) ?(path = "trace.json") target =
  let tracer = Trace.create () in
  Trace.install tracer;
  Fun.protect
    ~finally:(fun () -> Trace.uninstall ())
    (fun () -> run_target ~seed ~quick target);
  Trace.write_chrome_json tracer ~path;
  Printf.fprintf out "traced %s (seed=%Ld%s): %d span(s), %d dropped -> %s\n"
    (target_name target) seed
    (if quick then ", quick" else "")
    (Trace.span_count tracer) (Trace.dropped tracer) path;
  output_string out (Trace.render_summary tracer);
  tracer

(* A mixed management workload against a sharded platform, reported
   through the metrics registry: the one-stop "what did the platform
   do" view (every subsystem publishes under its prefix). *)
let metrics ?(out = stdout) ?(seed = 0x3E7121C5L) ?(ops = 400) ?json () =
  let config = { Config.default with Config.ems_shards = 2 } in
  let platform = Platform.create ~seed ~config () in
  let enclaves =
    List.filter_map
      (fun _ ->
        match
          Platform.invoke platform ~caller:Emcall.Os_kernel
            (Types.Create { config = Types.default_config })
        with
        | Ok (Types.Ok_created { enclave }) -> Some enclave
        | _ -> None)
      (List.init 4 Fun.id)
  in
  let fleet = Array.of_list enclaves in
  let n = Array.length fleet in
  if n = 0 then failwith "Tracing.metrics: no enclave could be created";
  let latencies = Hypertee_util.Stats.create () in
  for i = 0 to ops - 1 do
    let enclave = fleet.(i mod n) in
    let caller, request =
      match i mod 5 with
      | 0 | 1 -> (Emcall.User_host, Types.Alloc { enclave; pages = 2 })
      | 2 -> (Emcall.Os_kernel, Types.Measure { enclave })
      | 3 -> (Emcall.User_enclave enclave, Types.Attest { enclave; user_data = Bytes.empty })
      | _ -> (Emcall.Os_kernel, Types.Writeback { pages_hint = 4 })
    in
    match Platform.invoke_timed platform ~caller request with
    | Ok (_, latency) -> Hypertee_util.Stats.add latencies latency
    | Error _ -> ()
  done;
  let registry = Metrics.create () in
  Platform.publish_metrics platform registry;
  let h = Metrics.histogram registry ~help:"modelled EMCall round trips (ns)" "emcall.latency_ns" in
  Array.iter (Metrics.observe h) (Hypertee_util.Stats.samples latencies);
  Printf.fprintf out "platform metrics after %d mixed primitives on %d shard(s), seed=%Ld\n"
    ops (Platform.shard_count platform) seed;
  output_string out (Metrics.render registry);
  (match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Metrics.to_json registry);
    close_out oc;
    Printf.fprintf out "wrote metrics JSON to %s\n" path);
  let report = Platform.check platform in
  if not (Hypertee_check.Invariant.ok report) then
    failwith ("Tracing.metrics: " ^ Hypertee_check.Invariant.report_to_string report);
  registry
