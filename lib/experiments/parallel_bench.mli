(** Wall-clock benchmark of domain-parallel execution.

    Parallel mode changes no modelled number — the equivalence tests
    assert the results are bit-identical to deterministic mode — so
    its one observable effect is wall clock. This harness measures
    that effect on the two fan-out paths: a scale-sweep grid point
    (per-shard doorbell drains over worker domains) and the MEE bulk
    page pipelines ([write_pages]/[read_pages] with and without a
    pool), reporting sequential and parallel times plus their
    speedup ratios as {!Perf.sample}s for [BENCH_perf.json].

    The host's [recommended-domains] is recorded alongside, because
    the ratios are only meaningful relative to the parallelism the
    machine actually offers: on a single-hardware-thread container
    they sit near 1.0x by physics, not by defect. *)

val run : ?quick:bool -> ?domains:int -> unit -> Perf.sample list
(** [run ()] benchmarks with [domains] workers (default
    {!Hypertee_util.Domain_pool.recommended_domains}); [quick]
    shrinks the workload sizes and repetition counts. *)

val print : ?out:out_channel -> Perf.sample list -> unit
(** Render the samples with {!Perf.print}'s table. *)
