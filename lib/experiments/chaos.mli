(** Chaos availability sweep (Table I availability claim).

    Runs a mixed enclave-management workload against a platform with
    a {!Hypertee_faults.Fault.uniform} plan at increasing fault
    rates, and reports how gracefully the service-level objectives
    degrade: success rate, p50/p99 invoke latency, how many faults
    the recovery machinery absorbed (EMCall retries + EMS watchdog),
    and how many enclaves integrity containment had to terminate.

    Deterministic given [seed]: the workload decisions and every
    fault schedule derive from it. The [fault_rate = 0.0] point uses
    the same injector machinery as the rest of the sweep, so the
    sweep's own baseline is honest. *)

type point = {
  fault_rate : float;  (** per-opportunity probability at every site *)
  ops : int;  (** EMCall invocations issued *)
  ok : int;  (** served with a non-error response *)
  degraded : int;  (** served, but with an EMS error (fault cascades) *)
  timeouts : int;  (** retry budget exhausted at the gate *)
  success_rate : float;  (** ok / ops *)
  p50_ns : float;  (** median invoke latency over successful ops *)
  p99_ns : float;
  injected : int;  (** faults actually fired by the injector *)
  recovered : int;  (** fault events the platform absorbed (audit) *)
  enclaves_killed : int;  (** integrity containment terminations *)
  retries : int;  (** mailbox re-requests issued by the gate *)
  invariant_violations : int;
      (** broken platform invariants at the end of the point
          ({!Hypertee.Platform.check}); 0 is the claim under test *)
}

(** Fault rates of the default sweep (includes 0.0). *)
val default_rates : float list

(** [run_point ~seed ~fault_rate ~ops] — one sweep point on a fresh
    platform. Never raises: every fault outcome is a counted bucket. *)
val run_point : seed:int64 -> fault_rate:float -> ops:int -> point

(** [run ~seed ~ops] — the full sweep over [default_rates]. *)
val run : seed:int64 -> ops:int -> point list

(** [print ?out points] renders the sweep as the standard ASCII
    table to [out] (default [stdout]) — the single formatting shared
    by the CLI and the benchmark harness. *)
val print : ?out:out_channel -> point list -> unit
