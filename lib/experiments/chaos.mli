(** Chaos availability sweep (Table I availability claim).

    Runs a mixed enclave-management workload against a platform with
    a {!Hypertee_faults.Fault.uniform} plan at increasing fault
    rates, and reports how gracefully the service-level objectives
    degrade: success rate, p50/p99 invoke latency, how many faults
    the recovery machinery absorbed (EMCall retries + EMS watchdog),
    and how many enclaves integrity containment had to terminate.

    Deterministic given [seed]: the workload decisions and every
    fault schedule derive from it. The [fault_rate = 0.0] point uses
    the same injector machinery as the rest of the sweep, so the
    sweep's own baseline is honest. *)

type point = {
  fault_rate : float;  (** per-opportunity probability at every site *)
  ops : int;  (** EMCall invocations issued *)
  ok : int;  (** served with a non-error response *)
  degraded : int;  (** served, but with an EMS error (fault cascades) *)
  timeouts : int;  (** retry budget exhausted at the gate *)
  success_rate : float;  (** ok / ops *)
  p50_ns : float;  (** median invoke latency over successful ops *)
  p99_ns : float;
  injected : int;  (** faults actually fired by the injector *)
  recovered : int;  (** fault events the platform absorbed (audit) *)
  enclaves_killed : int;  (** integrity containment terminations *)
  retries : int;  (** mailbox re-requests issued by the gate *)
  invariant_violations : int;
      (** broken platform invariants at the end of the point
          ({!Hypertee.Platform.check}); 0 is the claim under test *)
}

(** Fault rates of the default sweep (includes 0.0). *)
val default_rates : float list

(** [run_point ~seed ~fault_rate ~ops] — one sweep point on a fresh
    platform. Never raises: every fault outcome is a counted bucket. *)
val run_point : seed:int64 -> fault_rate:float -> ops:int -> point

(** [run ~seed ~ops] — the full sweep over [default_rates]. *)
val run : seed:int64 -> ops:int -> point list

(** [print ?out points] renders the sweep as the standard ASCII
    table to [out] (default [stdout]) — the single formatting shared
    by the CLI and the benchmark harness. *)
val print : ?out:out_channel -> point list -> unit

(** {2 Rolling restart}

    The crash-recovery scenario: on a multi-shard platform under
    live traffic (and {e no} fault plan, so every event is
    attributable), kill each EMS shard in turn, let requests time
    out cleanly at the gate during the outage, cold-restart the
    shard ({!Hypertee.Platform.recover_shard}: scrub, rebuild,
    journal replay), and verify nothing was lost: every pre-crash
    enclave survives (or was destroyed on request), the differential
    oracle stays silent, and the invariant sweep — deep, at the end
    — is clean. Each round also live-migrates one idle enclave, so
    migration runs under the same scrutiny. *)

type restart_round = {
  shard_killed : int;
  outage_ops : int;  (** requests issued while the shard was down *)
  outage_timeouts : int;  (** of those, clean gate timeouts *)
  outage_errors : int;
  replayed : int;  (** journal entries replayed on recovery *)
  replay_mismatches : int;  (** replayed responses diverging from the journal *)
  lost_enclaves : int;  (** pre-crash enclaves missing after recovery, destroys excused *)
  migration : string option;  (** post-recovery live-migration outcome *)
  round_violations : int;  (** invariant violations right after recovery *)
  round_divergences : int;  (** oracle divergences accrued this round *)
}

type restart_report = {
  shards : int;
  total_ops : int;
  rounds : restart_round list;
  total_lost : int;
  recovered_events : int;  (** recovered fault events across every shard's audit *)
  recovery_sites : (string * int) list;  (** recovered events by audit site *)
  oracle_observed : int;
  oracle_divergences : int;
  final_violations : int;  (** end-of-run deep invariant sweep *)
}

val restart_default_ops : int

(** [rolling_restart ()] runs the scenario: [shards] rounds (default
    3, each shard killed exactly once) over roughly [ops] total
    requests. Deterministic given [seed]. *)
val rolling_restart :
  ?seed:int64 -> ?ops:int -> ?shards:int -> ?domains:int -> unit -> restart_report

(** Zero lost enclaves, zero oracle divergences, zero invariant
    violations (per round and final), zero replay mismatches — the
    acceptance bar. *)
val restart_clean : restart_report -> bool

(** Render the report (per-round table + summary) to [out]. *)
val print_restart : ?out:out_channel -> restart_report -> unit
