module Xrng = Hypertee_util.Xrng

type spec = {
  tenants : int;
  images : int;
  zipf_s : float;
  mean_session_ops : float;
  max_session_ops : int;
  think_mean_ns : float;
}

let default_spec =
  {
    tenants = 16;
    images = 4;
    zipf_s = 1.1;
    mean_session_ops = 4.0;
    max_session_ops = 32;
    think_mean_ns = 2.0e6;
  }

type session = { arrival_ns : float; tenant : int; image : int; ops : int }

(* Zipf-ish popularity over the catalog: rank k gets weight
   1/(k+1)^s, pre-summed into a CDF so sampling is one uniform
   draw. *)
let popularity_cdf spec =
  if spec.images < 1 then invalid_arg "Tenants.popularity_cdf: empty catalog";
  let weights =
    Array.init spec.images (fun k -> 1.0 /. (float_of_int (k + 1) ** spec.zipf_s))
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let acc = ref 0.0 in
  Array.map
    (fun w ->
      acc := !acc +. (w /. total);
      !acc)
    weights

let pick_image rng cdf =
  let u = Xrng.float rng in
  let n = Array.length cdf in
  let rec go i = if i >= n - 1 || u <= cdf.(i) then i else go (i + 1) in
  go 0

(* Geometric session length with the configured mean, capped so one
   pathological draw cannot dominate a sweep point. *)
let session_ops rng spec =
  let p = 1.0 /. Float.max 1.0 spec.mean_session_ops in
  let rec go n = if n >= spec.max_session_ops || Xrng.float rng < p then n else go (n + 1) in
  go 1

let think_ns rng spec = Xrng.exponential rng ~mean:spec.think_mean_ns

let fresh_session rng spec cdf ~arrival_ns =
  {
    arrival_ns;
    tenant = Xrng.int rng (Stdlib.max 1 spec.tenants);
    image = pick_image rng cdf;
    ops = session_ops rng spec;
  }

let open_arrivals ~seed ~spec ~rate_per_s ~sessions =
  if rate_per_s <= 0.0 then invalid_arg "Tenants.open_arrivals: rate must be positive";
  if sessions < 0 then invalid_arg "Tenants.open_arrivals: negative session count";
  let rng = Xrng.create seed in
  let cdf = popularity_cdf spec in
  let mean_gap = 1e9 /. rate_per_s in
  let clock = ref 0.0 in
  List.init sessions (fun _ ->
      clock := !clock +. Xrng.exponential rng ~mean:mean_gap;
      fresh_session rng spec cdf ~arrival_ns:!clock)

(* Deterministic per-catalog-index enclave payload: a tiny code and
   data blob whose bytes depend only on the index, so every session
   of image [k] measures to the same digest — the property the warm
   pool keys on. *)
let image_bytes ~image =
  let mix off i = Char.chr ((((image * 131) + (i * 31) + off) land 0x7f) lor 0x01) in
  let code = Bytes.init 96 (mix 17) in
  let data = Bytes.init 64 (mix 89) in
  (code, data)
