(** Tenant-fleet model for the enclave-as-a-service experiment
    ({!Hypertee_experiments.Cloud}).

    Platform-free: this module only draws the shape of the offered
    load — deterministic Poisson arrivals, Zipf-ish image popularity
    over a small catalog, geometric session lengths, exponential
    think times — from a seeded {!Hypertee_util.Xrng}. The cloud
    driver turns each {!session} into real EMCalls. *)

type spec = {
  tenants : int;  (** distinct tenants in the fleet *)
  images : int;  (** enclave-image catalog size *)
  zipf_s : float;  (** popularity skew: weight of rank k is 1/(k+1)^s *)
  mean_session_ops : float;  (** mean secure-channel compute rounds per session *)
  max_session_ops : int;  (** cap on one session's compute rounds *)
  think_mean_ns : float;  (** closed-loop think time between a tenant's sessions *)
}

val default_spec : spec

type session = {
  arrival_ns : float;  (** virtual arrival time *)
  tenant : int;
  image : int;  (** catalog index, Zipf-distributed *)
  ops : int;  (** compute rounds in this session *)
}

(** Popularity CDF over the catalog (index by rank, compare a uniform
    draw). @raise Invalid_argument on an empty catalog. *)
val popularity_cdf : spec -> float array

val pick_image : Hypertee_util.Xrng.t -> float array -> int
val session_ops : Hypertee_util.Xrng.t -> spec -> int
val think_ns : Hypertee_util.Xrng.t -> spec -> float

(** One freshly drawn session at the given arrival time (closed-loop
    generators mint these on completion + think). *)
val fresh_session : Hypertee_util.Xrng.t -> spec -> float array -> arrival_ns:float -> session

(** [open_arrivals ~seed ~spec ~rate_per_s ~sessions] — the open-loop
    process: [sessions] arrivals with exponential inter-arrival gaps
    at the offered rate, independent of completions. *)
val open_arrivals : seed:int64 -> spec:spec -> rate_per_s:float -> sessions:int -> session list

(** Deterministic (code, data) payload for catalog index [image]:
    every session of the same image measures to the same SHA-256, the
    key the warm pool matches on. *)
val image_bytes : image:int -> bytes * bytes
