module Phys_mem = Hypertee_arch.Phys_mem
module Mem_encryption = Hypertee_arch.Mem_encryption
module Iommu = Hypertee_arch.Iommu

let page_size = Hypertee_util.Units.page_size

type kernel =
  | Vector_add of { a : int; b : int; out : int; length : int }
  | Vector_scale of { src : int; out : int; factor : int64; length : int }
  | Reduce_sum of { src : int; out : int; length : int }

type fault =
  | Not_bound
  | Wrong_enclave
  | Iommu_fault of Iommu.fault
  | Integrity_fault

type t = {
  mem : Phys_mem.t;
  mee : Mem_encryption.t;
  iommu : Iommu.t;
  device : int;
  mutable driver : Hypertee_ems.Types.enclave_id option;
  mutable completed : int;
  mutable rejected : int;
  page_cache : (int, bytes) Hashtbl.t;
      (** per-kernel staging of decrypted pages, flushed on writeback *)
}

let create ~mem ~mee ~iommu ~device =
  {
    mem;
    mee;
    iommu;
    device;
    driver = None;
    completed = 0;
    rejected = 0;
    page_cache = Hashtbl.create 8;
  }

let device t = t.device
let bind t ~driver = t.driver <- Some driver
let unbind t = t.driver <- None
let bound_to t = t.driver

let ( let* ) = Result.bind

(* One DMA beat: translate, then move a decrypted page through the
   engine. Loads are cached per kernel so read-modify-write sequences
   see their own stores. *)
let load_page t ~io_vpn ~access =
  match Iommu.translate t.iommu ~device:t.device ~io_vpn ~access with
  | Error f -> Error (Iommu_fault f)
  | Ok tr -> (
    match Hashtbl.find_opt t.page_cache io_vpn with
    | Some page -> Ok (tr, page)
    | None -> (
      match Mem_encryption.read_page t.mee t.mem ~key_id:tr.Iommu.key_id ~frame:tr.Iommu.frame with
      | page ->
        Hashtbl.replace t.page_cache io_vpn page;
        Ok (tr, page)
      | exception Mem_encryption.Integrity_violation _ -> Error Integrity_fault))

let read_u64 t ~io_va =
  let io_vpn = io_va / page_size and off = io_va mod page_size in
  let* _, page = load_page t ~io_vpn ~access:Iommu.Dma_read in
  Ok (Hypertee_util.Bytes_ext.get_u64_le page off)

let write_u64 t ~io_va v =
  let io_vpn = io_va / page_size and off = io_va mod page_size in
  let* _, page = load_page t ~io_vpn ~access:Iommu.Dma_write in
  Hypertee_util.Bytes_ext.set_u64_le page off v;
  Ok ()

(* Write dirty staged pages back through the engine. *)
let writeback t =
  Hashtbl.iter
    (fun io_vpn page ->
      match Iommu.translate t.iommu ~device:t.device ~io_vpn ~access:Iommu.Dma_read with
      | Ok tr ->
        Mem_encryption.write_page t.mee t.mem ~key_id:tr.Iommu.key_id ~frame:tr.Iommu.frame page
      | Error _ -> ())
    t.page_cache;
  Hashtbl.reset t.page_cache

let rec run_elements t ~i ~length f = if i = length then Ok () else
  let* () = f i in
  run_elements t ~i:(i + 1) ~length f

let execute t kernel =
  Hashtbl.reset t.page_cache;
  let result =
    match kernel with
    | Vector_add { a; b; out; length } ->
      run_elements t ~i:0 ~length (fun i ->
          let* x = read_u64 t ~io_va:(a + (8 * i)) in
          let* y = read_u64 t ~io_va:(b + (8 * i)) in
          write_u64 t ~io_va:(out + (8 * i)) (Int64.add x y))
    | Vector_scale { src; out; factor; length } ->
      run_elements t ~i:0 ~length (fun i ->
          let* x = read_u64 t ~io_va:(src + (8 * i)) in
          write_u64 t ~io_va:(out + (8 * i)) (Int64.mul x factor))
    | Reduce_sum { src; out; length } ->
      let acc = ref 0L in
      let* () =
        run_elements t ~i:0 ~length (fun i ->
            let* x = read_u64 t ~io_va:(src + (8 * i)) in
            acc := Int64.add !acc x;
            Ok ())
      in
      write_u64 t ~io_va:out !acc
  in
  (match result with Ok () -> writeback t | Error _ -> Hashtbl.reset t.page_cache);
  result

let submit t ~from kernel =
  match t.driver with
  | None ->
    t.rejected <- t.rejected + 1;
    Error Not_bound
  | Some driver when driver <> from ->
    t.rejected <- t.rejected + 1;
    Error Wrong_enclave
  | Some _ -> (
    match execute t kernel with
    | Ok () ->
      t.completed <- t.completed + 1;
      Ok ()
    | Error f ->
      t.rejected <- t.rejected + 1;
      Error f)

let completed t = t.completed
let rejected t = t.rejected
