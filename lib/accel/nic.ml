module Phys_mem = Hypertee_arch.Phys_mem
module Mem_encryption = Hypertee_arch.Mem_encryption
module Ihub = Hypertee_arch.Ihub
module Bx = Hypertee_util.Bytes_ext

type ring = { frame : int; key_id : int; entries : int }

type t = {
  mem : Phys_mem.t;
  mee : Mem_encryption.t;
  ihub : Ihub.t;
  channel : int;
  mutable tx_ring : ring option;
  mutable payload_key_id : int;
  mutable wire : bytes list; (* reversed *)
  mutable frames_sent : int;
}

let create ~mem ~mee ~ihub ~channel =
  { mem; mee; ihub; channel; tx_ring = None; payload_key_id = 0; wire = []; frames_sent = 0 }

let channel t = t.channel
let set_tx_ring t ~frame ~key_id ~entries = t.tx_ring <- Some { frame; key_id; entries }
let set_payload_key_id t k = t.payload_key_id <- k

type tx_error =
  | No_ring
  | Dma_denied of Ihub.denial
  | Bad_descriptor of string
  | Integrity of int

let ( let* ) = Result.bind

let dma_fetch t ~frame ~key_id =
  match Ihub.check t.ihub ~initiator:(Ihub.Dma t.channel) ~direction:Ihub.Load ~frame with
  | Error d -> Error (Dma_denied d)
  | Ok () -> (
    match Mem_encryption.read_page t.mee t.mem ~key_id ~frame with
    | page -> Ok page
    | exception Mem_encryption.Integrity_violation _ -> Error (Integrity frame))

let descriptor_size = 16

let transmit t ~head ~count =
  match t.tx_ring with
  | None -> Error No_ring
  | Some ring ->
    let rec go i sent =
      if i = count then Ok sent
      else begin
        let slot = (head + i) mod ring.entries in
        if (slot + 1) * descriptor_size > Hypertee_util.Units.page_size then
          Error (Bad_descriptor "ring slot beyond the ring page")
        else begin
          let* ring_page = dma_fetch t ~frame:ring.frame ~key_id:ring.key_id in
          let off = slot * descriptor_size in
          let payload_frame = Int64.to_int (Bx.get_u64_le ring_page off) in
          let payload_off =
            Int64.to_int (Int64.logand (Bx.get_u64_le ring_page (off + 8)) 0xFFFFFFFFL)
          in
          let payload_len =
            Int64.to_int (Int64.shift_right_logical (Bx.get_u64_le ring_page (off + 8)) 32)
          in
          if payload_len = 0 then Error (Bad_descriptor "zero-length payload")
          else if payload_off < 0 || payload_off + payload_len > Hypertee_util.Units.page_size
          then Error (Bad_descriptor "payload escapes its frame")
          else if payload_frame < 0 || payload_frame >= Phys_mem.frames t.mem then
            Error (Bad_descriptor "payload frame out of range")
          else begin
            let* payload_page = dma_fetch t ~frame:payload_frame ~key_id:t.payload_key_id in
            t.wire <- Bytes.sub payload_page payload_off payload_len :: t.wire;
            t.frames_sent <- t.frames_sent + 1;
            go (i + 1) (sent + 1)
          end
        end
      end
    in
    go 0 0

let wire t = List.rev t.wire
let frames_sent t = t.frames_sent

let clear_wire t = t.wire <- []
