(* hypertee: command-line front end for the simulator.

   Subcommands:
     info                     platform and configuration summary
     demo                     run the full enclave-lifecycle demo
     attest                   run remote attestation end to end
     primitives               list Table II primitives
     cost <primitive>         service-time breakdown on each EMS core
     slo                      the Fig. 6 queueing experiment for one setup
     area                     the Table V area report
     security                 the Table I / Table VI matrices
     chaos                    fault-injection availability sweep
     scale                    CS cores x EMS shards x batch-size sweep
     trace <experiment>       traced run exported as Chrome trace_event JSON
     metrics                  platform metrics registry after a mixed workload *)

open Cmdliner
module Types = Hypertee_ems.Types
module Config = Hypertee_arch.Config
module Table = Hypertee_util.Table

let seed_arg =
  let doc = "Deterministic platform seed." in
  Arg.(value & opt int 0x5EED & info [ "seed" ] ~docv:"SEED" ~doc)

let platform_of_seed seed = Hypertee.Platform.create ~seed:(Int64.of_int seed) ()

(* --- info --- *)

let info_cmd =
  let run seed =
    let platform = platform_of_seed seed in
    let config = Hypertee.Platform.config platform in
    Printf.printf "HyperTEE platform (seed %#x)\n" seed;
    Printf.printf "  CS cores       : %d x %s\n" config.Config.cs_cores Config.cs_core.Config.name;
    Printf.printf "  EMS cores      : %d x %s\n" config.Config.ems_cores
      (Config.ems_core config.Config.ems_kind).Config.name;
    Printf.printf "  memory         : %d MiB CS + %d MiB EMS private\n" config.Config.memory_mb
      config.Config.ems_memory_mb;
    Printf.printf "  crypto engine  : %b\n" config.Config.crypto_engine;
    Printf.printf "  platform hash  : %s\n"
      (Hypertee_util.Bytes_ext.to_hex (Hypertee.Platform.platform_measurement platform));
    Printf.printf "  EK public      : %s...\n"
      (String.sub
         (Hypertee_util.Bytes_ext.to_hex
            (Hypertee_crypto.Rsa.public_to_bytes (Hypertee.Platform.ek_public platform)))
         0 32)
  in
  Cmd.v (Cmd.info "info" ~doc:"Show the platform configuration")
    Term.(const run $ seed_arg)

(* --- demo --- *)

let demo_cmd =
  let run seed =
    let platform = platform_of_seed seed in
    let image =
      Hypertee.Sdk.image_of_code ~code:(Bytes.of_string "demo enclave")
        ~data:(Bytes.of_string "demo data") ()
    in
    match Hypertee.Sdk.launch platform image with
    | Error m -> `Error (false, m)
    | Ok enclave -> (
      Printf.printf "enclave %d launched (measurement verified)\n" enclave;
      match Hypertee.Sdk.enter platform ~enclave with
      | Error m -> `Error (false, m)
      | Ok session ->
        Hypertee.Session.write session ~va:(Hypertee.Session.heap_va session)
          (Bytes.of_string "hello");
        Printf.printf "encrypted heap write/read: %S\n"
          (Bytes.to_string
             (Hypertee.Session.read session ~va:(Hypertee.Session.heap_va session) ~len:5));
        (match Hypertee.Session.alloc_timed session ~pages:4 with
        | Ok (va, latency_ns) ->
          Printf.printf "EALLOC -> va %#x (%.1f us round trip)\n" va (latency_ns /. 1e3)
        | Error e -> Printf.printf "EALLOC failed: %s\n" (Types.error_message e));
        (match Hypertee.Sdk.destroy platform ~enclave with
        | Ok () -> print_endline "enclave destroyed"
        | Error m -> Printf.printf "destroy failed: %s\n" m);
        `Ok ())
  in
  Cmd.v (Cmd.info "demo" ~doc:"Run the enclave lifecycle demo")
    Term.(ret (const run $ seed_arg))

(* --- attest --- *)

let attest_cmd =
  let run seed =
    let platform = platform_of_seed seed in
    let image = Hypertee.Sdk.image_of_code ~code:(Bytes.of_string "attested code") ~data:Bytes.empty () in
    match Hypertee.Sdk.launch platform image with
    | Error m -> `Error (false, m)
    | Ok enclave -> (
      match Hypertee.Sdk.enter platform ~enclave with
      | Error m -> `Error (false, m)
      | Ok session -> (
        let rng = Hypertee_util.Xrng.create (Int64.of_int (seed + 1)) in
        match
          Hypertee.Verifier.attest_enclave ~rng ~ek:(Hypertee.Platform.ek_public platform)
            ~ak:(Hypertee.Platform.ak_public platform)
            ~expected_measurement:(Hypertee.Sdk.expected_measurement image)
            session
        with
        | Ok outcome ->
          Printf.printf "attestation OK\n  enclave measurement: %s\n  shared session key : %s\n"
            (Hypertee_util.Bytes_ext.to_hex
               outcome.Hypertee.Verifier.quote.Hypertee_ems.Attest.enclave_measurement)
            (Hypertee_util.Bytes_ext.to_hex outcome.Hypertee.Verifier.session_key);
          `Ok ()
        | Error f -> `Error (false, Hypertee.Verifier.failure_message f)))
  in
  Cmd.v (Cmd.info "attest" ~doc:"Run remote attestation end to end")
    Term.(ret (const run $ seed_arg))

(* --- primitives --- *)

let primitives_cmd =
  let run () =
    Table.print
      ~headers:[ "Primitive"; "Priv."; "Semantics" ]
      (List.map
         (fun op ->
           [
             Types.opcode_name op;
             (match Types.required_privilege op with Types.Os -> "OS" | Types.User -> "User");
             Types.opcode_semantics op;
           ])
         Types.all_opcodes)
  in
  Cmd.v (Cmd.info "primitives" ~doc:"List the Table II primitives") Term.(const run $ const ())

(* --- cost --- *)

let cost_cmd =
  let primitive_arg =
    let doc = "Primitive name (e.g. EALLOC, ECREATE, EATTEST)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PRIMITIVE" ~doc)
  in
  let pages_arg =
    let doc = "Page count for size-dependent primitives." in
    Arg.(value & opt int 16 & info [ "pages" ] ~docv:"N" ~doc)
  in
  let run name pages =
    let name = String.uppercase_ascii name in
    match List.find_opt (fun op -> Types.opcode_name op = name) Types.all_opcodes with
    | None -> `Error (false, "unknown primitive " ^ name)
    | Some op ->
      let request : Types.request =
        match op with
        | Types.ECREATE -> Types.Create { config = Types.default_config }
        | Types.EADD -> Types.Add { enclave = 1; vpn = 0; data = Bytes.create 4096; executable = false }
        | Types.EENTER -> Types.Enter { enclave = 1 }
        | Types.ERESUME -> Types.Resume { enclave = 1 }
        | Types.EEXIT -> Types.Exit { enclave = 1 }
        | Types.EDESTROY -> Types.Destroy { enclave = 1 }
        | Types.EALLOC -> Types.Alloc { enclave = 1; pages }
        | Types.EFREE -> Types.Free { enclave = 1; vpn = 0; pages }
        | Types.EWB -> Types.Writeback { pages_hint = pages }
        | Types.ESHMGET -> Types.Shmget { owner = 1; pages; max_perm = Types.Read_write }
        | Types.ESHMAT -> Types.Shmat { enclave = 1; shm = 1; requested_perm = Types.Read_write }
        | Types.ESHMDT -> Types.Shmdt { enclave = 1; shm = 1 }
        | Types.ESHMSHR -> Types.Shmshr { owner = 1; shm = 1; grantee = 2; perm = Types.Read_only }
        | Types.ESHMDES -> Types.Shmdes { owner = 1; shm = 1 }
        | Types.EMEAS -> Types.Measure { enclave = 1 }
        | Types.EATTEST -> Types.Attest { enclave = 1; user_data = Bytes.empty }
        | Types.ECHOPEN -> Types.Chan_open { listener = 1 }
        | Types.ECHACC -> Types.Chan_accept { enclave = 1; chan = 1 }
        | Types.ECHSEND -> Types.Chan_send { chan = 1; seg = Bytes.create 256 }
        | Types.ECHRECV -> Types.Chan_recv { chan = 1 }
        | Types.ECHCLOSE -> Types.Chan_close { chan = 1 }
        | Types.ERETIRE -> Types.Retire { enclave = 1 }
        | Types.EWARM -> Types.Warm_create { measurement = Bytes.create 32 }
      in
      let rows =
        List.concat_map
          (fun kind ->
            List.map
              (fun engine_on ->
                let engine =
                  if engine_on then Hypertee_crypto.Engine.default_hardware
                  else Hypertee_crypto.Engine.default_software
                in
                let cost = Hypertee_ems.Cost.create ~ems:(Config.ems_core kind) ~engine in
                [
                  Config.ems_kind_name kind;
                  (if engine_on then "hw" else "sw");
                  Hypertee_util.Units.show_ns (Hypertee_ems.Cost.service_ns cost request);
                ])
              [ true; false ])
          [ Config.Weak; Config.Medium; Config.Strong ]
      in
      Table.print ~headers:[ "EMS core"; "crypto"; "service time" ] rows;
      `Ok ()
  in
  Cmd.v (Cmd.info "cost" ~doc:"Service-time of a primitive on each EMS configuration")
    Term.(ret (const run $ primitive_arg $ pages_arg))

(* --- slo --- *)

let slo_cmd =
  let cs_arg = Arg.(value & opt int 32 & info [ "cs-cores" ] ~docv:"N" ~doc:"CS core count.") in
  let ems_arg = Arg.(value & opt int 2 & info [ "ems-cores" ] ~docv:"N" ~doc:"EMS core count.") in
  let kind_arg =
    let kinds = [ ("weak", Config.Weak); ("medium", Config.Medium); ("strong", Config.Strong) ] in
    Arg.(value & opt (enum kinds) Config.Medium & info [ "ems-kind" ] ~docv:"KIND" ~doc:"EMS core kind.")
  in
  let requests_arg =
    Arg.(value & opt int 16384 & info [ "requests" ] ~docv:"N" ~doc:"Allocation primitives to issue.")
  in
  let run seed cs_cores ems_cores kind requests =
    let c =
      Hypertee_experiments.Fig6.run ~seed:(Int64.of_int seed) ~cs_cores ~ems_cores ~ems_kind:kind
        ~requests
    in
    Printf.printf "%d CS cores against %d %s EMS core(s), %d requests\n" cs_cores ems_cores
      (Config.ems_kind_name kind) requests;
    Printf.printf "baseline (non-enclave p99): %s\n"
      (Hypertee_util.Units.show_ns c.Hypertee_experiments.Fig6.baseline_ns);
    Printf.printf "p99 latency: %.2fx baseline\n" c.Hypertee_experiments.Fig6.p99_multiplier;
    List.iter
      (fun (x, frac) ->
        if List.mem x [ 1.0; 2.0; 4.0; 8.0 ] then
          Printf.printf "  resolved within %4.1fx baseline: %5.1f%%\n" x (100.0 *. frac))
      c.Hypertee_experiments.Fig6.points
  in
  Cmd.v (Cmd.info "slo" ~doc:"Run the Fig. 6 concurrent-primitive SLO experiment")
    Term.(const run $ seed_arg $ cs_arg $ ems_arg $ kind_arg $ requests_arg)

(* --- area --- *)

let area_cmd =
  let run () =
    Table.print
      ~headers:[ "CS cores"; "CS mm2"; "EMS config"; "EMS mm2"; "overhead" ]
      (List.map
         (fun (r : Hypertee_arch.Area.report) ->
           [
             string_of_int r.Hypertee_arch.Area.cs_cores;
             Printf.sprintf "%.0f" r.Hypertee_arch.Area.cs_area_mm2;
             Printf.sprintf "%d %s" r.Hypertee_arch.Area.ems_cores
               (Config.ems_kind_name r.Hypertee_arch.Area.ems_kind);
             Printf.sprintf "%.2f" r.Hypertee_arch.Area.ems_area_mm2;
             Printf.sprintf "%.2f%%" r.Hypertee_arch.Area.overhead_pct;
           ])
         (Hypertee_arch.Area.table_v ()))
  in
  Cmd.v (Cmd.info "area" ~doc:"Table V area report") Term.(const run $ const ())

(* --- security --- *)

let security_cmd =
  let run () =
    print_endline "Table I: security risks";
    Table.print
      ~headers:[ "Security Threats"; "Attack Management Tasks"; "Attack Enclaves" ]
      (Hypertee.Security.table_i_rows ());
    print_endline "\nTable VI: defense capability";
    Table.print
      ~headers:("TEE" :: List.map Hypertee.Security.attack_name Hypertee.Security.all_attacks)
      (Hypertee.Security.table_vi_rows ())
  in
  Cmd.v (Cmd.info "security" ~doc:"Table I and Table VI matrices") Term.(const run $ const ())

(* --- chaos --- *)

let chaos_cmd =
  let ops_arg =
    Arg.(value & opt int 2000 & info [ "ops" ] ~docv:"N" ~doc:"EMCall invocations per sweep point.")
  in
  let smoke_arg =
    Arg.(value & flag & info [ "smoke" ] ~doc:"Quick sweep (300 ops per point).")
  in
  let rolling_arg =
    Arg.(
      value & flag
      & info [ "rolling" ]
          ~doc:
            "Run only the rolling-restart scenario: kill and cold-restart every EMS shard \
             under live traffic, verify zero lost enclaves and a clean end-of-run deep \
             invariant sweep. Exits nonzero on any loss, divergence or violation.")
  in
  let table_arg =
    Arg.(
      value & opt (some string) None
      & info [ "table" ] ~docv:"FILE"
          ~doc:"Also write the rolling-restart report table to $(docv).")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains for the rolling-restart platform ($(b,Config.domains)); the \
             HYPERTEE_EXEC environment variable overrides this.")
  in
  let run seed ops smoke rolling table domains =
    let ops = if smoke then 300 else ops in
    let seed = Int64.of_int seed in
    let rolling_pass ~ops =
      let r = Hypertee_experiments.Chaos.rolling_restart ~seed ~ops ~domains () in
      Hypertee_experiments.Chaos.print_restart r;
      (match table with
      | None -> ()
      | Some path ->
        let ch = open_out path in
        Hypertee_experiments.Chaos.print_restart ~out:ch r;
        close_out ch;
        Printf.printf "wrote rolling-restart table to %s\n" path);
      r
    in
    if rolling then begin
      Printf.printf "rolling restart: ops=%d, seed=%Ld\n" ops seed;
      let r = rolling_pass ~ops in
      if not (Hypertee_experiments.Chaos.restart_clean r) then Stdlib.exit 1
    end
    else begin
      Printf.printf "chaos sweep: ops=%d per point, seed=%Ld\n" ops seed;
      Printf.printf
        "recovery machinery: EMCall retry/timeout, EMS watchdog, integrity containment\n";
      Hypertee_experiments.Chaos.print (Hypertee_experiments.Chaos.run ~seed ~ops);
      Printf.printf "\nrolling restart (quick pass): ops=%d\n"
        Hypertee_experiments.Chaos.restart_default_ops;
      let r = rolling_pass ~ops:Hypertee_experiments.Chaos.restart_default_ops in
      if not (Hypertee_experiments.Chaos.restart_clean r) then Stdlib.exit 1
    end
  in
  Cmd.v
    (Cmd.info "chaos" ~doc:"Availability sweep under deterministic fault injection")
    Term.(const run $ seed_arg $ ops_arg $ smoke_arg $ rolling_arg $ table_arg $ domains_arg)

(* --- scale --- *)

let scale_cmd =
  let ops_arg =
    Arg.(value & opt int 256 & info [ "ops" ] ~docv:"N" ~doc:"EALLOC primitives per grid point.")
  in
  let smoke_arg = Arg.(value & flag & info [ "smoke" ] ~doc:"Quick sweep (64 ops per point).") in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains per sweep platform ($(b,Config.domains)); the results are \
             identical by construction, only wall clock changes. The HYPERTEE_EXEC \
             environment variable overrides this.")
  in
  let run seed ops smoke domains =
    let ops = if smoke then 64 else ops in
    let seed = Int64.of_int seed in
    Printf.printf "scalability sweep: ops=%d per point, seed=%Ld, domains=%d\n" ops seed domains;
    Printf.printf "one doorbell drains a batch; EMS shards serve disjoint enclave id classes\n";
    Hypertee_experiments.Scale.print ~seed ~domains ~ops ();
    print_newline ();
    Hypertee_experiments.Scale.print_rebalance
      (Hypertee_experiments.Scale.rebalance ~seed ~ops ())
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:"Scalability sweep: CS cores x EMS shards x doorbell batch size")
    Term.(const run $ seed_arg $ ops_arg $ smoke_arg $ domains_arg)

(* --- cloud --- *)

let cloud_cmd =
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"CI-sized sweep (fewer sessions, shorter ladder).")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the SLO curves as JSON (BENCH_cloud.json).")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains per sweep platform ($(b,Config.domains)); results are identical \
             by construction. The HYPERTEE_EXEC environment variable overrides this.")
  in
  let run seed quick json domains =
    let seed = Int64.of_int seed in
    Printf.printf "enclave-as-a-service sweep: seed=%Ld, domains=%d%s\n" seed domains
      (if quick then " (quick)" else "");
    Printf.printf
      "sessions: EWARM warm pool (cold launch on miss) -> attest -> secure channel -> ERETIRE\n";
    let outcome = Hypertee_experiments.Cloud.run ~seed ~quick ~domains () in
    Hypertee_experiments.Cloud.print outcome;
    (match json with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Hypertee_experiments.Cloud.json_of_outcome outcome);
      close_out oc;
      Printf.printf "wrote SLO curves to %s\n" path);
    if not (Hypertee_experiments.Cloud.clean outcome) then begin
      prerr_endline "cloud: invariant violations or oracle divergences under churn";
      Stdlib.exit 1
    end
  in
  Cmd.v
    (Cmd.info "cloud"
       ~doc:
         "Multi-tenant enclave-as-a-service load sweep: SLO curves, admission control, warm \
          pool")
    Term.(const run $ seed_arg $ quick_arg $ json_arg $ domains_arg)

(* --- check --- *)

let check_cmd =
  let deep_arg =
    Arg.(
      value & flag
      & info [ "deep" ] ~doc:"Also MAC-verify every mapped enclave and shared page.")
  in
  let calls_arg =
    Arg.(
      value & opt int 1200
      & info [ "calls" ] ~docv:"N" ~doc:"EMCalls per oracle replay (clean and fault-injected).")
  in
  let seeds_arg =
    Arg.(
      value & opt int 24
      & info [ "seeds" ] ~docv:"N" ~doc:"Interleaving-explorer scenarios to run.")
  in
  let run deep calls seeds =
    if not (Hypertee_experiments.Verify.run ~deep ~calls ~seeds ()) then Stdlib.exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Verify platform invariants and replay the EMCall stream against a differential \
          oracle")
    Term.(const run $ deep_arg $ calls_arg $ seeds_arg)

(* --- trace --- *)

let trace_cmd =
  let target_arg =
    let doc =
      "Experiment to trace: " ^ String.concat ", " Hypertee_experiments.Tracing.target_names ^ "."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"CI-sized workload.") in
  let out_arg =
    Arg.(value & opt string "trace.json" & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Where to write the Chrome trace_event JSON.")
  in
  let run seed target quick path =
    match Hypertee_experiments.Tracing.target_of_string target with
    | None ->
      `Error
        (false,
         Printf.sprintf "unknown experiment %S (one of: %s)" target
           (String.concat ", " Hypertee_experiments.Tracing.target_names))
    | Some t ->
      ignore (Hypertee_experiments.Tracing.run ~quick ~seed:(Int64.of_int seed) ~path t);
      Printf.printf "load %s in chrome://tracing or ui.perfetto.dev\n" path;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run an experiment under the span tracer and export Chrome trace_event JSON")
    Term.(ret (const run $ seed_arg $ target_arg $ quick_arg $ out_arg))

(* --- conformance --- *)

let conformance_cmd =
  let run () =
    let outcomes = Hypertee_channel.Conformance.run () in
    print_string (Hypertee_channel.Conformance.render outcomes);
    if Hypertee_channel.Conformance.all_ok outcomes then `Ok ()
    else `Error (false, "conformance vectors failed")
  in
  Cmd.v
    (Cmd.info "conformance"
       ~doc:
         "Run the secure-channel protocol conformance vectors (docs/PROTOCOL.md \xC2\xA77): \
          canned handshake flights, record round trips, and every malformed-input rejection")
    Term.(ret (const run $ const ()))

(* --- metrics --- *)

let metrics_cmd =
  let ops_arg =
    Arg.(value & opt int 400 & info [ "ops" ] ~docv:"N" ~doc:"Mixed primitives to issue.")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Also write the registry as JSON to $(docv).")
  in
  let run seed ops json =
    ignore (Hypertee_experiments.Tracing.metrics ~seed:(Int64.of_int seed) ~ops ?json ())
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Run a mixed workload and print the platform metrics registry")
    Term.(const run $ seed_arg $ ops_arg $ json_arg)

(* --- perf --- *)

let perf_cmd =
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Shorter measurement windows and sweep.")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Also write the samples as a JSON array to $(docv).")
  in
  let parallel_arg =
    Arg.(
      value & flag
      & info [ "parallel" ]
          ~doc:
            "Also benchmark domain-parallel execution: scale-point makespan and MEE bulk \
             pipelines, sequential vs fanned over worker domains, with speedup ratios.")
  in
  let domains_arg =
    Arg.(
      value & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Worker domains for --parallel (default: what the host recommends).")
  in
  let baseline_arg =
    Arg.(
      value & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Compare the fresh speedup-vs-reference ratios against the samples in $(docv) \
             (a previously written perf JSON) and exit non-zero on a regression beyond the \
             tolerance. Raw MB/s is not gated: it is machine-dependent, the ratios are \
             not.")
  in
  let tolerance_arg =
    Arg.(
      value & opt float 30.0
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:
            "Allowed drop (percent) of a speedup ratio below the baseline before \
             --baseline fails, absorbing benchmark noise.")
  in
  let run quick json parallel domains baseline tolerance =
    Printf.printf "wall-clock data-plane benchmark (%s windows)\n"
      (if quick then "quick" else "full");
    (* Load the baseline up front: --json and --baseline may name the
       same file (refreshing the committed numbers while gating
       against the old ones). *)
    let baseline_samples =
      match baseline with
      | None -> None
      | Some path ->
        if Sys.file_exists path then Some (path, Hypertee_experiments.Perf.load_baseline ~path)
        else begin
          Printf.printf
            "WARNING: baseline %s not found; skipping the perf regression guard\n" path;
          None
        end
    in
    let samples = Hypertee_experiments.Perf.run ~quick () in
    let samples =
      if not parallel then samples
      else begin
        Printf.printf "parallel-execution benchmark (%d recommended domain(s) on this host)\n"
          (Hypertee_util.Domain_pool.recommended_domains ());
        samples @ Hypertee_experiments.Parallel_bench.run ~quick ?domains ()
      end
    in
    Hypertee_experiments.Perf.print samples;
    (match json with
    | None -> ()
    | Some path ->
      Hypertee_experiments.Perf.write_json ~path samples;
      Printf.printf "wrote %d samples to %s\n" (List.length samples) path);
    match baseline_samples with
    | None -> ()
    | Some (path, base) -> (
      match
        Hypertee_experiments.Perf.compare_to_baseline ~baseline:base ~tolerance_pct:tolerance
          samples
      with
      | [] ->
        Printf.printf "perf guard: speedup ratios within %.0f%% of %s\n" tolerance path
      | regs ->
        List.iter
          (fun r ->
            Printf.printf "perf guard: REGRESSION %s %s: %.2fx -> %.2fx (tolerance %.0f%%)\n"
              r.Hypertee_experiments.Perf.r_target r.Hypertee_experiments.Perf.r_metric
              r.Hypertee_experiments.Perf.r_baseline r.Hypertee_experiments.Perf.r_current
              tolerance)
          regs;
        exit 1)
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:"Wall-clock MB/s microbenchmarks of the crypto data plane")
    Term.(
      const run $ quick_arg $ json_arg $ parallel_arg $ domains_arg $ baseline_arg
      $ tolerance_arg)

let () =
  let doc = "HyperTEE: a decoupled TEE architecture simulator (MICRO 2024 reproduction)" in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "hypertee" ~version:"1.0.0" ~doc)
          [
            info_cmd; demo_cmd; attest_cmd; primitives_cmd; cost_cmd; slo_cmd; area_cmd;
            security_cmd; chaos_cmd; scale_cmd; cloud_cmd; check_cmd; trace_cmd; metrics_cmd;
            conformance_cmd; perf_cmd;
          ]))
