(* Attack demonstrations: each of the paper's threat classes mounted
   against the platform, showing the defense that stops it.

   1. Malicious OS maps an enclave frame into its own page table
      (page-table controlled channel) -> bitmap check faults.
   2. Cold-boot attack dumps raw DRAM -> ciphertext only.
   3. Allocation-based controlled channel -> the OS sees only batched
      pool refills, not per-enclave allocations.
   4. Cross-privilege primitive invocation -> EMCall gate rejects.
   5. Forged-identity primitive (an enclave acting as another) ->
      EMS identity check rejects.
   6. Rogue DMA into enclave memory -> iHub whitelist drops it.
   7. Physical tamper with encrypted DRAM -> integrity MAC fault.

   Run with: dune exec examples/attack_demos.exe *)

module Types = Hypertee_ems.Types
module Ptw = Hypertee_arch.Ptw
module Pte = Hypertee_arch.Pte
module Page_table = Hypertee_arch.Page_table

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("FATAL: " ^ m); exit 1) fmt
let good fmt = Printf.ksprintf (fun m -> print_endline ("  [defended] " ^ m)) fmt
let bad fmt = Printf.ksprintf (fun m -> print_endline ("  [BROKEN]   " ^ m)) fmt

let () =
  let platform = Hypertee.Platform.create () in
  let image =
    Hypertee.Sdk.image_of_code ~code:(Bytes.of_string "victim enclave code") ~data:Bytes.empty ()
  in
  let victim_id = match Hypertee.Sdk.launch platform image with Ok e -> e | Error m -> die "%s" m in
  let victim = match Hypertee.Sdk.enter platform ~enclave:victim_id with Ok s -> s | Error m -> die "%s" m in
  let secret = Bytes.of_string "SECRET-COVID-KEYS-0xDEADBEEF" in
  Hypertee.Session.write victim ~va:(Hypertee.Session.heap_va victim) secret;

  let runtime = Hypertee.Platform.Internals.runtime platform in
  let ecs =
    match Hypertee_ems.Runtime.find_enclave runtime victim_id with
    | Some e -> e
    | None -> die "victim vanished"
  in
  let heap_vpn = ecs.Hypertee_ems.Enclave.layout.Hypertee_ems.Enclave.heap_base in
  let heap_pte =
    match Page_table.lookup ecs.Hypertee_ems.Enclave.page_table ~vpn:heap_vpn with
    | Some pte -> pte
    | None -> die "heap unmapped"
  in
  let heap_frame = heap_pte.Pte.ppn in

  print_endline "1. page-table controlled channel (malicious OS remaps enclave frame):";
  let os = Hypertee.Platform.os platform in
  let mallory = Hypertee_cs.Os.spawn os in
  Page_table.map mallory.Hypertee_cs.Os.page_table ~vpn:0x4242
    (Pte.leaf ~ppn:heap_frame ~r:true ~w:true ~x:false ~key_id:0);
  (match Hypertee.Platform.host_read platform ~table:mallory.Hypertee_cs.Os.page_table ~vpn:0x4242 ~off:0 ~len:16 with
  | Error (Hypertee.Platform.Fault Ptw.Bitmap_fault) -> good "PTW bitmap check raised an access fault"
  | Error _ -> good "blocked (different mechanism)"
  | Ok _ -> bad "OS read enclave memory");

  print_endline "2. cold-boot attack (raw DRAM dump):";
  let raw = Hypertee_arch.Phys_mem.read (Hypertee.Platform.mem platform) ~frame:heap_frame in
  let leaked = ref false in
  let n = Bytes.length secret in
  for i = 0 to Bytes.length raw - n do
    if Bytes.equal (Bytes.sub raw i n) secret then leaked := true
  done;
  if !leaked then bad "plaintext secret visible in DRAM"
  else good "DRAM holds only ciphertext (multi-key memory encryption)";

  print_endline "3. allocation-based controlled channel:";
  let refills_before = Hypertee_cs.Os.ems_refill_requests os in
  for _ = 1 to 50 do
    match Hypertee.Session.alloc victim ~pages:1 with
    | Ok va -> ignore (Hypertee.Session.free victim ~va ~pages:1)
    | Error e -> die "alloc: %s" (Types.error_message e)
  done;
  let refills_after = Hypertee_cs.Os.ems_refill_requests os in
  Printf.printf "  50 allocations performed; OS observed %d pool refill(s)\n"
    (refills_after - refills_before);
  if refills_after - refills_before < 5 then
    good "per-enclave allocation pattern hidden behind the pool"
  else bad "allocation pattern leaked to the OS";

  print_endline "4. cross-privilege primitive invocation:";
  (match
     Hypertee.Platform.invoke platform ~caller:Hypertee_cs.Emcall.User_host
       (Types.Create { config = Types.default_config })
   with
  | Error Hypertee_cs.Emcall.Cross_privilege -> good "EMCall blocked user-mode ECREATE (OS-only)"
  | Error Hypertee_cs.Emcall.Mailbox_full
  | Error Hypertee_cs.Emcall.Timeout
  | Error Hypertee_cs.Emcall.Busy ->
    bad "unexpected mailbox state"
  | Ok _ -> bad "user code invoked an OS-privilege primitive");
  (match
     Hypertee.Platform.invoke platform ~caller:Hypertee_cs.Emcall.Os_kernel
       (Types.Attest { enclave = victim_id; user_data = Bytes.empty })
   with
  | Error Hypertee_cs.Emcall.Cross_privilege -> good "EMCall blocked OS-mode EATTEST (user-only)"
  | Error Hypertee_cs.Emcall.Mailbox_full
  | Error Hypertee_cs.Emcall.Timeout
  | Error Hypertee_cs.Emcall.Busy ->
    bad "unexpected mailbox state"
  | Ok _ -> bad "OS invoked a user-privilege primitive");

  print_endline "5. forged-identity primitive:";
  let eve_image = Hypertee.Sdk.image_of_code ~code:(Bytes.of_string "eve") ~data:Bytes.empty () in
  let eve_id = match Hypertee.Sdk.launch platform eve_image with Ok e -> e | Error m -> die "%s" m in
  let _eve = match Hypertee.Sdk.enter platform ~enclave:eve_id with Ok s -> s | Error m -> die "%s" m in
  (* Eve's EMCall context stamps eve's id; asking EMS to free the
     *victim's* memory is rejected by the identity check. *)
  (match
     Hypertee.Platform.invoke platform ~caller:(Hypertee_cs.Emcall.User_enclave eve_id)
       (Types.Free { enclave = victim_id; vpn = heap_vpn; pages = 1 })
   with
  | Ok (Types.Err (Types.Permission_denied _)) -> good "EMS rejected a request forged for another enclave"
  | Ok (Types.Err e) -> good "rejected (%s)" (Types.error_message e)
  | Ok _ -> bad "eve freed the victim's memory"
  | Error _ -> good "rejected at the gate");

  print_endline "6. rogue DMA into enclave memory:";
  (match Hypertee.Platform.dma_write platform ~channel:7 ~frame:heap_frame (Bytes.make 4096 'X') with
  | Error (Hypertee.Platform.Hub_denied _) -> good "iHub dropped DMA with no whitelist window"
  | Error _ -> good "blocked (different mechanism)"
  | Ok () -> bad "DMA overwrote enclave memory");

  print_endline "7. physical tampering with encrypted DRAM:";
  let mem = Hypertee.Platform.mem platform in
  let tampered = Hypertee_arch.Phys_mem.read mem ~frame:heap_frame in
  Bytes.set tampered 0 (Char.chr (Char.code (Bytes.get tampered 0) lxor 1));
  Hypertee_arch.Phys_mem.write mem ~frame:heap_frame tampered;
  (match Hypertee.Session.read victim ~va:(Hypertee.Session.heap_va victim) ~len:8 with
  | _ -> bad "tampered line decrypted without detection"
  | exception Hypertee_arch.Mem_encryption.Integrity_violation _ ->
    good "SHA-3 MAC integrity check raised an exception");

  print_endline "attack_demos finished"
