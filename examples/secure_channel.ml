(* End-to-end attested secure channel into an enclave — the
   deployment story the paper's attestation machinery exists for
   (Sec. VI), on the channel layer specified in docs/PROTOCOL.md:

   A client provisions a tenant master key to a "key vault" enclave.
   The channel is established with `Secure_channel.establish` — an
   EMS-minted channel (ECHOPEN/ECHACC), the three-flight SIGMA
   handshake with the vault's EATTEST quote pinned to its expected
   measurement, and per-direction AEAD record keys. The EMS relays
   only ciphertext segments; rekeys happen transparently as records
   flow; a captured segment is useless to an attacker platform and a
   tampered one fails closed.

   Run with: dune exec examples/secure_channel.exe *)

module Secure_channel = Hypertee.Secure_channel
module Record = Hypertee_channel.Record
module Config = Hypertee_arch.Config

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt
let ok_or what = function Ok v -> v | Error m -> die "%s: %s" what m

(* Naive substring scan — enough to assert a secret never appears in
   the ciphertext segments. *)
let contains_sub hay needle =
  let nh = Bytes.length hay and nn = Bytes.length needle in
  let rec at i =
    if i + nn > nh then false
    else if Bytes.equal (Bytes.sub hay i nn) needle then true
    else at (i + 1)
  in
  nn > 0 && at 0

let vault_image =
  Hypertee.Sdk.image_of_code
    ~code:(Bytes.of_string "key vault enclave: stores tenant master keys")
    ~data:Bytes.empty ()

let () =
  (* Two EMS shards so the channel's home shard and the endpoints'
     shards genuinely differ — segments route cross-shard. *)
  let config = { Config.default with Config.ems_shards = 2 } in
  let platform = Hypertee.Platform.create ~config () in
  let vault = ok_or "launch" (Hypertee.Sdk.launch platform vault_image) in

  (* 1. Establish: ECHOPEN, three handshake flights (ClientHello /
     ServerAttest / ClientFinish), the vault's quote verified against
     the platform EK/AK and pinned to the image's expected
     measurement. [rekey_after] is set low so this demo crosses
     generation boundaries. *)
  let client, server =
    ok_or "establish"
      (Secure_channel.establish platform ~listener:vault
         ~expected_measurement:(Hypertee.Sdk.expected_measurement vault_image)
         ~rekey_after:8 ())
  in
  Printf.printf "client attested the vault and established channel %d\n"
    (Secure_channel.chan client);

  (* 2. Provision the tenant master key over the channel; the EMS
     mailbox carries only sealed records. *)
  let master_key = Bytes.of_string "tenant-42-master-key-0123456789abcdef" in
  ok_or "send" (Secure_channel.send client master_key);
  (match ok_or "recv" (Secure_channel.recv server) with
  | [ Record.Message m ] when Bytes.equal m master_key ->
    print_endline "vault received the master key intact"
  | _ -> die "vault did not receive the master key");

  (* 3. The vault answers with a wrapped data key for the tenant. *)
  let data_key =
    Hypertee_crypto.Hmac.derive ~ikm:master_key ~salt:Bytes.empty ~info:"tenant-42-db" 16
  in
  ok_or "reply" (Secure_channel.send server data_key);
  (match ok_or "recv reply" (Secure_channel.recv client) with
  | [ Record.Message m ] when Bytes.equal m data_key ->
    print_endline "client received the wrapped data key"
  | _ -> die "client did not receive the data key");

  (* 4. Stream enough traffic to cross several rekey boundaries; the
     record layer injects the rekeys transparently (§4.3). *)
  for i = 1 to 24 do
    let payload = Bytes.make (32 + (i * 7 mod 200)) (Char.chr (0x61 + (i mod 26))) in
    ok_or "stream send" (Secure_channel.send client payload);
    match ok_or "stream recv" (Secure_channel.recv server) with
    | [ Record.Message m ] when Bytes.equal m payload -> ()
    | _ -> die "streamed message %d corrupted" i
  done;
  let st = Record.stats (Secure_channel.conn client) in
  if st.Record.rekeys_done < 1 then die "expected rekeys after 24 messages";
  Printf.printf "streamed 24 messages, %d records sealed, %d rekey(s), generation %d\n"
    st.Record.records_sealed st.Record.rekeys_done
    (Record.write_generation (Secure_channel.conn client));

  (* 5. What the relay (and any eavesdropper) holds: play the EMS for
     one message and keep the segments. The secret must not appear in
     any of them. *)
  let secret = Bytes.of_string "rotation-secret-for-tenant-42" in
  let captured =
    match Record.seal_message (Secure_channel.conn client) secret with
    | Ok segs -> segs
    | Error e -> die "seal: %s" (Record.error_message e)
  in
  List.iter
    (fun seg -> if contains_sub seg secret then die "plaintext leaked into a segment")
    captured;
  let events =
    List.concat_map
      (fun seg ->
        match Record.deliver (Secure_channel.conn server) seg with
        | Ok evs -> evs
        | Error e -> die "relay deliver: %s" (Record.error_message e))
      captured
  in
  (match events with
  | [ Record.Message m ] when Bytes.equal m secret -> ()
  | _ -> die "relayed secret corrupted");
  Printf.printf "relay saw %d ciphertext segment(s); secret absent from all of them\n"
    (List.length captured);

  (* 6. An attacker platform (its own EK/AK, its own enclaves) cannot
     make anything of the captured segments: its channels run on
     unrelated keys, so delivery fails the tag check — and the failed
     check poisons the attacker's connection, not the victims'. *)
  let attacker_platform = Hypertee.Platform.create ~seed:0xBADF00DL ~config () in
  let attacker_enclave =
    ok_or "attacker launch" (Hypertee.Sdk.launch attacker_platform vault_image)
  in
  let _, attacker_srv =
    ok_or "attacker establish"
      (Secure_channel.establish attacker_platform ~listener:attacker_enclave ())
  in
  (match Record.deliver (Secure_channel.conn attacker_srv) (List.hd captured) with
  | Error Record.Bad_mac ->
    print_endline "attacker platform cannot decrypt a captured segment -- good"
  | Ok _ -> die "BUG: foreign platform accepted a captured segment"
  | Error e -> die "unexpected rejection: %s" (Record.error_message e));

  (* 7. Nor can anyone impersonate the vault: pinning a different
     measurement makes establishment fail during the handshake — the
     quote commits to the enclave identity (§5.3). *)
  (match
     Secure_channel.establish platform ~listener:vault
       ~expected_measurement:(Bytes.make 32 '\xEE') ()
   with
  | Error reason -> Printf.printf "wrong identity pin rejected: %s\n" reason
  | Ok _ -> die "BUG: handshake accepted the wrong measurement");

  (* 8. Active tampering fails closed: one flipped ciphertext bit
     kills the record MAC and permanently poisons the receiving
     connection (§6) — no partial plaintext, no resync. *)
  let victim_client, victim_server =
    ok_or "second establish" (Secure_channel.establish platform ~listener:vault ())
  in
  let tampered =
    match Record.seal_message (Secure_channel.conn victim_client) secret with
    | Ok (seg :: _) ->
      let t = Bytes.copy seg in
      Bytes.set t 20 (Char.chr (Char.code (Bytes.get t 20) lxor 1));
      t
    | Ok [] -> die "empty seal"
    | Error e -> die "seal: %s" (Record.error_message e)
  in
  (match Record.deliver (Secure_channel.conn victim_server) tampered with
  | Error Record.Bad_mac -> ()
  | _ -> die "BUG: tampered segment accepted");
  (match Record.poisoned (Secure_channel.conn victim_server) with
  | Some Record.Bad_mac ->
    print_endline "tampered segment detected; connection failed closed -- good"
  | _ -> die "BUG: connection not poisoned after tampering");
  ok_or "victim close" (Secure_channel.close victim_client);
  ignore (Secure_channel.close victim_server);

  (* 9. Orderly teardown, and the platform's deep invariants still
     hold (no orphaned channel keys, §2.3). *)
  ok_or "close" (Secure_channel.close client);
  ignore (Secure_channel.recv server);
  ignore (Secure_channel.close server);
  let report = Hypertee.Platform.check platform in
  if not (Hypertee_check.Invariant.ok report) then
    die "invariants: %s" (Hypertee_check.Invariant.report_to_string report);
  print_endline "platform invariants clean; secure_channel finished"
