(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (Sec. VII). Run with no argument for the full
   sweep, or with one of: table1 table2 table3 table4 table5 table6
   fig6 fig7 fig8a fig8b fig9 fig10 fig11 fig12 micro.

   Absolute times come from the simulator's calibrated models; the
   claim being reproduced is the *shape* — who wins, by what factor,
   where the crossovers are — which is printed as paper-vs-measured
   on each experiment. *)

module Config = Hypertee_arch.Config
module Types = Hypertee_ems.Types
module Table = Hypertee_util.Table
module Runner = Hypertee_workloads.Runner
module Profile = Hypertee_workloads.Profile

let section title =
  Printf.printf "\n=== %s ===\n" title

let note fmt = Printf.printf (fmt ^^ "\n")

(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table I: security risks of management-task vs enclave attacks";
  Table.print
    ~headers:[ "Security Threats"; "Attack Management Tasks"; "Attack Enclaves" ]
    (Hypertee.Security.table_i_rows ());
  note "paper: management attacks compromise C+I+A; enclave attacks only C. [matches]"

let table2 () =
  section "Table II: HyperTEE primitives";
  Table.print
    ~headers:[ "Primitive"; "Priv."; "Semantics" ]
    (List.map
       (fun op ->
         [
           Types.opcode_name op;
           (match Types.required_privilege op with Types.Os -> "OS" | Types.User -> "User");
           Types.opcode_semantics op;
         ])
       Types.all_opcodes)

let show_core (c : Config.core) =
  [
    c.Config.name;
    (match c.Config.pipeline with Config.In_order -> "In-order" | Config.Out_of_order -> "OoO");
    Printf.sprintf "%d/%d" c.Config.fetch_width c.Config.decode_width;
    Printf.sprintf "%d/%d/%d" c.Config.issue_mem c.Config.issue_int c.Config.issue_fp;
    string_of_int c.Config.btb_entries;
    (if c.Config.rob_entries = 0 then "-" else string_of_int c.Config.rob_entries);
    Printf.sprintf "%d/%d/%d" c.Config.itlb_entries c.Config.dtlb_entries c.Config.l2_tlb_entries;
    Printf.sprintf "%d/%dKB" c.Config.l1i_kb c.Config.l1d_kb;
    Printf.sprintf "%dKB" c.Config.l2_kb;
    Printf.sprintf "%.2fGHz" c.Config.clock_ghz;
  ]

let table3 () =
  section "Table III: prototype parameters";
  Table.print
    ~headers:[ "Core"; "Pipeline"; "Fetch/Dec"; "Mem/Int/Fp"; "BTB"; "ROB"; "TLB I/D/L2"; "L1 I/D"; "L2"; "Clock" ]
    (List.map show_core [ Config.cs_core; Config.ems_weak; Config.ems_medium; Config.ems_strong ]);
  let eng = Hypertee_crypto.Engine.default_hardware in
  note "Crypto engine: AES %.2f Gbps, SHA-256 %.1f Gbps, RSA sign %.0f ops/s, verify %.0f ops/s"
    (4096.0 *. 8.0 /. (Hypertee_crypto.Engine.aes_ns eng ~bytes:4096 -. 200.0))
    (4096.0 *. 8.0 /. (Hypertee_crypto.Engine.sha256_ns eng ~bytes:4096 -. 200.0))
    (1e9 /. Hypertee_crypto.Engine.rsa_sign_ns eng)
    (1e9 /. Hypertee_crypto.Engine.rsa_verify_ns eng);
  let g = Config.gemmini in
  note "Gemmini: %dx%d PEs, %d KB global buffer, %d KB accumulator"
    g.Config.pe_rows g.Config.pe_cols g.Config.global_buffer_kb g.Config.accumulator_kb

(* ------------------------------------------------------------------ *)

let fig6 ?(requests = 16384) () =
  section "Fig. 6: SLO for concurrent primitive requests (DES simulation)";
  note "each row: p99 latency as a multiple of the non-enclave baseline; smaller is better";
  List.iter
    (fun (cs_cores, ems_configs) ->
      let rows =
        List.map
          (fun (ems_cores, kind) ->
            let c =
              Hypertee_experiments.Fig6.run ~seed:0x516L ~cs_cores ~ems_cores ~ems_kind:kind
                ~requests
            in
            let frac_at x =
              match List.find_opt (fun (m, _) -> m >= x) c.Hypertee_experiments.Fig6.points with
              | Some (_, f) -> f *. 100.0
              | None -> 100.0
            in
            [
              string_of_int cs_cores;
              Printf.sprintf "%dx %s" ems_cores (Config.ems_kind_name kind);
              Table.fmt_f ~digits:2 c.Hypertee_experiments.Fig6.p99_multiplier;
              Table.pct (frac_at 2.0);
              Table.pct (frac_at 4.0);
              Table.pct (frac_at 8.0);
            ])
          ems_configs
      in
      Table.print
        ~headers:[ "CS cores"; "EMS config"; "p99 (x baseline)"; "<=2x"; "<=4x"; "<=8x" ]
        ~aligns:[ Table.Right; Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
        rows)
    Hypertee_experiments.Fig6.paper_grid;
  note "paper: 1 in-order core suffices for <=4 CS cores; 2 in-order for 16;";
  note "       dual OoO ~= quad OoO for 32/64 CS cores. [check the rows above]"

let fig7 () =
  section "Fig. 7: enclave overhead under different EMS core configurations";
  let kinds = [ Config.Weak; Config.Medium; Config.Strong ] in
  let rows =
    List.map
      (fun p ->
        p.Profile.name
        :: List.map
             (fun kind ->
               let r = Runner.run_enclave p ~ems_kind:kind ~crypto_engine:true () in
               Table.pct r.Runner.overhead_pct)
             kinds)
      Hypertee_workloads.Rv8.suite
  in
  let averages =
    "AVERAGE"
    :: List.map
         (fun kind ->
           let total =
             List.fold_left
               (fun acc p ->
                 acc +. (Runner.run_enclave p ~ems_kind:kind ~crypto_engine:true ()).Runner.overhead_pct)
               0.0 Hypertee_workloads.Rv8.suite
           in
           Table.pct (total /. 8.0))
         kinds
  in
  Table.print ~headers:[ "benchmark"; "weak"; "medium"; "strong" ]
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    (rows @ [ averages ]);
  note "paper averages: weak 5.7%%, medium 2.0%%, strong 1.9%% (medium ~= strong)"

let table4 () =
  section "Table IV: primitive execution time vs Host-Native (crypto engine off/on)";
  let row p =
    let sw = Runner.run_enclave p ~ems_kind:Config.Medium ~crypto_engine:false () in
    let hw = Runner.run_enclave p ~ems_kind:Config.Medium ~crypto_engine:true () in
    [
      p.Profile.name;
      Table.pct sw.Runner.primitives_pct;
      Table.pct sw.Runner.emeas_pct;
      Table.pct hw.Runner.primitives_pct;
      Printf.sprintf "%.2f%%" hw.Runner.emeas_pct;
    ]
  in
  let rows = List.map row Hypertee_workloads.Rv8.suite in
  let avg f =
    List.fold_left (fun acc p -> acc +. f p) 0.0 Hypertee_workloads.Rv8.suite /. 8.0
  in
  let averages =
    [
      "Average";
      Table.pct (avg (fun p -> (Runner.run_enclave p ~ems_kind:Config.Medium ~crypto_engine:false ()).Runner.primitives_pct));
      Table.pct (avg (fun p -> (Runner.run_enclave p ~ems_kind:Config.Medium ~crypto_engine:false ()).Runner.emeas_pct));
      Table.pct (avg (fun p -> (Runner.run_enclave p ~ems_kind:Config.Medium ~crypto_engine:true ()).Runner.primitives_pct));
      Printf.sprintf "%.2f%%" (avg (fun p -> (Runner.run_enclave p ~ems_kind:Config.Medium ~crypto_engine:true ()).Runner.emeas_pct));
    ]
  in
  Table.print
    ~headers:[ "benchmark"; "NoCrypto All"; "NoCrypto EMEAS"; "Crypto All"; "Crypto EMEAS" ]
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    (rows @ [ averages ]);
  note "paper averages: 10.4%% / 7.8%% / 2.5%% / 0.10%%"

let fig8a () =
  section "Fig. 8a: EALLOC vs malloc latency";
  let rows = Hypertee_experiments.Fig8a.run ~ems_kind:Config.Medium () in
  Table.print
    ~headers:[ "size"; "malloc (us)"; "EALLOC (us)"; "overhead" ]
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    (List.map
       (fun r ->
         [
           Hypertee_util.Units.show_bytes r.Hypertee_experiments.Fig8a.size_bytes;
           Table.fmt_f ~digits:1 (r.Hypertee_experiments.Fig8a.malloc_ns /. 1e3);
           Table.fmt_f ~digits:1 (r.Hypertee_experiments.Fig8a.ealloc_ns /. 1e3);
           Table.pct r.Hypertee_experiments.Fig8a.overhead_pct;
         ])
       rows);
  note "paper: overhead 6.3%% (128 KiB) rising to 49.7%% (2 MiB)"

let fig8b () =
  section "Fig. 8b: MemStream latency with memory encryption + integrity";
  let rows =
    List.map
      (fun size ->
        let r = Hypertee_workloads.Memstream.run ~size_bytes:size ~latency:Config.default_latency in
        [
          Hypertee_util.Units.show_bytes size;
          string_of_int r.Hypertee_workloads.Memstream.l2_misses;
          Table.fmt_f ~digits:2 (r.Hypertee_workloads.Memstream.cycles_plain /. 1e6);
          Table.fmt_f ~digits:2 (r.Hypertee_workloads.Memstream.cycles_encrypted /. 1e6);
          Table.pct r.Hypertee_workloads.Memstream.overhead_pct;
        ])
      Hypertee_workloads.Memstream.paper_sizes
  in
  Table.print
    ~headers:[ "size"; "LLC misses"; "plain (Mcyc)"; "encrypted (Mcyc)"; "overhead" ]
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    rows;
  note "paper: average 3.1%% on the worst-case streaming workload"

let fig9 () =
  section "Fig. 9: all enclave memory management on wolfSSL";
  let p = Hypertee_workloads.Rv8.wolfssl in
  let native =
    Hypertee_arch.Perf_model.run Config.cs_core Config.default_latency
      ~instructions:p.Profile.instructions ~behavior:p.Profile.behavior
      ~scenario:Hypertee_arch.Perf_model.native
  in
  let encrypted =
    Hypertee_arch.Perf_model.run Config.cs_core Config.default_latency
      ~instructions:p.Profile.instructions ~behavior:p.Profile.behavior
      ~scenario:Hypertee_arch.Perf_model.m_encrypt
  in
  (* Allocation cost relative to the malloc the native run pays. *)
  let cost = Hypertee.Platform.Internals.cost (Hypertee.Platform.create ()) in
  let alloc_delta =
    List.fold_left
      (fun acc (pages, times) ->
        let ealloc = Hypertee_ems.Cost.alloc_ns cost ~pages +. 670.0 in
        let malloc = 25_000.0 +. (float_of_int pages *. 700.0) in
        acc +. (float_of_int times *. Float.max 0.0 (ealloc -. malloc)))
      0.0 p.Profile.dynamic_allocs
  in
  let flush_cost =
    (* pool-batch bitmap flushes during the run *)
    let flushes = Hypertee_experiments.Fig11.flushes_per_billion_instructions () *. p.Profile.instructions /. 1e9 in
    flushes *. Hypertee_arch.Perf_model.tlb_refill_cycles Config.cs_core Config.default_latency
    /. Config.cs_core.Config.clock_ghz
  in
  let total = encrypted.Hypertee_arch.Perf_model.time_ns +. alloc_delta +. flush_cost in
  let overhead = (total /. native.Hypertee_arch.Perf_model.time_ns -. 1.0) *. 100.0 in
  Table.print
    ~headers:[ "scenario"; "time (ms)"; "overhead" ]
    ~aligns:[ Table.Left; Table.Right; Table.Right ]
    [
      [ "Host-Native"; Table.fmt_f ~digits:2 (native.Hypertee_arch.Perf_model.time_ns /. 1e6); "-" ];
      [ "Enclave (encryption+integrity)";
        Table.fmt_f ~digits:2 (encrypted.Hypertee_arch.Perf_model.time_ns /. 1e6);
        Table.pct ((encrypted.Hypertee_arch.Perf_model.time_ns /. native.Hypertee_arch.Perf_model.time_ns -. 1.0) *. 100.0) ];
      [ "Enclave (all memory management)"; Table.fmt_f ~digits:2 (total /. 1e6); Table.pct overhead ];
    ];
  note "paper: 0.9%% overall for wolfSSL"

let fig10 () =
  section "Fig. 10: bitmap checking on non-enclave SPEC CPU2017";
  let rows =
    List.map
      (fun p ->
        let r = Runner.run_host_bitmap p in
        [ p.Profile.name; Table.pct r.Runner.overhead_pct ])
      Hypertee_workloads.Spec2017.suite
  in
  let avg =
    List.fold_left
      (fun acc p -> acc +. (Runner.run_host_bitmap p).Runner.overhead_pct)
      0.0 Hypertee_workloads.Spec2017.suite
    /. 10.0
  in
  Table.print ~headers:[ "benchmark"; "overhead" ]
    ~aligns:[ Table.Left; Table.Right ]
    (rows @ [ [ "AVERAGE"; Table.pct avg ] ]);
  note "paper: average 1.9%%; xalancbmk_r worst at 4.6%% (TLB-miss heavy)"

let fig11 () =
  section "Fig. 11: TLB-flush overhead on enclaves (miniz) vs context-switch rate";
  let rows = Hypertee_experiments.Fig11.run () in
  let headers =
    "memory"
    :: List.map (fun f -> Printf.sprintf "%.0f Hz" f) Hypertee_experiments.Fig11.paper_frequencies
  in
  let by_size =
    List.map
      (fun mb ->
        Printf.sprintf "%d MiB" mb
        :: List.filter_map
             (fun r ->
               if r.Hypertee_experiments.Fig11.memory_mb = mb then
                 Some (Table.pct r.Hypertee_experiments.Fig11.overhead_pct)
               else None)
             rows)
      Hypertee_experiments.Fig11.paper_sizes_mb
  in
  Table.print ~headers ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ] by_size;
  note "paper: <= 1.81%% at 32 MiB / 400 Hz; bitmap updates cause %.1f full flushes"
    (Hypertee_experiments.Fig11.flushes_per_billion_instructions ());
  note "per billion instructions (paper: 16.72)"

let fig12 () =
  section "Fig. 12: enclave communication (DNN on Gemmini; NIC)";
  let rows =
    List.map
      (fun net ->
        let r = Hypertee_accel.Comm_scenario.run_dnn net in
        [
          r.Hypertee_accel.Comm_scenario.network;
          Table.fmt_f ~digits:1 (r.Hypertee_accel.Comm_scenario.conventional_total_ns /. 1e6);
          Table.fmt_f ~digits:1 (r.Hypertee_accel.Comm_scenario.hypertee_total_ns /. 1e6);
          Table.pct r.Hypertee_accel.Comm_scenario.crypto_share_pct;
          Table.speedup r.Hypertee_accel.Comm_scenario.speedup;
        ])
      Hypertee_workloads.Dnn.all
  in
  let nic = Hypertee_accel.Comm_scenario.run_nic ~packets:100_000 ~payload_bytes:1500 in
  let nic_row =
    [
      "NIC (100k x 1500B)";
      Table.fmt_f ~digits:1 (nic.Hypertee_accel.Comm_scenario.conventional_total_ns /. 1e6);
      Table.fmt_f ~digits:1 (nic.Hypertee_accel.Comm_scenario.hypertee_total_ns /. 1e6);
      Table.pct nic.Hypertee_accel.Comm_scenario.crypto_share_pct;
      Table.speedup nic.Hypertee_accel.Comm_scenario.speedup;
    ]
  in
  Table.print
    ~headers:[ "workload"; "conventional (ms)"; "HyperTEE (ms)"; "sw-crypto share"; "speedup" ]
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    (rows @ [ nic_row ]);
  note "paper: ResNet50 >4.0x (crypto >74.7%%), MobileNet >3.3x, MLPs >27.7x, NIC ~50x (>98%%)"

let table5 () =
  section "Table V: EMS area overhead (TSMC 7nm model)";
  let rows =
    List.map
      (fun (r : Hypertee_arch.Area.report) ->
        [
          string_of_int r.Hypertee_arch.Area.cs_cores;
          Printf.sprintf "%.0f mm2" r.Hypertee_arch.Area.cs_area_mm2;
          Printf.sprintf "%d %s" r.Hypertee_arch.Area.ems_cores
            (Config.ems_kind_name r.Hypertee_arch.Area.ems_kind);
          Printf.sprintf "%.2f mm2" r.Hypertee_arch.Area.ems_area_mm2;
          Printf.sprintf "%.2f%%" r.Hypertee_arch.Area.overhead_pct;
        ])
      (Hypertee_arch.Area.table_v ())
  in
  Table.print
    ~headers:[ "CS cores"; "CS area"; "EMS cores"; "EMS area"; "overhead" ]
    ~aligns:[ Table.Right; Table.Right; Table.Left; Table.Right; Table.Right ]
    rows;
  note "paper: 0.97%% / 0.46%% / 0.34%% / 0.49%% / 0.25%% — always < 1%%"

let table6 () =
  section "Table VI: defense capability against management-task attacks";
  Table.print
    ~headers:("TEE" :: List.map Hypertee.Security.attack_name Hypertee.Security.all_attacks)
    (Hypertee.Security.table_vi_rows ());
  (* Each cell is also re-derived by executing the mechanism probe
     (Hypertee_experiments.Table6_probe); verify live. *)
  let mismatches = ref 0 in
  List.iter
    (fun tee ->
      List.iter
        (fun attack ->
          if
            Hypertee_experiments.Table6_probe.derived_capability tee attack
            <> Hypertee.Security.defends tee attack
          then incr mismatches)
        Hypertee.Security.all_attacks)
    Hypertee.Security.all_tees;
  note "probed all 45 cells by executing each design's mechanisms: %d mismatch(es)" !mismatches;
  note "paper: HyperTEE defends all five classes; others partially or not at all"

(* ------------------------------------------------------------------ *)

let ablations () =
  section "Ablations: what each design choice buys";
  let module A = Hypertee_experiments.Ablations in
  let p = A.pool () in
  Table.print
    ~headers:[ "design"; "OS-visible events"; "mean EALLOC (us)" ]
    ~aligns:[ Table.Left; Table.Right; Table.Right ]
    [
      [ Printf.sprintf "memory pool (per %d allocs)" p.A.allocations;
        string_of_int p.A.os_events_with_pool;
        Table.fmt_f ~digits:1 (p.A.latency_with_pool_ns /. 1e3) ];
      [ "no pool (SGX-like demand)";
        string_of_int p.A.os_events_without_pool;
        Table.fmt_f ~digits:1 (p.A.latency_without_pool_ns /. 1e3) ];
    ];
  let th = A.threshold () in
  note "refill-threshold randomization (%d refills observed):" th.A.refills_observed;
  note "  fixed threshold  : inter-refill stddev %.2f allocations (predictable)"
    th.A.fixed_interval_stddev;
  note "  randomized       : inter-refill stddev %.2f allocations" th.A.randomized_interval_stddev;
  let iso = A.isolation () in
  Table.print
    ~headers:[ "isolation scheme"; "regions supported (of needed)" ]
    [
      [ Printf.sprintf "range registers (%d pairs)" iso.A.range_registers;
        Printf.sprintf "%d of %d" iso.A.range_scheme_supported iso.A.fragmented_regions ];
      [ "HyperTEE bitmap"; Printf.sprintf "%d of %d" iso.A.bitmap_supported iso.A.fragmented_regions ];
    ];
  let sw = A.swap () in
  note "EWB victim selection (%d reclamation trials):" sw.A.trials;
  note "  randomized pool-backed : attacker observed the victim fault %d time(s)"
    sw.A.victim_faults_randomized;
  note "  direct victim swapping : attacker observed the victim fault %d time(s)"
    sw.A.victim_faults_direct

(* ------------------------------------------------------------------ *)

let chaos ?(ops = 2000) ?(seed = 0xC4A05L) () =
  section "Chaos: availability SLO under injected platform faults";
  note "uniform fault plan over all sites (drop/dup/corrupt/stall/crash/flip/...);";
  note "ops=%d, seed=%Ld; recovery = EMCall retry + EMS watchdog + containment" ops seed;
  Hypertee_experiments.Chaos.print (Hypertee_experiments.Chaos.run ~seed ~ops);
  note "expect: success monotonically degrades with the rate; the platform itself";
  note "        never crashes or hangs — faults cost latency and killed enclaves"

(* ------------------------------------------------------------------ *)

let scale ?(ops = 256) ?(seed = 0x5CA1EL) () =
  section "Scale: CS cores x EMS shards x doorbell batch size";
  note "EALLOC fleet workload; one doorbell drains a batch through the EMS scheduler;";
  note "ops=%d per point, seed=%Ld; throughput = served / modelled EMS makespan" ops seed;
  Hypertee_experiments.Scale.print ~seed ~ops ();
  note "expect: per-call overhead strictly falls as the batch grows;";
  note "        aggregate Mops/s rises with the shard count"

(* ------------------------------------------------------------------ *)

let trace ?(quick = false) ?(path = "trace.json") name =
  match Hypertee_experiments.Tracing.target_of_string name with
  | None ->
    Printf.eprintf "unknown trace target %S (one of: %s)\n" name
      (String.concat " " Hypertee_experiments.Tracing.target_names);
    exit 2
  | Some target ->
    section (Printf.sprintf "Trace: %s under the span tracer" name);
    note "Chrome trace_event JSON; load the file in chrome://tracing or ui.perfetto.dev";
    ignore (Hypertee_experiments.Tracing.run ~quick ~path target)

let metrics () =
  section "Metrics: platform telemetry registry after a mixed workload";
  ignore (Hypertee_experiments.Tracing.metrics ())

(* ------------------------------------------------------------------ *)

(* Wall-clock data-plane benchmark. Deliberately NOT part of all():
   its numbers are machine-dependent and would make the full sweep's
   output nondeterministic. *)
let cloud ?(quick = false) ?json ?(seed = 0xC10D5L) () =
  section "Cloud: enclave-as-a-service SLO curves (warm pool + admission control)";
  note "open-loop tenant sessions (EWARM|cold launch -> attest -> channel ops -> ERETIRE);";
  note "per-shard FCFS queue in virtual time; seed=%Ld; every point ends with a deep" seed;
  note "invariant sweep and the differential oracle's verdict";
  let outcome = Hypertee_experiments.Cloud.run ~seed ~quick () in
  Hypertee_experiments.Cloud.print outcome;
  (match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Hypertee_experiments.Cloud.json_of_outcome outcome);
    close_out oc;
    note "wrote SLO curves to %s" path);
  if not (Hypertee_experiments.Cloud.clean outcome) then begin
    prerr_endline "cloud: invariant violations or oracle divergences under churn";
    exit 1
  end

let perf ?(quick = false) ?json () =
  section "Perf: wall-clock crypto data plane (MB/s, real elapsed time)";
  note "measures the implementation itself, not the timing models;";
  note "the speedup-vs-reference row is the portable signal";
  let samples = Hypertee_experiments.Perf.run ~quick () in
  Hypertee_experiments.Perf.print samples;
  match json with
  | None -> ()
  | Some path ->
    Hypertee_experiments.Perf.write_json ~path samples;
    note "wrote %d samples to %s" (List.length samples) path

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the implementation's hot paths: these
   measure the real OCaml code (not the timing models). *)

let micro () =
  section "Bechamel micro-benchmarks (real implementation hot paths)";
  let open Bechamel in
  let platform = Hypertee.Platform.create () in
  let image =
    Hypertee.Sdk.image_of_code ~code:(Bytes.make 8192 'x') ~data:(Bytes.make 4096 'd') ()
  in
  let enclave =
    match Hypertee.Sdk.launch platform image with Ok e -> e | Error m -> failwith m
  in
  let session =
    match Hypertee.Sdk.enter platform ~enclave with Ok s -> s | Error m -> failwith m
  in
  let page = Bytes.make 4096 'p' in
  let aes_key = Hypertee_crypto.Aes.expand (Bytes.make 16 'k') in
  let pt =
    Hypertee_arch.Page_table.create (Hypertee.Platform.mem platform)
      ~node_owner:Hypertee_arch.Phys_mem.Cs_os
      ~alloc:(Hypertee_arch.Page_table.default_alloc (Hypertee.Platform.mem platform))
  in
  Hypertee_arch.Page_table.map pt ~vpn:42
    (Hypertee_arch.Pte.leaf ~ppn:3 ~r:true ~w:true ~x:false ~key_id:0);
  let counter = ref 0 in
  let tests =
    [
      Test.make ~name:"sha256/4KiB" (Staged.stage (fun () -> Hypertee_crypto.Sha256.digest page));
      Test.make ~name:"sha3-256/4KiB" (Staged.stage (fun () -> Hypertee_crypto.Keccak.sha3_256 page));
      Test.make ~name:"aes-ctr/4KiB"
        (Staged.stage (fun () -> Hypertee_crypto.Aes.ctr aes_key ~nonce:(Bytes.make 16 'n') page));
      Test.make ~name:"pt-walk" (Staged.stage (fun () -> Hypertee_arch.Page_table.lookup pt ~vpn:42));
      Test.make ~name:"session-rw/64B"
        (Staged.stage (fun () ->
             incr counter;
             let va = Hypertee.Session.heap_va session + (!counter mod 32 * 64) in
             Hypertee.Session.write session ~va (Bytes.make 64 'z');
             Hypertee.Session.read session ~va ~len:64));
      Test.make ~name:"ealloc-efree/4pages"
        (Staged.stage (fun () ->
             match Hypertee.Session.alloc session ~pages:4 with
             | Ok va -> ignore (Hypertee.Session.free session ~va ~pages:4)
             | Error _ -> ()));
    ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.3) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let analysis = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let est = Analyze.one analysis Toolkit.Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates est with Some [ e ] -> e | _ -> Float.nan
          in
          Printf.printf "  %-22s %12s/run\n" (Test.Elt.name elt) (Hypertee_util.Units.show_ns ns))
        (Test.elements test))
    tests

(* ------------------------------------------------------------------ *)

let all ?(fig6_requests = 16384) () =
  table1 ();
  table2 ();
  table3 ();
  fig6 ~requests:fig6_requests ();
  fig7 ();
  table4 ();
  fig8a ();
  fig8b ();
  fig9 ();
  fig10 ();
  fig11 ();
  fig12 ();
  table5 ();
  table6 ();
  ablations ();
  chaos ();
  scale ();
  micro ();
  print_newline ()

let () =
  match Array.to_list Sys.argv with
  | _ :: [] -> all ()
  | _ :: [ "quick" ] -> all ~fig6_requests:2048 ()
  | _ :: [ "table1" ] -> table1 ()
  | _ :: [ "table2" ] -> table2 ()
  | _ :: [ "table3" ] -> table3 ()
  | _ :: [ "table4" ] -> table4 ()
  | _ :: [ "table5" ] -> table5 ()
  | _ :: [ "table6" ] -> table6 ()
  | _ :: [ "fig6" ] -> fig6 ()
  | _ :: [ "fig7" ] -> fig7 ()
  | _ :: [ "fig8a" ] -> fig8a ()
  | _ :: [ "fig8b" ] -> fig8b ()
  | _ :: [ "fig9" ] -> fig9 ()
  | _ :: [ "fig10" ] -> fig10 ()
  | _ :: [ "fig11" ] -> fig11 ()
  | _ :: [ "fig12" ] -> fig12 ()
  | _ :: [ "ablations" ] -> ablations ()
  | _ :: [ "chaos" ] -> chaos ()
  | _ :: [ "chaos"; "--smoke" ] -> chaos ~ops:300 ()
  | _ :: [ "scale" ] -> scale ()
  | _ :: [ "scale"; "--smoke" ] -> scale ~ops:64 ()
  | _ :: [ "micro" ] -> micro ()
  | _ :: [ "metrics" ] -> metrics ()
  | _ :: [ "trace"; name ] -> trace name
  | _ :: [ "trace"; name; "--quick" ] -> trace ~quick:true name
  | _ :: [ "trace"; name; "--json"; path ] -> trace ~path name
  | _ :: [ "trace"; name; "--quick"; "--json"; path ] -> trace ~quick:true ~path name
  | _ :: [ "cloud" ] -> cloud ()
  | _ :: [ "cloud"; "--quick" ] -> cloud ~quick:true ()
  | _ :: [ "cloud"; "--quick"; "--json"; path ] -> cloud ~quick:true ~json:path ()
  | _ :: [ "cloud"; "--json"; path ] -> cloud ~json:path ()
  | _ :: [ "perf" ] -> perf ()
  | _ :: [ "perf"; "--quick" ] -> perf ~quick:true ()
  | _ :: [ "perf"; "--quick"; "--json"; path ] -> perf ~quick:true ~json:path ()
  | _ :: [ "perf"; "--json"; path ] -> perf ~json:path ()
  | _ ->
    prerr_endline
      "usage: main.exe [quick|table1|table2|table3|table4|table5|table6|fig6|fig7|fig8a|fig8b|fig9|fig10|fig11|fig12|ablations|chaos|scale|micro|metrics|trace TARGET [--quick] [--json PATH]|perf [--quick] [--json PATH]|cloud [--quick] [--json PATH]]";
    exit 2
